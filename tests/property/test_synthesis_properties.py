"""Property-based tests for circuit synthesis primitives (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.logic_sim import evaluate_outputs
from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import synthesize_constant_comparator, synthesize_sop
from repro.circuits.two_level import Literal, SumOfProducts


class TestComparatorProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.data(),
        st.sampled_from([">=", ">", "<", "<="]),
    )
    @settings(max_examples=150)
    def test_comparator_matches_python_comparison(self, n_bits, data, operation):
        constant = data.draw(st.integers(min_value=0, max_value=2 ** n_bits - 1))
        value = data.draw(st.integers(min_value=0, max_value=2 ** n_bits - 1))

        netlist = Netlist("cmp")
        bits = [netlist.add_input(f"b{k}") for k in range(n_bits - 1, -1, -1)]
        out = synthesize_constant_comparator(netlist, bits, constant, operation)
        netlist.add_gate("BUF", [out], output="y")
        netlist.add_output("y")

        assignment = {f"b{k}": bool((value >> k) & 1) for k in range(n_bits)}
        result = evaluate_outputs(netlist, assignment)["y"]
        expected = {
            ">=": value >= constant,
            ">": value > constant,
            "<": value < constant,
            "<=": value <= constant,
        }[operation]
        assert result == expected

    @given(st.integers(min_value=2, max_value=8), st.data())
    @settings(max_examples=60)
    def test_comparator_gate_count_bounded_by_bit_width(self, n_bits, data):
        """Bespoke constant comparators need at most one gate per bit."""
        constant = data.draw(st.integers(min_value=0, max_value=2 ** n_bits - 1))
        netlist = Netlist("cmp")
        bits = [netlist.add_input(f"b{k}") for k in range(n_bits - 1, -1, -1)]
        synthesize_constant_comparator(netlist, bits, constant, ">=")
        assert netlist.n_gates <= n_bits


VARIABLES = ["p", "q", "r"]
literals = st.builds(Literal, name=st.sampled_from(VARIABLES), positive=st.booleans())
sops = st.lists(
    st.lists(literals, min_size=0, max_size=3), min_size=0, max_size=5
).map(SumOfProducts)


class TestSopSynthesisProperties:
    @given(sops, st.data())
    @settings(max_examples=150)
    def test_synthesized_sop_matches_reference(self, sop, data):
        assignment = {name: data.draw(st.booleans()) for name in VARIABLES}
        netlist = Netlist("sop")
        nets = {name: netlist.add_input(name) for name in VARIABLES}
        out = synthesize_sop(netlist, sop, nets)
        netlist.add_gate("BUF", [out], output="y")
        netlist.add_output("y")
        netlist.validate()
        assert evaluate_outputs(netlist, assignment)["y"] == sop.evaluate(assignment)
