"""Property-based tests for the multi-objective search primitives.

The search subsystem's correctness rests on three pure functions:

* :func:`repro.search.optimizer.non_dominated_sort` -- front 0 must be
  *exactly* the brute-force non-dominated set (re-derived here from first
  principles, independent of :mod:`repro.core.pareto`, so the test is an
  oracle and not a tautology), and the successive fronts must partition
  the input with every front-``k`` point dominated by front ``k-1``;
* :func:`repro.search.optimizer.crowding_distance` -- boundary points are
  always ``inf`` and distances are non-negative;
* :func:`repro.search.optimizer.hypervolume` -- non-negative, monotone
  under adding points, and invariant to dominated points (the property the
  search-efficiency benchmark's ``hv_ratio`` depends on).

Objective values are drawn from a small integer lattice on purpose:
duplicates and single-axis ties -- the classic dominance edge cases --
appear in nearly every example.  Hypothesis runs derandomized, so the
suite is deterministic.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.optimizer import (
    crowding_distance,
    hypervolume,
    non_dominated_sort,
    pareto_rank_order,
)

objective_tuples = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4).map(float),
        st.integers(min_value=0, max_value=4).map(float),
    ),
    min_size=1,
    max_size=16,
)

objective_triples = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3).map(float),
        st.integers(min_value=0, max_value=3).map(float),
        st.integers(min_value=0, max_value=3).map(float),
    ),
    min_size=1,
    max_size=10,
)


def _oracle_dominates(a, b) -> bool:
    """First-principles minimize-tuple dominance (the test's oracle)."""
    return all(x <= y for x, y in zip(a, b)) and a != b


def _oracle_front(points) -> set:
    return {
        i
        for i, p in enumerate(points)
        if not any(_oracle_dominates(q, p) for j, q in enumerate(points) if j != i)
    }


class TestNonDominatedSort:
    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_front_zero_is_exactly_the_brute_force_set(self, points):
        assert set(non_dominated_sort(points)[0]) == _oracle_front(points)

    @given(objective_triples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_front_zero_matches_oracle_in_three_objectives(self, points):
        assert set(non_dominated_sort(points)[0]) == _oracle_front(points)

    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_fronts_partition_the_input(self, points):
        fronts = non_dominated_sort(points)
        flat = [i for front in fronts for i in front]
        assert sorted(flat) == list(range(len(points)))
        assert all(front for front in fronts)  # no empty fronts

    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_every_later_front_point_is_dominated_by_the_previous_front(
        self, points
    ):
        fronts = non_dominated_sort(points)
        for previous, front in zip(fronts, fronts[1:]):
            for i in front:
                assert any(
                    _oracle_dominates(points[j], points[i]) for j in previous
                )

    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_no_point_dominates_a_peer_within_its_front(self, points):
        for front in non_dominated_sort(points):
            members = [points[i] for i in front]
            for a in members:
                assert not any(
                    _oracle_dominates(a, b) for b in members if b is not a
                )

    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_rank_order_is_a_permutation(self, points):
        order = pareto_rank_order(points)
        assert sorted(order) == list(range(len(points)))


class TestCrowdingDistance:
    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_distances_are_nonnegative_and_match_length(self, points):
        distances = crowding_distance(points)
        assert len(distances) == len(points)
        assert all(d >= 0.0 for d in distances)

    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_each_objective_extreme_is_held_by_an_infinite_point(self, points):
        # With duplicated extremes only one copy is the boundary point, so
        # the guarantee is existential: *some* attainer of each per-axis
        # extreme always survives selection with infinite distance.
        distances = crowding_distance(points)
        for axis in range(2):
            values = [p[axis] for p in points]
            for extreme in (min(values), max(values)):
                assert any(
                    distances[i] == math.inf
                    for i, p in enumerate(points)
                    if p[axis] == extreme
                )


class TestHypervolume:
    REFERENCE = (5.0, 5.0)

    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_nonnegative_and_bounded_by_the_reference_box(self, points):
        hv = hypervolume(points, self.REFERENCE)
        assert 0.0 <= hv <= 25.0

    @given(objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_dominated_points_contribute_nothing(self, points):
        hv = hypervolume(points, self.REFERENCE)
        front = [points[i] for i in sorted(_oracle_front(points))]
        assert hypervolume(front, self.REFERENCE) == hv

    @given(objective_tuples, st.tuples(st.just(0.0), st.just(0.0)))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_adding_the_ideal_point_fills_the_box(self, points, ideal):
        assert hypervolume(points + [ideal], self.REFERENCE) == 25.0

    @given(objective_tuples, objective_tuples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_monotone_under_adding_points(self, points, extra):
        assert (
            hypervolume(points + extra, self.REFERENCE)
            >= hypervolume(points, self.REFERENCE)
        )

    @given(objective_triples)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_recursive_3d_agrees_with_inclusion_exclusion_montecarlo_free_oracle(
        self, points
    ):
        # Exact 3-D oracle by unit-cell counting on the integer lattice: the
        # dominated region of minimize-points within [0, 4)^3 is a union of
        # unit cells, so counting cells is exact -- no sampling error.
        reference = (4.0, 4.0, 4.0)
        cells = sum(
            1
            for x in range(4)
            for y in range(4)
            for z in range(4)
            if any(
                p[0] <= x and p[1] <= y and p[2] <= z
                for p in points
            )
        )
        assert hypervolume(points, reference) == float(cells)
