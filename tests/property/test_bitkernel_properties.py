"""Property-based equivalence of the bit-parallel kernel (hypothesis).

The packed-uint64 kernel must be *bit-identical* to the batch engine --
``UnaryDecisionTree.predict_digit_matrix`` / ``predict_from_digits_batch``
-- for every trained tree and every digit batch, including ragged batch
sizes that do not fill a 64-bit word.  Hypothesis drives dataset x seed x
depth combinations over all eight paper benchmarks (trained trees are
memoized per configuration, so the suite trains each at most once) and
adversarial batch slicing; runs are derandomized for CI stability.
"""

from functools import lru_cache

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc.thermometer import pack_digit_matrix, unpack_digit_matrix
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.bitkernel import compile_tree_kernel
from repro.core.unary_tree import UnaryDecisionTree
from repro.datasets.registry import dataset_names, load_dataset
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset

ALL_DATASETS = dataset_names()

#: Ragged sizes around the word boundary plus word-aligned ones.
BATCH_SIZES = (1, 3, 63, 64, 65, 127, 128, 129, 257)


@lru_cache(maxsize=None)
def _trained(name: str, depth: int, seed: int):
    """Train once per (dataset, depth, seed); shared across examples."""
    dataset = load_dataset(name, seed=seed)
    X_train, X_test, y_train, _ = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    tree = ADCAwareTrainer(max_depth=depth, gini_threshold=0.01, seed=seed).fit(
        quantize_dataset(X_train), y_train, dataset.n_classes
    )
    return tree, UnaryDecisionTree(tree), quantize_dataset(X_test)


configs = st.tuples(
    st.sampled_from(ALL_DATASETS),
    st.integers(min_value=2, max_value=5),     # depth
    st.integers(min_value=0, max_value=1),     # training seed
)


class TestKernelEquivalenceProperties:
    @given(configs, st.sampled_from(BATCH_SIZES))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_kernel_matches_batch_engine_on_ragged_batches(self, config, n_samples):
        name, depth, seed = config
        tree, unary, X_levels = _trained(name, depth, seed)
        repeats = -(-n_samples // len(X_levels))
        levels = np.tile(X_levels, (repeats, 1))[:n_samples]
        kernel = compile_tree_kernel(tree)
        np.testing.assert_array_equal(
            kernel.predict_levels(levels), unary.predict_levels(levels)
        )
        np.testing.assert_array_equal(
            kernel.predict_levels(levels), tree.predict_levels(levels)
        )

    @given(configs)
    @settings(max_examples=24, deadline=None, derandomize=True)
    def test_kernel_matches_predict_from_digits_batch(self, config):
        name, depth, seed = config
        tree, unary, X_levels = _trained(name, depth, seed)
        digits: dict[int, dict[int, np.ndarray]] = {}
        for feature, level in unary.comparators:
            digits.setdefault(feature, {})[level] = X_levels[:, feature] >= level
        np.testing.assert_array_equal(
            compile_tree_kernel(tree).predict_levels(X_levels),
            unary.predict_from_digits_batch(digits),
        )

    @given(configs, st.sampled_from(BATCH_SIZES), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_pack_roundtrip_on_tree_digit_matrices(self, config, n_samples, rnd):
        name, depth, seed = config
        tree, _, X_levels = _trained(name, depth, seed)
        kernel = compile_tree_kernel(tree)
        if kernel.n_digits == 0:
            return
        rng = np.random.default_rng(rnd)
        rows = rng.integers(0, len(X_levels), size=n_samples)
        digits = kernel.digit_matrix_from_levels(X_levels[rows])
        packed = kernel.pack_digit_matrix(digits)
        assert packed.words.shape == (kernel.n_digits, -(-n_samples // 64))
        np.testing.assert_array_equal(
            unpack_digit_matrix(packed.words, n_samples), digits
        )
        np.testing.assert_array_equal(
            packed.words, pack_digit_matrix(np.ascontiguousarray(digits))
        )
