"""Property-based tests for trained trees and their unary translation (hypothesis).

These are the invariants the whole co-design rests on:

* the trained tree respects its depth bound and its thresholds live on the
  ADC grid;
* the parallel unary translation is functionally identical to the tree for
  every possible quantized input;
* the bespoke ADC front end retains exactly the digits the logic consumes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.bespoke_adc import build_bespoke_adcs
from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.cart import CARTTrainer

N_FEATURES = 4
N_LEVELS = 16


def dataset_strategy(min_samples=20, max_samples=60):
    """Random small quantized datasets with 2-3 classes."""
    return st.integers(min_value=min_samples, max_value=max_samples).flatmap(
        lambda n: st.tuples(
            arrays(np.int64, (n, N_FEATURES), elements=st.integers(0, N_LEVELS - 1)),
            arrays(np.int64, (n,), elements=st.integers(0, 2)),
        )
    )


trainer_params = st.tuples(
    st.integers(min_value=1, max_value=4),            # depth
    st.sampled_from([0.0, 0.01, 0.03]),               # tau
    st.integers(min_value=0, max_value=3),            # seed
)


class TestTrainedTreeProperties:
    @given(dataset_strategy(), trainer_params)
    @settings(max_examples=40, deadline=None)
    def test_cart_tree_invariants(self, dataset, params):
        X_levels, y = dataset
        depth, _, seed = params
        tree = CARTTrainer(max_depth=depth, seed=seed).fit(X_levels, y, n_classes=3)

        assert tree.depth <= depth
        for feature, level in tree.comparisons():
            assert 0 <= feature < N_FEATURES
            assert 1 <= level <= N_LEVELS - 1
        # training-set predictions are valid class labels
        predictions = tree.predict_levels(X_levels)
        assert set(predictions) <= {0, 1, 2}
        # sample counts along the tree are conserved
        assert tree.root.n_samples == len(y)
        for node in tree.decision_nodes():
            assert node.n_samples == node.left.n_samples + node.right.n_samples

    @given(dataset_strategy(), trainer_params)
    @settings(max_examples=40, deadline=None)
    def test_adc_aware_tree_invariants(self, dataset, params):
        X_levels, y = dataset
        depth, tau, seed = params
        tree = ADCAwareTrainer(
            max_depth=depth, gini_threshold=tau, seed=seed
        ).fit(X_levels, y, n_classes=3)
        assert tree.depth <= depth
        unique = set(tree.unique_comparisons())
        assert len(unique) <= tree.n_decision_nodes or tree.n_decision_nodes == 0


class TestUnaryEquivalenceProperties:
    @given(dataset_strategy(), trainer_params, st.data())
    @settings(max_examples=30, deadline=None)
    def test_unary_translation_equivalent_on_random_inputs(self, dataset, params, data):
        X_levels, y = dataset
        depth, tau, seed = params
        tree = ADCAwareTrainer(
            max_depth=depth, gini_threshold=tau, seed=seed
        ).fit(X_levels, y, n_classes=3)
        unary = UnaryDecisionTree(tree)

        probe = data.draw(
            arrays(np.int64, (25, N_FEATURES), elements=st.integers(0, N_LEVELS - 1))
        )
        np.testing.assert_array_equal(
            unary.predict_levels(probe), tree.predict_levels(probe)
        )

    @given(dataset_strategy(), trainer_params)
    @settings(max_examples=30, deadline=None)
    def test_bespoke_adcs_cover_exactly_the_required_digits(self, dataset, params):
        X_levels, y = dataset
        depth, tau, seed = params
        tree = ADCAwareTrainer(
            max_depth=depth, gini_threshold=tau, seed=seed
        ).fit(X_levels, y, n_classes=3)
        adcs = build_bespoke_adcs(tree)
        required = tree.required_levels()
        assert set(adcs) == set(required)
        for feature, levels in required.items():
            assert adcs[feature].retained_levels == levels
            # never more comparators than a conventional flash ADC
            assert adcs[feature].n_unary_digits <= N_LEVELS - 1
