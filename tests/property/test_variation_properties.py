"""Property-based tests for the analytic comparator flip-probability model.

The offset-aware training penalty and the variation-aware co-design both
lean on one closed form: a comparator digit flips with probability
``Phi(-|margin| / sigma)`` under a centered Gaussian input offset.  These
tests pin the properties that make the model trustworthy:

* basic shape: probabilities live in ``[0, 1/2]``, are symmetric in the
  margin sign, decrease with distance from the threshold, and increase
  with sigma;
* the degenerate limits: exactly zero at ``sigma = 0`` and vanishing as
  ``sigma -> 0``;
* agreement with the *sampled* path: the analytic per-(sample, comparator)
  flip probabilities match Monte-Carlo digit-flip rates computed from
  :meth:`ComparatorOffsetModel.sample_matrix` -- the same generator the
  production Monte-Carlo uses -- within CLT tolerance, on fixed trees and
  on hypothesis-generated random trees/datasets.

Everything is seeded (hypothesis runs derandomized), so the CLT bounds are
deterministic, not flaky.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.unary_tree import UnaryDecisionTree
from repro.core.variation import (
    ComparatorOffsetModel,
    analytic_flip_probabilities,
)
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.quantize import quantize_dataset
from repro.mltrees.split_search import level_flip_matrix, normal_cdf

N_FEATURES = 4
N_LEVELS = 16

margins_strategy = arrays(
    np.float64,
    st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
)

sigma_strategy = st.sampled_from([1e-4, 1e-3, 0.01, 0.02, 0.04, 0.1])


class TestFlipProbabilityClosedForm:
    @given(margins_strategy, sigma_strategy)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_probabilities_bounded_by_half(self, margins, sigma):
        p = ComparatorOffsetModel(sigma_v=sigma).flip_probability(margins)
        assert np.all(p >= 0.0)
        # a centered offset can at worst coin-flip the digit
        assert np.all(p <= 0.5 + 1e-12)

    @given(margins_strategy, sigma_strategy)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_symmetric_in_margin_sign(self, margins, sigma):
        model = ComparatorOffsetModel(sigma_v=sigma)
        np.testing.assert_allclose(
            model.flip_probability(margins),
            model.flip_probability(-margins),
            rtol=1e-10,
            atol=1e-12,
        )

    @given(margins_strategy, sigma_strategy)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_monotone_decreasing_in_margin_distance(self, margins, sigma):
        model = ComparatorOffsetModel(sigma_v=sigma)
        order = np.argsort(np.abs(margins))
        p_sorted = model.flip_probability(margins[order])
        assert np.all(np.diff(p_sorted) <= 1e-12)

    @given(margins_strategy)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_monotone_increasing_in_sigma(self, margins):
        sigmas = (1e-4, 1e-3, 0.01, 0.02, 0.04, 0.1)
        stacked = np.stack(
            [
                ComparatorOffsetModel(sigma_v=sigma).flip_probability(margins)
                for sigma in sigmas
            ]
        )
        assert np.all(np.diff(stacked, axis=0) >= -1e-12)

    @given(margins_strategy)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_exactly_zero_at_sigma_zero(self, margins):
        p = ComparatorOffsetModel(sigma_v=0.0).flip_probability(margins)
        np.testing.assert_array_equal(p, np.zeros_like(margins))

    def test_vanishes_as_sigma_approaches_zero(self):
        margins = np.array([-0.3, -0.05, 0.02, 0.4])
        for sigma in (1e-2, 1e-3, 1e-4):
            p = ComparatorOffsetModel(sigma_v=sigma).flip_probability(margins)
            # |margin| >= 0.02 is >= 2 sigma even at the largest sigma here
            assert np.all(p <= normal_cdf(-2.0) + 1e-15)
        assert np.all(
            ComparatorOffsetModel(sigma_v=1e-4).flip_probability(margins) < 1e-12
        )

    @given(margins_strategy, sigma_strategy)
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_vdd_rescales_the_volt_domain_statistics(self, margins, sigma):
        vdd = 0.8
        np.testing.assert_allclose(
            ComparatorOffsetModel(sigma_v=sigma).flip_probability(margins, vdd=vdd),
            ComparatorOffsetModel(sigma_v=sigma / vdd).flip_probability(margins),
            rtol=1e-12,
            atol=0,
        )

    def test_deterministic_mean_offset_at_sigma_zero(self):
        # offset is exactly `mean`: the flip is certain or impossible
        model = ComparatorOffsetModel(sigma_v=0.0, mean_v=0.1)
        margins = np.array([0.05, 0.2, -0.05])
        # m=0.05: digit 1 nominally, offset threshold shift 0.1 > m -> flips;
        # m=0.2: survives; m=-0.05: nominal 0 stays 0 (offset raises threshold)
        np.testing.assert_array_equal(
            model.flip_probability(margins), [1.0, 0.0, 0.0]
        )

    def test_invalid_vdd_rejected(self):
        with pytest.raises(ValueError, match="vdd"):
            ComparatorOffsetModel(sigma_v=0.01).flip_probability(
                np.array([0.1]), vdd=0.0
            )


class TestLevelFlipMatrix:
    def test_shape_and_bounds(self):
        matrix = level_flip_matrix(N_LEVELS, 0.04)
        assert matrix.shape == (N_LEVELS, N_LEVELS - 1)
        assert np.all((matrix >= 0) & (matrix <= 0.5))
        assert not matrix.flags.writeable  # cached: must be immutable

    def test_zero_sigma_is_all_zero(self):
        assert not level_flip_matrix(N_LEVELS, 0.0).any()

    def test_monotone_in_sigma_and_distance(self):
        small = level_flip_matrix(N_LEVELS, 0.01)
        large = level_flip_matrix(N_LEVELS, 0.05)
        assert np.all(large >= small)
        # along one threshold column, probabilities fall with level distance
        column = large[:, 7]  # threshold k = 8
        distances = np.abs(np.arange(N_LEVELS) + 0.5 - 8)
        order = np.argsort(distances)
        assert np.all(np.diff(column[order]) <= 1e-12)

    def test_matches_closed_form_margins(self):
        sigma = 0.03
        matrix = level_flip_matrix(N_LEVELS, sigma)
        model = ComparatorOffsetModel(sigma_v=sigma)
        levels = np.arange(N_LEVELS, dtype=float)
        for k in (1, 5, 15):
            margins = (levels + 0.5 - k) / N_LEVELS
            np.testing.assert_allclose(
                matrix[:, k - 1], model.flip_probability(margins), rtol=1e-12
            )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            level_flip_matrix(1, 0.01)
        with pytest.raises(ValueError):
            level_flip_matrix(N_LEVELS, -0.01)


def _empirical_flip_rates(
    tree, X: np.ndarray, sigma_v: float, n_trials: int, seed: int, vdd: float = 1.0
) -> np.ndarray:
    """Monte-Carlo digit-flip rates from the production offset generator.

    Draws the offset matrix exactly like :func:`simulate_offset_variation`
    (same ``sample_matrix`` stream) and compares every comparator digit with
    and without offsets; returns the ``(n_samples, n_comparators)`` flip
    frequency.
    """
    unary = tree if isinstance(tree, UnaryDecisionTree) else UnaryDecisionTree(tree)
    comparators = unary.comparators
    features = np.array([feature for feature, _ in comparators], dtype=np.intp)
    levels = np.array([level for _, level in comparators], dtype=float)
    n_levels = 2 ** unary.resolution_bits
    values = np.clip(np.asarray(X, dtype=float)[:, features], 0.0, 1.0)
    nominal = values >= levels / n_levels

    offsets = ComparatorOffsetModel(sigma_v=sigma_v).sample_matrix(
        np.random.default_rng(seed), n_trials, len(comparators)
    )
    shifted = levels / n_levels + offsets[:, np.newaxis, :] / vdd
    flipped = (values[np.newaxis, :, :] >= shifted) != nominal[np.newaxis, :, :]
    return flipped.mean(axis=0)


class TestAnalyticMatchesMonteCarlo:
    N_TRIALS = 10_000

    def test_agrees_with_10k_trial_monte_carlo_within_3_standard_errors(
        self, small_tree, small_dataset
    ):
        """Acceptance bound: |MC rate - analytic P| <= 3 SE, per entry.

        Fully seeded, so the bound is checked against one fixed draw and the
        test is deterministic.
        """
        X, _ = small_dataset
        sigma_v = 0.03
        analytic = analytic_flip_probabilities(small_tree, X, sigma_v)
        empirical = _empirical_flip_rates(
            small_tree, X, sigma_v, n_trials=self.N_TRIALS, seed=0
        )
        assert analytic.shape == empirical.shape
        standard_error = np.sqrt(analytic * (1.0 - analytic) / self.N_TRIALS)
        # the 1/n term absorbs the discreteness of the empirical frequency
        tolerance = 3.0 * standard_error + 1.0 / self.N_TRIALS
        assert np.all(np.abs(empirical - analytic) <= tolerance)

    def test_standardized_deviations_look_like_noise(self, small_tree, small_dataset):
        """The model is unbiased, not just within-bound: mean |z| ~ 0.8."""
        X, _ = small_dataset
        sigma_v = 0.04
        analytic = analytic_flip_probabilities(small_tree, X, sigma_v)
        empirical = _empirical_flip_rates(
            small_tree, X, sigma_v, n_trials=self.N_TRIALS, seed=1
        )
        standard_error = np.sqrt(analytic * (1.0 - analytic) / self.N_TRIALS)
        informative = standard_error > 0
        z = (empirical[informative] - analytic[informative]) / standard_error[informative]
        assert np.mean(np.abs(z)) < 1.5

    @given(
        arrays(
            np.float64,
            (30, N_FEATURES),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        arrays(np.int64, (30,), elements=st.integers(0, 2)),
        st.sampled_from([0.01, 0.02, 0.05]),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_agreement_on_random_trees_and_datasets(self, X, y, sigma_v):
        tree = CARTTrainer(max_depth=3, seed=0).fit(
            quantize_dataset(X), y, n_classes=3
        )
        unary = UnaryDecisionTree(tree)
        if not unary.comparators:  # degenerate single-leaf tree: nothing to flip
            assert analytic_flip_probabilities(tree, X, sigma_v).shape == (30, 0)
            return
        n_trials = 2_000
        analytic = analytic_flip_probabilities(tree, X, sigma_v)
        empirical = _empirical_flip_rates(tree, X, sigma_v, n_trials=n_trials, seed=0)
        standard_error = np.sqrt(analytic * (1.0 - analytic) / n_trials)
        # looser multiple at the smaller trial count: the hypothesis sweep
        # checks many (tree, dataset) pairs, each with hundreds of entries
        assert np.all(np.abs(empirical - analytic) <= 4.0 * standard_error + 5e-3)

    def test_analytic_matrix_monotone_in_sigma_on_a_real_tree(
        self, small_tree, small_dataset
    ):
        X, _ = small_dataset
        probabilities = [
            analytic_flip_probabilities(small_tree, X, sigma) for sigma in
            (0.0, 0.005, 0.01, 0.02, 0.04)
        ]
        assert not probabilities[0].any()  # sigma = 0: never flips
        for smaller, larger in zip(probabilities, probabilities[1:]):
            assert np.all(larger >= smaller - 1e-12)
