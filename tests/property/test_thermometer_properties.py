"""Property-based tests for thermometer coding (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc.thermometer import (
    binary_to_level,
    from_thermometer,
    is_valid_thermometer,
    level_to_binary,
    quantize_to_level,
    threshold_to_digit,
    to_thermometer,
    unary_digit,
)

resolutions = st.integers(min_value=1, max_value=8)


class TestQuantizationProperties:
    @given(st.floats(min_value=0.0, max_value=1.0), resolutions)
    def test_level_always_in_range(self, value, bits):
        level = quantize_to_level(value, bits)
        assert 0 <= level <= 2 ** bits - 1

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        resolutions,
    )
    def test_quantization_is_monotone(self, a, b, bits):
        low, high = min(a, b), max(a, b)
        assert quantize_to_level(low, bits) <= quantize_to_level(high, bits)

    @given(st.floats(allow_nan=False, allow_infinity=False), resolutions)
    def test_out_of_range_values_never_crash(self, value, bits):
        level = quantize_to_level(value, bits)
        assert 0 <= level <= 2 ** bits - 1

    @given(st.integers(min_value=0, max_value=255), resolutions)
    def test_grid_point_roundtrip(self, raw_level, bits):
        level = raw_level % (2 ** bits)
        assert quantize_to_level(level / 2 ** bits, bits) == level


class TestThermometerProperties:
    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=1, max_value=63))
    def test_roundtrip(self, level, n_taps):
        level = level % (n_taps + 1)
        code = to_thermometer(level, n_taps)
        assert is_valid_thermometer(code)
        assert from_thermometer(code) == level
        assert sum(code) == level

    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=1, max_value=63))
    def test_digits_are_monotone_nonincreasing(self, level, n_taps):
        level = level % (n_taps + 1)
        code = to_thermometer(level, n_taps)
        assert all(a >= b for a, b in zip(code, code[1:]))

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=1, max_value=31),
        st.integers(min_value=1, max_value=31),
    )
    def test_unary_digit_matches_comparison(self, level, k, n_taps):
        level = level % (n_taps + 1)
        k = (k % n_taps) + 1
        assert unary_digit(level, k) == (1 if level >= k else 0)


class TestBinaryProperties:
    @given(st.integers(min_value=0, max_value=255), resolutions)
    def test_roundtrip(self, raw, bits):
        level = raw % (2 ** bits)
        assert binary_to_level(level_to_binary(level, bits)) == level


class TestThresholdDigitProperties:
    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=300)
    def test_digit_equivalent_to_threshold_comparison(self, threshold_level, value_level):
        """Eq. (2): x >= C on the 4-bit grid is exactly one unary digit read."""
        threshold = threshold_level / 16
        digit = threshold_to_digit(threshold, 4)
        value = value_level / 16
        assert (value >= threshold) == (quantize_to_level(value, 4) >= digit)
