"""Property-based tests for the sum-of-products minimizer (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.two_level import Literal, SumOfProducts

VARIABLES = ["a", "b", "c", "d"]

literals = st.builds(
    Literal,
    name=st.sampled_from(VARIABLES),
    positive=st.booleans(),
)
terms = st.lists(literals, min_size=0, max_size=4)
sops = st.lists(terms, min_size=0, max_size=6).map(SumOfProducts)


def truth_table(sop: SumOfProducts):
    return tuple(
        sop.evaluate(dict(zip(VARIABLES, bits)))
        for bits in itertools.product((False, True), repeat=len(VARIABLES))
    )


class TestMinimizationProperties:
    @given(sops)
    @settings(max_examples=200)
    def test_minimization_preserves_the_function(self, sop):
        assert truth_table(sop.minimized()) == truth_table(sop)

    @given(sops)
    @settings(max_examples=200)
    def test_minimization_never_increases_cost(self, sop):
        minimized = sop.minimized()
        assert minimized.n_terms <= sop.n_terms
        assert minimized.n_literals <= sop.n_literals

    @given(sops)
    @settings(max_examples=100)
    def test_minimization_is_idempotent(self, sop):
        once = sop.minimized()
        twice = once.minimized()
        assert truth_table(once) == truth_table(twice)
        assert twice.n_literals == once.n_literals

    @given(sops)
    def test_constant_detection_consistent_with_evaluation(self, sop):
        table = truth_table(sop)
        if sop.is_false():
            assert not any(table)
        if sop.is_true():
            assert all(table)

    @given(sops, sops)
    @settings(max_examples=100)
    def test_union_of_terms_is_disjunction(self, first, second):
        union = SumOfProducts(list(first.terms) + list(second.terms))
        expected = tuple(
            a or b for a, b in zip(truth_table(first), truth_table(second))
        )
        assert truth_table(union) == expected
