"""Qualitative paper-claim tests.

Each test here corresponds to one sentence-level claim of the paper and
checks it on small benchmarks so the whole module stays fast.  The full
quantitative regeneration of every table/figure lives in ``benchmarks/``.
"""

import pytest

from repro.adc.bespoke import BespokeADC
from repro.adc.flash import FlashADC
from repro.baselines.mubarik import BaselineBespokeDesign
from repro.core.codesign import CoDesignFramework
from repro.core.exploration import proposed_hardware_report
from repro.core.power_budget import analyze_self_power
from repro.core.unary_tree import UnaryDecisionTree
from repro.datasets.registry import load_dataset
from repro.mltrees.cart import fit_baseline_tree
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology


@pytest.fixture(scope="module")
def technology():
    return default_technology()


@pytest.fixture(scope="module")
def codesign_results(technology):
    """Full co-design runs on the three small benchmarks."""
    framework = CoDesignFramework(
        technology=technology, seed=0, include_approximate_baseline=False
    )
    return {
        name: framework.run(load_dataset(name, seed=0))
        for name in ("balance_scale", "vertebral_3c", "seeds")
    }


class TestSectionIIIAClaims:
    """Section III-A: the unary architecture removes all tree comparators."""

    def test_unary_tree_has_no_comparators_and_matches_the_model(self, technology):
        dataset = load_dataset("seeds", seed=0)
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, 0.3, seed=0
        )
        fit = fit_baseline_tree(
            quantize_dataset(X_train), y_train, quantize_dataset(X_test), y_test,
            dataset.n_classes,
        )
        unary = UnaryDecisionTree(fit.tree)
        report = proposed_hardware_report(fit.tree, technology)
        assert report.n_tree_comparators == 0
        # functional equivalence on the test set
        assert (unary.predict(X_test) == fit.tree.predict(X_test)).all()

    def test_each_label_is_two_level_logic(self, technology):
        dataset = load_dataset("balance_scale", seed=0)
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, 0.3, seed=0
        )
        fit = fit_baseline_tree(
            quantize_dataset(X_train), y_train, quantize_dataset(X_test), y_test,
            dataset.n_classes,
        )
        unary = UnaryDecisionTree(fit.tree)
        for sop in unary.label_logic.values():
            # every product term only references unary digit variables
            for term in sop.terms:
                for literal in term:
                    assert literal.name.startswith("I")
                    assert "_u" in literal.name


class TestSectionIIIBClaims:
    """Section III-B: bespoke ADCs are dramatically cheaper than conventional."""

    def test_bespoke_adc_orders_of_magnitude_smaller(self, technology):
        conventional = FlashADC(4, technology)
        bespoke = BespokeADC((1, 2, 4, 7), technology=technology)
        assert conventional.area_mm2 / bespoke.area_mm2 > 20
        assert conventional.power_uw / bespoke.power_uw > 4

    def test_low_order_outputs_cost_less_power(self, technology):
        low = BespokeADC((1, 2), technology=technology)
        high = BespokeADC((14, 15), technology=technology)
        assert high.power_uw > 2 * low.power_uw


class TestSectionIVClaims:
    """Section IV: baselines exceed the harvester budget, co-designs fit it."""

    def test_no_baseline_is_self_powered(self, codesign_results, technology):
        for result in codesign_results.values():
            analysis = analyze_self_power(result.baseline.hardware, technology)
            assert not analysis.is_self_powered

    def test_adcs_dominate_baseline_power(self, codesign_results):
        for result in codesign_results.values():
            assert result.baseline.hardware.adc_power_fraction > 0.5

    def test_codesign_is_self_powered_at_one_percent_loss(self, codesign_results, technology):
        for result in codesign_results.values():
            chosen = result.selected.get(0.01)
            assert chosen is not None
            analysis = analyze_self_power(chosen.hardware, technology)
            assert analysis.is_self_powered

    def test_codesign_beats_baseline_by_integer_factors(self, codesign_results):
        for result in codesign_results.values():
            reduction = result.table2_reduction(0.01)
            assert reduction.area_factor > 2.0
            assert reduction.power_factor > 3.0

    def test_accuracy_loss_constraint_is_respected(self, codesign_results):
        for result in codesign_results.values():
            for loss, design in result.selected.items():
                assert design.accuracy >= result.baseline.accuracy - loss - 1e-9

    def test_unary_architecture_alone_already_wins(self, codesign_results):
        for result in codesign_results.values():
            reduction = result.fig4_reduction()
            assert reduction.area_factor > 1.0
            assert reduction.power_factor > 1.0

    def test_baseline_digital_part_smaller_share_than_adcs(self, technology):
        """40% of area / 74% of power of the baseline goes to ADCs (averages)."""
        dataset = load_dataset("vertebral_2c", seed=0)
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, 0.3, seed=0
        )
        fit = fit_baseline_tree(
            quantize_dataset(X_train), y_train, quantize_dataset(X_test), y_test,
            dataset.n_classes,
        )
        report = BaselineBespokeDesign(fit.tree, technology).hardware_report()
        assert report.adc_power_fraction > report.adc_area_fraction
        assert report.adc_power_fraction > 0.6
