"""Unit tests for static timing estimation."""

import pytest

from repro.baselines.mubarik import build_comparator_tree_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.timing import cell_delay_ms, estimate_timing
from repro.core.unary_tree import UnaryDecisionTree


def _chain_netlist(length: int) -> Netlist:
    netlist = Netlist(f"chain{length}")
    current = netlist.add_input("a")
    for _ in range(length):
        current = netlist.add_gate("INV", [current])
    netlist.add_gate("BUF", [current], output="y")
    netlist.add_output("y")
    return netlist


class TestCellDelay:
    def test_constants_have_zero_delay(self, technology):
        assert cell_delay_ms("CONST0", technology) == 0.0
        assert cell_delay_ms("CONST1", technology) == 0.0

    def test_bigger_cells_are_slower(self, technology):
        assert cell_delay_ms("AND4", technology) > cell_delay_ms("INV", technology)

    def test_delay_positive_for_logic_cells(self, technology):
        for cell in ("INV", "NAND2", "AND2", "OR4", "XOR2"):
            assert cell_delay_ms(cell, technology) > 0


class TestEstimateTiming:
    def test_longer_chain_has_longer_critical_path(self, technology):
        short = estimate_timing(_chain_netlist(2), technology)
        long = estimate_timing(_chain_netlist(10), technology)
        assert long.critical_path_delay_ms > short.critical_path_delay_ms
        assert long.logic_depth == 11  # 10 inverters + output buffer

    def test_critical_path_gates_are_in_order(self, technology):
        netlist = _chain_netlist(3)
        report = estimate_timing(netlist, technology)
        names = [gate.name for gate in netlist.topological_order()]
        assert list(report.critical_path) == names

    def test_sampling_period_from_technology(self, technology):
        report = estimate_timing(_chain_netlist(1), technology)
        assert report.sampling_period_ms == pytest.approx(50.0)  # 20 Hz

    def test_slack_and_meets_timing(self, technology):
        report = estimate_timing(_chain_netlist(1), technology)
        assert report.meets_timing
        assert report.slack_ms == pytest.approx(
            report.sampling_period_ms - report.critical_path_delay_ms
        )

    def test_parallel_paths_pick_the_slowest(self, technology):
        netlist = Netlist("parallel")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        slow = netlist.add_gate("INV", [a])
        slow = netlist.add_gate("INV", [slow])
        slow = netlist.add_gate("INV", [slow])
        netlist.add_gate("AND2", [slow, b], output="y")
        netlist.add_output("y")
        report = estimate_timing(netlist, technology)
        assert report.logic_depth == 4

    def test_empty_netlist(self, technology):
        report = estimate_timing(Netlist("empty"), technology)
        assert report.critical_path_delay_ms == 0.0
        assert report.logic_depth == 0
        assert report.meets_timing

    def test_unary_tree_meets_20hz_timing(self, small_tree, technology):
        """The two-level unary logic easily fits the 50 ms sampling period."""
        unary = UnaryDecisionTree(small_tree)
        report = estimate_timing(unary.to_netlist(), technology)
        assert report.meets_timing
        assert report.logic_depth <= 8

    def test_unary_tree_shallower_than_baseline(self, small_tree, technology):
        """Removing comparators shortens the logic depth (two-level logic)."""
        unary_report = estimate_timing(
            UnaryDecisionTree(small_tree).to_netlist(), technology
        )
        baseline_report = estimate_timing(
            build_comparator_tree_netlist(small_tree), technology
        )
        assert unary_report.logic_depth <= baseline_report.logic_depth
        assert unary_report.critical_path_delay_ms <= baseline_report.critical_path_delay_ms
