"""Unit tests for netlist area/power estimation."""

import pytest

from repro.circuits.area_power import AreaPowerReport, estimate_netlist
from repro.circuits.netlist import Netlist


def _small_netlist() -> Netlist:
    netlist = Netlist("small")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    n1 = netlist.add_gate("AND2", [a, b])
    netlist.add_gate("INV", [n1], output="y")
    netlist.add_output("y")
    return netlist


class TestEstimateNetlist:
    def test_sums_cell_costs_with_wiring_overhead(self, technology):
        report = estimate_netlist(_small_netlist(), technology)
        library = technology.cell_library
        raw_area = library["AND2"].area_mm2 + library["INV"].area_mm2
        assert report.area_mm2 == pytest.approx(raw_area * technology.wiring_area_overhead)
        assert report.power_uw == pytest.approx(
            library["AND2"].power_uw + library["INV"].power_uw
        )
        assert report.n_gates == 2
        assert report.cell_counts == {"AND2": 1, "INV": 1}

    def test_constants_not_counted_as_gates(self, technology):
        netlist = Netlist("const")
        netlist.add_constant(True, output="y")
        netlist.add_output("y")
        report = estimate_netlist(netlist, technology)
        assert report.n_gates == 0
        assert report.area_mm2 == 0.0
        assert report.cell_counts == {"CONST1": 1}

    def test_empty_netlist(self, technology):
        report = estimate_netlist(Netlist("empty"), technology)
        assert report.area_mm2 == 0.0
        assert report.power_uw == 0.0
        assert report.n_gates == 0

    def test_power_mw_conversion(self):
        report = AreaPowerReport(name="x", area_mm2=1.0, power_uw=1500.0, n_gates=3)
        assert report.power_mw == pytest.approx(1.5)

    def test_report_addition(self):
        first = AreaPowerReport("a", 1.0, 10.0, 2, {"INV": 2})
        second = AreaPowerReport("b", 2.0, 30.0, 3, {"INV": 1, "AND2": 2})
        combined = first + second
        assert combined.area_mm2 == pytest.approx(3.0)
        assert combined.power_uw == pytest.approx(40.0)
        assert combined.n_gates == 5
        assert combined.cell_counts == {"INV": 3, "AND2": 2}

    def test_bigger_netlist_costs_more(self, technology):
        small = estimate_netlist(_small_netlist(), technology)
        netlist = _small_netlist()
        netlist.add_gate("OR4", ["a", "b", "a", "b"])
        bigger = estimate_netlist(netlist, technology)
        assert bigger.area_mm2 > small.area_mm2
        assert bigger.power_uw > small.power_uw
