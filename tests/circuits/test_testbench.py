"""Unit tests for the Verilog testbench generator."""

import itertools

import pytest

from repro.circuits.netlist import Netlist
from repro.circuits.testbench import generate_verilog_testbench


def _xor_netlist() -> Netlist:
    netlist = Netlist("xor_block")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate("XOR2", [a, b], output="y")
    netlist.add_output("y")
    return netlist


def _all_vectors(netlist: Netlist):
    names = netlist.inputs
    return [
        dict(zip(names, bits))
        for bits in itertools.product((False, True), repeat=len(names))
    ]


class TestGenerateVerilogTestbench:
    def test_structure(self):
        netlist = _xor_netlist()
        source = generate_verilog_testbench(netlist, _all_vectors(netlist))
        assert "module xor_block_tb;" in source
        assert "xor_block dut (" in source
        assert source.count("// vector ") == 4
        assert "TESTBENCH PASSED" in source
        assert source.rstrip().endswith("endmodule")

    def test_expected_values_come_from_simulator(self):
        netlist = _xor_netlist()
        source = generate_verilog_testbench(
            netlist, [{"a": True, "b": False}, {"a": True, "b": True}]
        )
        # XOR(1,0) = 1 and XOR(1,1) = 0 must appear as expectations on y.
        assert "if (y !== 1'b1)" in source
        assert "if (y !== 1'b0)" in source

    def test_one_check_per_output_and_vector(self):
        netlist = Netlist("two_out")
        a = netlist.add_input("a")
        netlist.add_gate("BUF", [a], output="same")
        netlist.add_gate("INV", [a], output="inverted")
        netlist.add_output("same")
        netlist.add_output("inverted")
        vectors = [{"a": False}, {"a": True}]
        source = generate_verilog_testbench(netlist, vectors)
        assert source.count("if (same !==") == 2
        assert source.count("if (inverted !==") == 2

    def test_custom_names(self):
        netlist = _xor_netlist()
        source = generate_verilog_testbench(
            netlist, _all_vectors(netlist), module_name="dut_top", testbench_name="tb_top"
        )
        assert "module tb_top;" in source
        assert "dut_top dut (" in source

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValueError):
            generate_verilog_testbench(_xor_netlist(), [])

    def test_incomplete_vector_rejected(self):
        with pytest.raises(KeyError):
            generate_verilog_testbench(_xor_netlist(), [{"a": True}])
