"""Unit tests for the RTL co-simulation layer.

Everything except the ``TestRealSimulation`` class runs without a Verilog
simulator installed; the real-execution tests skip (never fail) on bare
containers and run in full on the nightly CI cosim job.
"""

import itertools

import pytest

from repro.circuits.cosim import (
    DEFAULT_RANDOM_VECTORS,
    MAX_EXHAUSTIVE_INPUTS,
    SIMULATORS,
    CosimError,
    CosimReport,
    SimulatorNotFoundError,
    _parse_verdict,
    available_simulators,
    find_simulator,
    run_cosim,
    testbench_vectors as tb_vectors,
    write_cosim_sources,
)
from repro.circuits.netlist import Netlist
from repro.core.unary_tree import UnaryDecisionTree


def _xor_netlist() -> Netlist:
    netlist = Netlist("xor_block")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate("XOR2", [a, b], output="y")
    netlist.add_output("y")
    return netlist


def _wide_netlist(n_inputs: int) -> Netlist:
    netlist = Netlist("wide_or")
    nets = [netlist.add_input(f"i{k}") for k in range(n_inputs)]
    netlist.add_gate(f"OR{n_inputs}", nets, output="any_set")
    netlist.add_output("any_set")
    return netlist


class TestTestbenchVectors:
    def test_small_netlist_is_exhaustive_in_binary_order(self):
        netlist = _xor_netlist()
        vectors, exhaustive = tb_vectors(netlist)
        assert exhaustive
        expected = [
            dict(zip(("a", "b"), bits))
            for bits in itertools.product((False, True), repeat=2)
        ]
        assert vectors == expected

    def test_wide_netlist_samples_seeded_random_vectors(self):
        netlist = _wide_netlist(MAX_EXHAUSTIVE_INPUTS + 1)
        vectors, exhaustive = tb_vectors(netlist, seed=7)
        assert not exhaustive
        assert len(vectors) == DEFAULT_RANDOM_VECTORS
        again, _ = tb_vectors(netlist, seed=7)
        assert vectors == again
        different, _ = tb_vectors(netlist, seed=8)
        assert vectors != different

    def test_threshold_is_inclusive(self):
        netlist = _wide_netlist(3)
        vectors, exhaustive = tb_vectors(netlist, max_exhaustive_inputs=3)
        assert exhaustive and len(vectors) == 8
        vectors, exhaustive = tb_vectors(
            netlist, max_exhaustive_inputs=2, n_random=16
        )
        assert not exhaustive and len(vectors) == 16

    def test_rejects_empty_random_budget(self):
        with pytest.raises(ValueError, match="n_random"):
            tb_vectors(_wide_netlist(3), max_exhaustive_inputs=2, n_random=0)


class TestSimulatorDiscovery:
    def test_available_simulators_probes_path(self, monkeypatch):
        monkeypatch.setattr(
            "repro.circuits.cosim.shutil.which",
            lambda name: "/usr/bin/" + name if name == "verilator" else None,
        )
        assert available_simulators() == ("verilator",)
        assert find_simulator("auto") == "verilator"
        assert find_simulator("verilator") == "verilator"
        assert find_simulator("iverilog") is None

    def test_auto_prefers_iverilog(self, monkeypatch):
        monkeypatch.setattr(
            "repro.circuits.cosim.shutil.which", lambda name: "/usr/bin/" + name
        )
        assert available_simulators() == SIMULATORS
        assert find_simulator("auto") == "iverilog"

    def test_nothing_installed(self, monkeypatch):
        monkeypatch.setattr("repro.circuits.cosim.shutil.which", lambda name: None)
        assert available_simulators() == ()
        assert find_simulator("auto") is None

    def test_unknown_preference_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            find_simulator("modelsim")

    def test_run_cosim_without_simulator_raises(self, monkeypatch):
        monkeypatch.setattr("repro.circuits.cosim.shutil.which", lambda name: None)
        with pytest.raises(SimulatorNotFoundError, match="no usable"):
            run_cosim(_xor_netlist())


class TestParseVerdict:
    def test_pass_line(self):
        assert _parse_verdict("TESTBENCH PASSED: 64 vectors") == (True, 0)

    def test_fail_line_wins_over_pass_line(self):
        log = "TESTBENCH FAILED: 3 errors\nTESTBENCH PASSED: 64 vectors"
        assert _parse_verdict(log) == (False, 3)

    def test_missing_verdict_is_a_toolchain_error(self):
        with pytest.raises(CosimError, match="no TESTBENCH verdict"):
            _parse_verdict("segfault\n")


class TestWriteCosimSources:
    def test_writes_dut_and_fatal_testbench(self, tmp_path):
        dut, tb, n_vectors, exhaustive = write_cosim_sources(
            _xor_netlist(), tmp_path
        )
        assert dut.name == "dut.v" and tb.name == "tb.v"
        assert exhaustive and n_vectors == 4
        assert "module xor_block(" in dut.read_text(encoding="utf-8")
        tb_source = tb.read_text(encoding="utf-8")
        assert "module xor_block_tb;" in tb_source
        assert "$fatal(1);" in tb_source

    def test_tree_netlist_sources(self, tmp_path, small_tree):
        netlist = UnaryDecisionTree(small_tree).to_netlist("label_logic")
        dut, tb, n_vectors, exhaustive = write_cosim_sources(netlist, tmp_path)
        assert exhaustive
        assert n_vectors == 2 ** len(netlist.inputs)
        assert "label_logic dut (" in tb.read_text(encoding="utf-8")


class TestCosimReport:
    def test_json_dict_schema(self):
        report = CosimReport(
            module="m", simulator="iverilog", n_vectors=4, n_mismatches=0,
            exhaustive=True, returncode=0, passed=True, log="raw",
        )
        payload = report.to_json_dict()
        assert payload["schema_version"] == 1
        assert payload["kind"] == "cosim_report"
        assert payload["passed"] is True
        assert "log" not in payload  # the raw log stays out of artifacts


@pytest.mark.skipif(
    find_simulator("auto") is None,
    reason="no Verilog simulator installed (iverilog/verilator)",
)
class TestRealSimulation:
    def test_xor_passes_exhaustively(self):
        report = run_cosim(_xor_netlist())
        assert report.passed
        assert report.exhaustive
        assert report.n_vectors == 4
        assert report.n_mismatches == 0

    def test_tree_label_logic_passes(self, small_tree):
        netlist = UnaryDecisionTree(small_tree).to_netlist("label_logic")
        report = run_cosim(netlist)
        assert report.passed
        assert report.n_mismatches == 0

    def test_corrupted_dut_is_caught(self, tmp_path, monkeypatch):
        # Swap the XOR for an OR after testbench generation: the golden
        # expectations disagree on exactly the (1,1) vector.
        import repro.circuits.cosim as cosim

        original = cosim.netlist_to_verilog

        def corrupted(netlist, *args, **kwargs):
            return original(netlist, *args, **kwargs).replace("a ^ b", "a | b")

        monkeypatch.setattr(cosim, "netlist_to_verilog", corrupted)
        report = run_cosim(_xor_netlist(), workdir=tmp_path)
        assert not report.passed
        assert report.n_mismatches == 1
        assert report.returncode != 0  # $fatal propagated
