"""Unit tests for the combinational logic simulator."""

import itertools

import pytest

from repro.circuits.logic_sim import evaluate_netlist, evaluate_outputs
from repro.circuits.netlist import Netlist


def _two_input_netlist(cell: str) -> Netlist:
    netlist = Netlist(f"sim_{cell}")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate(cell, [a, b], output="y")
    netlist.add_output("y")
    return netlist


class TestPrimitiveCells:
    @pytest.mark.parametrize(
        "cell, function",
        [
            ("AND2", lambda a, b: a and b),
            ("OR2", lambda a, b: a or b),
            ("NAND2", lambda a, b: not (a and b)),
            ("NOR2", lambda a, b: not (a or b)),
            ("XOR2", lambda a, b: a != b),
            ("XNOR2", lambda a, b: a == b),
        ],
    )
    def test_two_input_cells(self, cell, function):
        netlist = _two_input_netlist(cell)
        for a, b in itertools.product((False, True), repeat=2):
            assert evaluate_outputs(netlist, {"a": a, "b": b})["y"] == function(a, b)

    def test_inverter_and_buffer(self):
        netlist = Netlist("invbuf")
        a = netlist.add_input("a")
        netlist.add_gate("INV", [a], output="ninv")
        netlist.add_gate("BUF", [a], output="nbuf")
        netlist.add_output("ninv")
        netlist.add_output("nbuf")
        assert evaluate_outputs(netlist, {"a": True}) == {"ninv": False, "nbuf": True}
        assert evaluate_outputs(netlist, {"a": False}) == {"ninv": True, "nbuf": False}

    def test_constants(self):
        netlist = Netlist("const")
        netlist.add_constant(True, output="one")
        netlist.add_constant(False, output="zero")
        netlist.add_output("one")
        netlist.add_output("zero")
        assert evaluate_outputs(netlist, {}) == {"one": True, "zero": False}

    def test_wide_and_or(self):
        netlist = Netlist("wide")
        nets = [netlist.add_input(f"i{k}") for k in range(4)]
        netlist.add_gate("AND4", nets, output="a4")
        netlist.add_gate("OR4", nets, output="o4")
        netlist.add_output("a4")
        netlist.add_output("o4")
        out = evaluate_outputs(netlist, {"i0": True, "i1": True, "i2": True, "i3": False})
        assert out["a4"] is False
        assert out["o4"] is True

    def test_mux2(self):
        netlist = Netlist("mux")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        sel = netlist.add_input("sel")
        netlist.add_gate("MUX2", [a, b, sel], output="y")
        netlist.add_output("y")
        assert evaluate_outputs(netlist, {"a": True, "b": False, "sel": False})["y"] is True
        assert evaluate_outputs(netlist, {"a": True, "b": False, "sel": True})["y"] is False

    def test_aoi_oai(self):
        netlist = Netlist("aoi")
        nets = [netlist.add_input(name) for name in "abc"]
        netlist.add_gate("AOI21", nets, output="aoi")
        netlist.add_gate("OAI21", nets, output="oai")
        netlist.add_output("aoi")
        netlist.add_output("oai")
        for a, b, c in itertools.product((False, True), repeat=3):
            out = evaluate_outputs(netlist, {"a": a, "b": b, "c": c})
            assert out["aoi"] == (not ((a and b) or c))
            assert out["oai"] == (not ((a or b) and c))


class TestSimulatorInterface:
    def test_missing_input_raises(self):
        netlist = _two_input_netlist("AND2")
        with pytest.raises(KeyError, match="missing"):
            evaluate_outputs(netlist, {"a": True})

    def test_unknown_cell_raises(self):
        netlist = Netlist("bad")
        a = netlist.add_input("a")
        netlist.add_gate("MYSTERY", [a], output="y")
        netlist.add_output("y")
        with pytest.raises(ValueError, match="MYSTERY"):
            evaluate_outputs(netlist, {"a": True})

    def test_evaluate_netlist_returns_internal_nets_too(self):
        netlist = Netlist("internal")
        a = netlist.add_input("a")
        mid = netlist.add_gate("INV", [a])
        netlist.add_gate("INV", [mid], output="y")
        netlist.add_output("y")
        values = evaluate_netlist(netlist, {"a": True})
        assert values[mid] is False
        assert values["y"] is True

    def test_multilevel_chain(self):
        netlist = Netlist("chain")
        current = netlist.add_input("a")
        for _ in range(17):
            current = netlist.add_gate("INV", [current])
        netlist.add_output(current)
        assert evaluate_outputs(netlist, {"a": True})[current] is False
