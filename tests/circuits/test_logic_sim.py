"""Unit tests for the combinational logic simulator."""

import itertools

import pytest

from repro.circuits.logic_sim import (
    CompiledNetlist,
    evaluate_netlist,
    evaluate_netlist_batch,
    evaluate_outputs,
    evaluate_outputs_batch,
)
from repro.circuits.netlist import Netlist


def _two_input_netlist(cell: str) -> Netlist:
    netlist = Netlist(f"sim_{cell}")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate(cell, [a, b], output="y")
    netlist.add_output("y")
    return netlist


class TestPrimitiveCells:
    @pytest.mark.parametrize(
        "cell, function",
        [
            ("AND2", lambda a, b: a and b),
            ("OR2", lambda a, b: a or b),
            ("NAND2", lambda a, b: not (a and b)),
            ("NOR2", lambda a, b: not (a or b)),
            ("XOR2", lambda a, b: a != b),
            ("XNOR2", lambda a, b: a == b),
        ],
    )
    def test_two_input_cells(self, cell, function):
        netlist = _two_input_netlist(cell)
        for a, b in itertools.product((False, True), repeat=2):
            assert evaluate_outputs(netlist, {"a": a, "b": b})["y"] == function(a, b)

    def test_inverter_and_buffer(self):
        netlist = Netlist("invbuf")
        a = netlist.add_input("a")
        netlist.add_gate("INV", [a], output="ninv")
        netlist.add_gate("BUF", [a], output="nbuf")
        netlist.add_output("ninv")
        netlist.add_output("nbuf")
        assert evaluate_outputs(netlist, {"a": True}) == {"ninv": False, "nbuf": True}
        assert evaluate_outputs(netlist, {"a": False}) == {"ninv": True, "nbuf": False}

    def test_constants(self):
        netlist = Netlist("const")
        netlist.add_constant(True, output="one")
        netlist.add_constant(False, output="zero")
        netlist.add_output("one")
        netlist.add_output("zero")
        assert evaluate_outputs(netlist, {}) == {"one": True, "zero": False}

    def test_wide_and_or(self):
        netlist = Netlist("wide")
        nets = [netlist.add_input(f"i{k}") for k in range(4)]
        netlist.add_gate("AND4", nets, output="a4")
        netlist.add_gate("OR4", nets, output="o4")
        netlist.add_output("a4")
        netlist.add_output("o4")
        out = evaluate_outputs(netlist, {"i0": True, "i1": True, "i2": True, "i3": False})
        assert out["a4"] is False
        assert out["o4"] is True

    def test_mux2(self):
        netlist = Netlist("mux")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        sel = netlist.add_input("sel")
        netlist.add_gate("MUX2", [a, b, sel], output="y")
        netlist.add_output("y")
        assert evaluate_outputs(netlist, {"a": True, "b": False, "sel": False})["y"] is True
        assert evaluate_outputs(netlist, {"a": True, "b": False, "sel": True})["y"] is False

    def test_aoi_oai(self):
        netlist = Netlist("aoi")
        nets = [netlist.add_input(name) for name in "abc"]
        netlist.add_gate("AOI21", nets, output="aoi")
        netlist.add_gate("OAI21", nets, output="oai")
        netlist.add_output("aoi")
        netlist.add_output("oai")
        for a, b, c in itertools.product((False, True), repeat=3):
            out = evaluate_outputs(netlist, {"a": a, "b": b, "c": c})
            assert out["aoi"] == (not ((a and b) or c))
            assert out["oai"] == (not ((a or b) and c))


class TestSimulatorInterface:
    def test_missing_input_raises(self):
        netlist = _two_input_netlist("AND2")
        with pytest.raises(KeyError, match="missing"):
            evaluate_outputs(netlist, {"a": True})

    def test_unknown_cell_raises(self):
        netlist = Netlist("bad")
        a = netlist.add_input("a")
        netlist.add_gate("MYSTERY", [a], output="y")
        netlist.add_output("y")
        with pytest.raises(ValueError, match="MYSTERY"):
            evaluate_outputs(netlist, {"a": True})

    def test_evaluate_netlist_returns_internal_nets_too(self):
        netlist = Netlist("internal")
        a = netlist.add_input("a")
        mid = netlist.add_gate("INV", [a])
        netlist.add_gate("INV", [mid], output="y")
        netlist.add_output("y")
        values = evaluate_netlist(netlist, {"a": True})
        assert values[mid] is False
        assert values["y"] is True

    def test_multilevel_chain(self):
        netlist = Netlist("chain")
        current = netlist.add_input("a")
        for _ in range(17):
            current = netlist.add_gate("INV", [current])
        netlist.add_output(current)
        assert evaluate_outputs(netlist, {"a": True})[current] is False


class TestBatchEvaluation:
    def _random_label_netlist(self) -> Netlist:
        """A multi-level netlist exercising every supported cell class."""
        netlist = Netlist("batch")
        nets = [netlist.add_input(f"i{k}") for k in range(6)]
        a = netlist.add_gate("AND3", nets[:3])
        o = netlist.add_gate("OR3", nets[3:])
        x = netlist.add_gate("XOR2", [a, o])
        m = netlist.add_gate("MUX2", [a, o, nets[0]])
        aoi = netlist.add_gate("AOI21", [x, m, nets[5]])
        inv = netlist.add_gate("INV", [aoi])
        netlist.add_gate("NAND2", [inv, nets[1]], output="y0")
        netlist.add_gate("NOR2", [x, m], output="y1")
        netlist.add_output("y0")
        netlist.add_output("y1")
        return netlist

    def test_batch_matches_scalar_on_all_vectors(self):
        netlist = self._random_label_netlist()
        vectors = list(itertools.product((False, True), repeat=6))
        matrix = {
            name: [vector[i] for vector in vectors]
            for i, name in enumerate(netlist.inputs)
        }
        batch = evaluate_outputs_batch(netlist, matrix)
        for row, vector in enumerate(vectors):
            scalar = evaluate_outputs(netlist, dict(zip(netlist.inputs, vector)))
            for net in netlist.outputs:
                assert bool(batch[net][row]) == scalar[net]

    def test_compiled_netlist_is_reusable(self):
        netlist = self._random_label_netlist()
        compiled = CompiledNetlist(netlist)
        first = compiled.evaluate_outputs({name: [True] for name in netlist.inputs})
        second = compiled.evaluate_outputs({name: [True] for name in netlist.inputs})
        for net in netlist.outputs:
            assert bool(first[net][0]) == bool(second[net][0])

    def test_batch_returns_internal_nets_too(self):
        netlist = Netlist("internal_batch")
        a = netlist.add_input("a")
        mid = netlist.add_gate("INV", [a])
        netlist.add_gate("INV", [mid], output="y")
        netlist.add_output("y")
        values = evaluate_netlist_batch(netlist, {"a": [True, False]})
        assert list(values[mid]) == [False, True]
        assert list(values["y"]) == [True, False]

    def test_missing_input_raises(self):
        netlist = _two_input_netlist("AND2")
        with pytest.raises(KeyError, match="missing"):
            evaluate_outputs_batch(netlist, {"a": [True]})

    def test_mismatched_vector_lengths_rejected(self):
        netlist = _two_input_netlist("AND2")
        with pytest.raises(ValueError, match="vectors"):
            evaluate_outputs_batch(netlist, {"a": [True, False], "b": [True]})

    def test_unknown_cell_rejected_at_compile_time(self):
        netlist = Netlist("bad_batch")
        a = netlist.add_input("a")
        netlist.add_gate("MYSTERY", [a], output="y")
        netlist.add_output("y")
        with pytest.raises(ValueError, match="MYSTERY"):
            CompiledNetlist(netlist)

    def test_inputless_netlist_uses_explicit_batch_size(self):
        netlist = Netlist("const_batch")
        netlist.add_constant(True, output="one")
        netlist.add_output("one")
        values = evaluate_outputs_batch(netlist, {}, n_vectors=3)
        assert list(values["one"]) == [True, True, True]
