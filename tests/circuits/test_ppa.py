"""Unit tests for the pluggable PPA backends.

The load-bearing guarantee: the default (analytic) backend is bit-identical
to calling the estimators directly, so introducing the backend interface
changed no number, no cache key, and no ``DesignPoint`` identity.
"""

import json

import pytest

from repro.circuits.area_power import estimate_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.ppa import (
    AnalyticPPABackend,
    PPABackend,
    PPAReportError,
    ReportPPABackend,
    load_ppa_report,
    resolve_ppa_backend,
)
from repro.circuits.timing import estimate_timing
from repro.core.exploration import DesignSpaceExplorer, select_best_design
from repro.core.unary_tree import UnaryDecisionTree


def _report(modules: dict) -> dict:
    return {
        "schema_version": 1,
        "kind": "ppa_report",
        "source": "unit-test",
        "modules": modules,
    }


def _simple_netlist(name: str = "demo_block") -> Netlist:
    netlist = Netlist(name)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    n1 = netlist.add_gate("AND2", [a, b])
    netlist.add_gate("INV", [n1], output="y")
    netlist.add_output("y")
    return netlist


class TestAnalyticBackend:
    def test_area_power_bit_identical(self, small_tree, technology):
        netlist = UnaryDecisionTree(small_tree).to_netlist("label_logic")
        assert AnalyticPPABackend().area_power(netlist, technology) == \
            estimate_netlist(netlist, technology)

    def test_timing_bit_identical(self, small_tree, technology):
        netlist = UnaryDecisionTree(small_tree).to_netlist("label_logic")
        assert AnalyticPPABackend().timing(netlist, technology) == \
            estimate_timing(netlist, technology)

    def test_digital_report_default_path_unchanged(self, small_tree, technology):
        unary = UnaryDecisionTree(small_tree)
        assert unary.digital_report(technology) == \
            unary.digital_report(technology, ppa_backend=AnalyticPPABackend())

    def test_identity_and_protocol(self):
        backend = AnalyticPPABackend()
        assert backend == AnalyticPPABackend()
        assert hash(backend) == hash(AnalyticPPABackend())
        assert backend.is_analytic
        assert isinstance(backend, PPABackend)


class TestResolve:
    def test_default_specs(self):
        assert resolve_ppa_backend(None) == AnalyticPPABackend()
        assert resolve_ppa_backend("analytic") == AnalyticPPABackend()

    def test_backend_instance_passthrough(self):
        backend = ReportPPABackend(_report({"*": {"area_mm2": 1, "power_uw": 2}}))
        assert resolve_ppa_backend(backend) is backend

    def test_mapping_and_path(self, tmp_path):
        payload = _report({"*": {"area_mm2": 1.0, "power_uw": 2.0}})
        from_mapping = resolve_ppa_backend(payload)
        assert isinstance(from_mapping, ReportPPABackend)
        path = tmp_path / "report.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        for spec in (str(path), path):
            backend = resolve_ppa_backend(spec)
            assert isinstance(backend, ReportPPABackend)
            assert backend.source == str(path)

    def test_unresolvable_spec_rejected(self):
        with pytest.raises(TypeError, match="cannot resolve"):
            resolve_ppa_backend(42)


class TestReportValidation:
    def test_wrong_kind(self):
        with pytest.raises(PPAReportError, match="kind"):
            ReportPPABackend({"schema_version": 1, "kind": "timing", "modules": {}})

    def test_wrong_schema_version(self):
        payload = _report({"m": {"area_mm2": 1, "power_uw": 2}})
        payload["schema_version"] = 99
        with pytest.raises(PPAReportError, match="schema_version"):
            ReportPPABackend(payload)

    def test_empty_modules(self):
        with pytest.raises(PPAReportError, match="non-empty"):
            ReportPPABackend(_report({}))

    def test_module_missing_numeric_field(self):
        with pytest.raises(PPAReportError, match="power_uw"):
            ReportPPABackend(_report({"m": {"area_mm2": 1.0}}))

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(PPAReportError, match="cannot read"):
            load_ppa_report(tmp_path / "missing.json")

    def test_invalid_missing_policy(self):
        payload = _report({"m": {"area_mm2": 1, "power_uw": 2}})
        with pytest.raises(ValueError, match="missing"):
            ReportPPABackend(payload, missing="ignore")


class TestReportBackend:
    def test_exact_name_lookup(self, technology):
        netlist = _simple_netlist()
        backend = ReportPPABackend(
            _report({"demo_block": {"area_mm2": 3.5, "power_uw": 150.0}})
        )
        report = backend.area_power(netlist, technology)
        assert report.area_mm2 == 3.5
        assert report.power_uw == 150.0
        # The gate census stays structural: counts come from the netlist.
        assert report.n_gates == netlist.n_gates
        assert report.cell_counts == netlist.cell_histogram()

    def test_sanitized_name_lookup(self, technology):
        netlist = _simple_netlist("demo block!")
        backend = ReportPPABackend(
            _report({"demo_block_": {"area_mm2": 1.0, "power_uw": 2.0}})
        )
        assert backend.area_power(netlist, technology).area_mm2 == 1.0

    def test_wildcard_lookup(self, technology):
        backend = ReportPPABackend(
            _report({"*": {"area_mm2": 9.0, "power_uw": 90.0}})
        )
        assert backend.area_power(_simple_netlist(), technology).power_uw == 90.0

    def test_missing_module_errors_by_default(self, technology):
        backend = ReportPPABackend(
            _report({"other": {"area_mm2": 1.0, "power_uw": 2.0}})
        )
        with pytest.raises(PPAReportError, match="no entry for module"):
            backend.area_power(_simple_netlist(), technology)

    def test_missing_module_analytic_fallback(self, technology):
        netlist = _simple_netlist()
        backend = ReportPPABackend(
            _report({"other": {"area_mm2": 1.0, "power_uw": 2.0}}),
            missing="analytic",
        )
        assert backend.area_power(netlist, technology) == \
            estimate_netlist(netlist, technology)
        assert backend.timing(netlist, technology) == \
            estimate_timing(netlist, technology)

    def test_timing_from_report(self, technology):
        netlist = _simple_netlist()
        backend = ReportPPABackend(_report({
            "demo_block": {
                "area_mm2": 1.0,
                "power_uw": 2.0,
                "critical_path_delay_ms": 42.5,
                "logic_depth": 7,
            }
        }))
        timing = backend.timing(netlist, technology)
        assert timing.critical_path_delay_ms == 42.5
        assert timing.logic_depth == 7
        assert timing.critical_path == ()
        assert timing.sampling_period_ms == 1000.0 / technology.frequency_hz

    def test_timing_falls_back_without_delay_field(self, technology):
        netlist = _simple_netlist()
        backend = ReportPPABackend(
            _report({"demo_block": {"area_mm2": 1.0, "power_uw": 2.0}})
        )
        assert backend.timing(netlist, technology) == \
            estimate_timing(netlist, technology)

    def test_not_analytic(self):
        backend = ReportPPABackend(_report({"*": {"area_mm2": 1, "power_uw": 2}}))
        assert not backend.is_analytic


class TestExplorerIntegration:
    def _explore(self, small_split, ppa_backend):
        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            depths=(2, 3), taus=(0.01,), seed=3, ppa_backend=ppa_backend
        )
        return explorer.explore(
            X_train, y_train, X_test, y_test, n_classes=3, dataset_name="small"
        )

    def test_design_point_costs_bit_identical_to_seed(self, small_split):
        default = self._explore(small_split, None)
        explicit = self._explore(small_split, AnalyticPPABackend())
        for a, b in zip(default, explicit):
            assert a.hardware == b.hardware
            assert a.accuracy == b.accuracy
            assert (a.total_area_mm2, a.total_power_uw) == \
                (b.total_area_mm2, b.total_power_uw)

    def test_report_costs_flow_into_selection(self, small_split):
        report = _report({"*": {"area_mm2": 123.0, "power_uw": 456.0}})
        points = self._explore(small_split, report)
        for point in points:
            assert point.hardware.digital_area_mm2 == 123.0
            assert point.hardware.digital_power_uw == 456.0
        best = select_best_design(
            points,
            reference_accuracy=max(point.accuracy for point in points),
            max_accuracy_loss=1.0,
            objective="power",
        )
        assert best is not None
        assert best.hardware.digital_power_uw == 456.0


class TestCachePurityGuards:
    def test_suite_refuses_cache_only_with_report(self):
        from repro.analysis.experiments import run_benchmark_suite

        report = _report({"*": {"area_mm2": 1.0, "power_uw": 2.0}})
        with pytest.raises(ValueError, match="cache_only requires the analytic"):
            run_benchmark_suite(
                datasets=("seeds",), cache_only=True, ppa_backend=report
            )

    def test_study_refuses_cache_only_with_report(self):
        from repro.search.study import Study

        report = _report({"*": {"area_mm2": 1.0, "power_uw": 2.0}})
        with pytest.raises(ValueError, match="cache_only requires the analytic"):
            Study("seeds", cache_only=True, ppa_backend=report)

    def test_study_with_report_backend_bypasses_store(self):
        from repro.search.study import Study

        report = _report({"*": {"area_mm2": 1.0, "power_uw": 2.0}})
        study = Study("seeds", ppa_backend=report)
        assert study.store is None
        assert not study.use_cache
