"""Unit tests for the sum-of-products representation and minimizer."""

import itertools


from repro.circuits.two_level import Literal, SumOfProducts


def _a(positive=True):
    return Literal("a", positive)


def _b(positive=True):
    return Literal("b", positive)


def _c(positive=True):
    return Literal("c", positive)


def _truth_table(sop: SumOfProducts, variables):
    return [
        sop.evaluate(dict(zip(variables, bits)))
        for bits in itertools.product((False, True), repeat=len(variables))
    ]


class TestLiteral:
    def test_negate(self):
        literal = _a()
        assert literal.negate() == Literal("a", False)
        assert literal.negate().negate() == literal

    def test_evaluate(self):
        assert _a().evaluate({"a": True}) is True
        assert _a(False).evaluate({"a": True}) is False

    def test_str(self):
        assert str(_a()) == "a"
        assert str(_a(False)) == "!a"


class TestSumOfProductsBasics:
    def test_constants(self):
        assert SumOfProducts.false().is_false()
        assert SumOfProducts.true().is_true()
        assert SumOfProducts.false().evaluate({}) is False
        assert SumOfProducts.true().evaluate({}) is True

    def test_contradictory_term_dropped(self):
        sop = SumOfProducts([[_a(), _a(False)]])
        assert sop.is_false()

    def test_add_term_and_counts(self):
        sop = SumOfProducts()
        sop.add_term([_a(), _b()])
        sop.add_term([_a(False), _c()])
        assert sop.n_terms == 2
        assert sop.n_literals == 4
        assert sop.variables() == {"a", "b", "c"}

    def test_duplicate_terms_collapse(self):
        sop = SumOfProducts([[_a(), _b()], [_b(), _a()]])
        assert sop.n_terms == 1

    def test_evaluate_and_or_semantics(self):
        sop = SumOfProducts([[_a(), _b()], [_c()]])
        assert sop.evaluate({"a": True, "b": True, "c": False}) is True
        assert sop.evaluate({"a": True, "b": False, "c": False}) is False
        assert sop.evaluate({"a": False, "b": False, "c": True}) is True

    def test_string_rendering(self):
        assert str(SumOfProducts.false()) == "0"
        assert str(SumOfProducts.true()) == "1"
        rendered = str(SumOfProducts([[_a(), _b(False)]]))
        assert "a" in rendered and "!b" in rendered

    def test_equality_and_hash(self):
        first = SumOfProducts([[_a(), _b()]])
        second = SumOfProducts([[_b(), _a()]])
        assert first == second
        assert hash(first) == hash(second)


class TestMinimization:
    def test_absorption_removes_superset_terms(self):
        # a | (a & b)  ==  a
        sop = SumOfProducts([[_a()], [_a(), _b()]])
        minimized = sop.minimized()
        assert minimized.n_terms == 1
        assert minimized.terms[0] == frozenset({_a()})

    def test_complementary_terms_merge(self):
        # (a & b) | (a & !b)  ==  a
        sop = SumOfProducts([[_a(), _b()], [_a(), _b(False)]])
        minimized = sop.minimized()
        assert minimized.n_terms == 1
        assert minimized.terms[0] == frozenset({_a()})

    def test_full_cover_minimizes_to_true(self):
        # b | !b  ==  1
        sop = SumOfProducts([[_b()], [_b(False)]])
        assert sop.minimized().is_true()

    def test_minimization_preserves_function(self):
        variables = ["a", "b", "c"]
        sop = SumOfProducts(
            [
                [_a(), _b(), _c()],
                [_a(), _b(), _c(False)],
                [_a(False), _c()],
                [_b(), _c()],
            ]
        )
        minimized = sop.minimized()
        assert _truth_table(sop, variables) == _truth_table(minimized, variables)
        assert minimized.n_literals <= sop.n_literals

    def test_minimize_constant_functions(self):
        assert SumOfProducts.false().minimized().is_false()
        assert SumOfProducts.true().minimized().is_true()

    def test_minimization_never_increases_cost(self):
        sop = SumOfProducts(
            [
                [_a(), _b(False)],
                [_a(), _c()],
                [_a(), _b(False), _c()],
                [_b(), _c(False)],
            ]
        )
        minimized = sop.minimized()
        assert minimized.n_terms <= sop.n_terms
        assert minimized.n_literals <= sop.n_literals
