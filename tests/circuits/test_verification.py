"""Unit tests for netlist-vs-reference equivalence checking."""


import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.verification import _vector_matrix, check_equivalence


def _xor_netlist() -> Netlist:
    netlist = Netlist("xor")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate("XOR2", [a, b], output="y")
    netlist.add_output("y")
    return netlist


class TestCheckEquivalence:
    def test_correct_circuit_passes_exhaustively(self):
        result = check_equivalence(
            _xor_netlist(), lambda inp: {"y": inp["a"] != inp["b"]}
        )
        assert result.equivalent
        assert bool(result) is True
        assert result.n_vectors == 4
        assert result.mismatches == []

    def test_wrong_reference_detected(self):
        result = check_equivalence(
            _xor_netlist(), lambda inp: {"y": inp["a"] and inp["b"]}
        )
        assert not result.equivalent
        assert bool(result) is False
        assert len(result.mismatches) >= 1

    def test_random_sampling_above_exhaustive_limit(self):
        netlist = Netlist("wide")
        nets = [netlist.add_input(f"i{k}") for k in range(20)]
        netlist.add_gate("OR4", nets[:4], output="y")
        netlist.add_output("y")
        result = check_equivalence(
            netlist,
            lambda inp: {"y": any(inp[f"i{k}"] for k in range(4))},
            exhaustive_limit=8,
            n_random_vectors=200,
            seed=3,
        )
        assert result.equivalent
        assert result.n_vectors == 200

    def test_sampling_is_deterministic_per_seed(self):
        netlist = Netlist("wide")
        nets = [netlist.add_input(f"i{k}") for k in range(16)]
        netlist.add_gate("AND4", nets[:4], output="y")
        netlist.add_output("y")
        def reference(inp):
            return {"y": all(inp[f"i{k}"] for k in range(4))}
        first = check_equivalence(netlist, reference, exhaustive_limit=4,
                                  n_random_vectors=50, seed=11)
        second = check_equivalence(netlist, reference, exhaustive_limit=4,
                                   n_random_vectors=50, seed=11)
        assert first.equivalent == second.equivalent
        assert first.n_vectors == second.n_vectors

    def test_mismatch_recording_is_capped(self):
        netlist = Netlist("alwayswrong")
        netlist.add_input("a")
        netlist.add_constant(True, output="y")
        netlist.add_output("y")
        result = check_equivalence(
            netlist, lambda inp: {"y": False}, max_recorded_mismatches=1
        )
        assert not result.equivalent
        assert len(result.mismatches) == 1


class TestVectorSampling:
    def test_exhaustive_order_counts_up_msb_first(self):
        matrix = _vector_matrix(["a", "b"], exhaustive_limit=4, n_random_vectors=10, seed=0)
        assert matrix.tolist() == [
            [False, False], [False, True], [True, False], [True, True],
        ]

    def test_random_vectors_are_unique(self):
        matrix = _vector_matrix(
            [f"i{k}" for k in range(14)], exhaustive_limit=8,
            n_random_vectors=500, seed=2,
        )
        assert matrix.shape == (500, 14)
        assert len({row.tobytes() for row in matrix}) == 500

    def test_random_sampling_is_deterministic_per_seed(self):
        names = [f"i{k}" for k in range(16)]
        first = _vector_matrix(names, 8, 100, seed=5)
        second = _vector_matrix(names, 8, 100, seed=5)
        np.testing.assert_array_equal(first, second)
        third = _vector_matrix(names, 8, 100, seed=6)
        assert not np.array_equal(first, third)

    def test_request_larger_than_space_caps_at_unique_vectors(self):
        # 2**4 = 16 < 100 requested: every distinct vector appears exactly once.
        matrix = _vector_matrix(
            [f"i{k}" for k in range(4)], exhaustive_limit=2,
            n_random_vectors=100, seed=1,
        )
        assert matrix.shape == (16, 4)
        assert len({row.tobytes() for row in matrix}) == 16

    def test_very_wide_inputs_sample_unique_rows(self):
        matrix = _vector_matrix(
            [f"i{k}" for k in range(70)], exhaustive_limit=12,
            n_random_vectors=64, seed=9,
        )
        assert matrix.shape == (64, 70)
        assert len({row.tobytes() for row in matrix}) == 64
