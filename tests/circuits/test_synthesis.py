"""Unit tests for the synthesis primitives."""

import itertools

import pytest

from repro.circuits.logic_sim import evaluate_outputs
from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import (
    synthesize_and_tree,
    synthesize_constant_comparator,
    synthesize_or_tree,
    synthesize_sop,
)
from repro.circuits.two_level import Literal, SumOfProducts


def _comparator_netlist(n_bits: int, constant: int, operation: str) -> Netlist:
    netlist = Netlist("cmp")
    bits = [netlist.add_input(f"b{k}") for k in range(n_bits - 1, -1, -1)]  # MSB first
    out = synthesize_constant_comparator(netlist, bits, constant, operation)
    netlist.add_gate("BUF", [out], output="y")
    netlist.add_output("y")
    netlist.validate()
    return netlist


def _evaluate_comparator(netlist: Netlist, n_bits: int, value: int) -> bool:
    assignment = {
        f"b{k}": bool((value >> k) & 1) for k in range(n_bits)
    }
    return evaluate_outputs(netlist, assignment)["y"]


class TestConstantComparator:
    @pytest.mark.parametrize("operation", [">=", ">", "<", "<="])
    @pytest.mark.parametrize("constant", [0, 1, 5, 7, 8, 11, 15])
    def test_matches_python_semantics_for_all_inputs(self, operation, constant):
        n_bits = 4
        netlist = _comparator_netlist(n_bits, constant, operation)
        compare = {
            ">=": lambda x: x >= constant,
            ">": lambda x: x > constant,
            "<": lambda x: x < constant,
            "<=": lambda x: x <= constant,
        }[operation]
        for value in range(2 ** n_bits):
            assert _evaluate_comparator(netlist, n_bits, value) == compare(value), (
                f"value={value}, constant={constant}, op={operation}"
            )

    def test_three_bit_comparator(self):
        netlist = _comparator_netlist(3, 5, ">=")
        for value in range(8):
            assert _evaluate_comparator(netlist, 3, value) == (value >= 5)

    def test_gate_count_small_for_hardwired_constant(self):
        """Bespoke comparators must collapse to a handful of gates."""
        netlist = Netlist("count")
        bits = [netlist.add_input(f"b{k}") for k in range(3, -1, -1)]
        synthesize_constant_comparator(netlist, bits, 11, ">=")
        assert netlist.n_gates <= 4

    def test_constant_out_of_range_rejected(self):
        netlist = Netlist("bad")
        bits = [netlist.add_input(f"b{k}") for k in range(3, -1, -1)]
        with pytest.raises(ValueError):
            synthesize_constant_comparator(netlist, bits, 16, ">=")

    def test_empty_bit_list_rejected(self):
        with pytest.raises(ValueError):
            synthesize_constant_comparator(Netlist("bad"), [], 0, ">=")

    def test_unknown_operation_rejected(self):
        netlist = Netlist("bad")
        bits = [netlist.add_input("b0")]
        with pytest.raises(ValueError):
            synthesize_constant_comparator(netlist, bits, 0, "==")


class TestAndOrTrees:
    def test_empty_reductions_are_constants(self):
        netlist = Netlist("empty")
        and_net = synthesize_and_tree(netlist, [])
        or_net = synthesize_or_tree(netlist, [])
        netlist.add_output(and_net)
        netlist.add_output(or_net)
        out = evaluate_outputs(netlist, {})
        assert out[and_net] is True
        assert out[or_net] is False

    def test_single_net_passthrough(self):
        netlist = Netlist("single")
        a = netlist.add_input("a")
        assert synthesize_and_tree(netlist, [a]) == a
        assert synthesize_or_tree(netlist, [a]) == a
        assert netlist.n_gates == 0

    @pytest.mark.parametrize("width", [2, 3, 4, 5, 7, 9, 13])
    def test_wide_and_tree(self, width):
        netlist = Netlist("wide_and")
        nets = [netlist.add_input(f"i{k}") for k in range(width)]
        out = synthesize_and_tree(netlist, nets)
        netlist.add_output(out)
        all_true = {f"i{k}": True for k in range(width)}
        assert evaluate_outputs(netlist, all_true)[out] is True
        one_false = dict(all_true, i0=False)
        assert evaluate_outputs(netlist, one_false)[out] is False

    @pytest.mark.parametrize("width", [2, 3, 4, 5, 8, 11])
    def test_wide_or_tree(self, width):
        netlist = Netlist("wide_or")
        nets = [netlist.add_input(f"i{k}") for k in range(width)]
        out = synthesize_or_tree(netlist, nets)
        netlist.add_output(out)
        all_false = {f"i{k}": False for k in range(width)}
        assert evaluate_outputs(netlist, all_false)[out] is False
        one_true = dict(all_false, **{f"i{width - 1}": True})
        assert evaluate_outputs(netlist, one_true)[out] is True


class TestSynthesizeSop:
    def test_constant_functions(self):
        netlist = Netlist("const")
        false_net = synthesize_sop(netlist, SumOfProducts.false(), {})
        true_net = synthesize_sop(netlist, SumOfProducts.true(), {})
        netlist.add_output(false_net)
        netlist.add_output(true_net)
        out = evaluate_outputs(netlist, {})
        assert out[false_net] is False
        assert out[true_net] is True

    def test_matches_reference_evaluation(self):
        variables = ["x", "y", "z"]
        sop = SumOfProducts(
            [
                [Literal("x"), Literal("y", False)],
                [Literal("z")],
                [Literal("x", False), Literal("y"), Literal("z", False)],
            ]
        )
        netlist = Netlist("sop")
        nets = {name: netlist.add_input(name) for name in variables}
        out = synthesize_sop(netlist, sop, nets)
        netlist.add_output(out)
        netlist.validate()
        for bits in itertools.product((False, True), repeat=3):
            assignment = dict(zip(variables, bits))
            assert evaluate_outputs(netlist, assignment)[out] == sop.evaluate(assignment)

    def test_inverters_shared_across_outputs(self):
        sop_one = SumOfProducts([[Literal("x", False)]])
        sop_two = SumOfProducts([[Literal("x", False), Literal("y")]])
        netlist = Netlist("shared")
        nets = {"x": netlist.add_input("x"), "y": netlist.add_input("y")}
        inverted: dict[str, str] = {}
        synthesize_sop(netlist, sop_one, nets, inverted)
        synthesize_sop(netlist, sop_two, nets, inverted)
        assert netlist.cell_histogram()["INV"] == 1
