"""Unit tests for the netlist data structure."""

import pytest

from repro.circuits.netlist import Netlist, NetlistError


class TestNetlistConstruction:
    def test_basic_and_gate(self):
        netlist = Netlist("basic")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        out = netlist.add_gate("AND2", [a, b], output="y")
        netlist.add_output(out)
        assert netlist.inputs == ["a", "b"]
        assert netlist.outputs == ["y"]
        assert netlist.n_gates == 1
        netlist.validate()

    def test_new_net_names_are_unique(self):
        netlist = Netlist("nets")
        names = {netlist.new_net() for _ in range(50)}
        assert len(names) == 50

    def test_auto_generated_output_net(self):
        netlist = Netlist("auto")
        a = netlist.add_input("a")
        out = netlist.add_gate("INV", [a])
        assert out.startswith("n")
        assert netlist.driver_of(out).cell == "INV"

    def test_double_driver_rejected(self):
        netlist = Netlist("double")
        a = netlist.add_input("a")
        netlist.add_gate("INV", [a], output="y")
        with pytest.raises(NetlistError):
            netlist.add_gate("BUF", [a], output="y")

    def test_driving_a_primary_input_rejected(self):
        netlist = Netlist("drive_input")
        a = netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate("INV", [a], output="a")

    def test_declaring_driven_net_as_input_rejected(self):
        netlist = Netlist("input_conflict")
        a = netlist.add_input("a")
        netlist.add_gate("INV", [a], output="y")
        with pytest.raises(NetlistError):
            netlist.add_input("y")

    def test_duplicate_gate_name_rejected(self):
        netlist = Netlist("dupname")
        a = netlist.add_input("a")
        netlist.add_gate("INV", [a], name="u1")
        with pytest.raises(NetlistError):
            netlist.add_gate("BUF", [a], name="u1")

    def test_constants(self):
        netlist = Netlist("constants")
        one = netlist.add_constant(True)
        zero = netlist.add_constant(False)
        assert netlist.driver_of(one).cell == "CONST1"
        assert netlist.driver_of(zero).cell == "CONST0"


class TestNetlistIntrospection:
    def test_cell_histogram(self):
        netlist = Netlist("hist")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_gate("AND2", [a, b])
        netlist.add_gate("AND2", [a, b])
        netlist.add_gate("INV", [a])
        histogram = netlist.cell_histogram()
        assert histogram["AND2"] == 2
        assert histogram["INV"] == 1

    def test_nets_collects_all_names(self):
        netlist = Netlist("nets")
        a = netlist.add_input("a")
        out = netlist.add_gate("INV", [a], output="y")
        assert netlist.nets() == {"a", "y"}
        assert out == "y"


class TestValidationAndOrdering:
    def test_undriven_gate_input_detected(self):
        netlist = Netlist("undriven")
        netlist.add_gate("INV", ["ghost"], output="y")
        with pytest.raises(NetlistError, match="no driver"):
            netlist.validate()

    def test_undriven_output_detected(self):
        netlist = Netlist("undriven_out")
        netlist.add_output("nowhere")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_topological_order_respects_dependencies(self):
        netlist = Netlist("topo")
        a = netlist.add_input("a")
        n1 = netlist.add_gate("INV", [a])
        n2 = netlist.add_gate("INV", [n1])
        netlist.add_gate("AND2", [n1, n2], output="y")
        order = [gate.output for gate in netlist.topological_order()]
        assert order.index(n1) < order.index(n2) < order.index("y")

    def test_cycle_detected(self):
        netlist = Netlist("cycle")
        netlist.add_gate("INV", ["b"], output="a")
        netlist.add_gate("INV", ["a"], output="b")
        with pytest.raises(NetlistError, match="cycle"):
            netlist.topological_order()
