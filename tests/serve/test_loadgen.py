"""Tests for the open/closed-loop load generators and their reports."""

import asyncio

import numpy as np
import pytest

from repro.serve.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serve.scorer import AsyncScorer

N_FEATURES = 5  # matches the small_tree conftest fixture


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def rows():
    rng = np.random.default_rng(29)
    return rng.random((128, N_FEATURES))


class TestOpenLoop:
    def test_request_count_bound(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                return await run_open_loop(
                    scorer, rows, rate_hz=5000.0, n_requests=50
                )

        report = run(scenario())
        assert report.n_requests == 50
        assert report.n_errors == 0
        assert report.offered_rate_hz == 5000.0
        assert report.throughput_hz > 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms

    def test_duration_bound(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                return await run_open_loop(
                    scorer, rows, rate_hz=1000.0, duration_s=0.05
                )

        report = run(scenario())
        # duration * rate requests are scheduled up front (open loop).
        assert report.n_requests == 50

    def test_latency_charged_from_scheduled_arrival(self, small_tree, rows):
        """Coordinated-omission safety: a scorer that stalls accumulates
        latency for every scheduled-but-unserved request, so the late
        requests' percentiles dominate rather than vanish."""

        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                # Far beyond sustainable single-flush pacing: most requests
                # queue behind earlier flushes and are charged the wait.
                return await run_open_loop(
                    scorer, rows, rate_hz=200_000.0, n_requests=400
                )

        report = run(scenario())
        assert report.n_requests == 400
        # With 400 requests scheduled inside 2ms, the last request's
        # latency must include its queueing delay, so max >= p50.
        assert report.max_ms >= report.p50_ms

    def test_validation_errors(self, small_tree, rows):
        async def with_scorer(coro_fn):
            async with AsyncScorer(small_tree) as scorer:
                await coro_fn(scorer)

        with pytest.raises(ValueError, match="exactly one"):
            run(with_scorer(lambda s: run_open_loop(s, rows, 100.0)))
        with pytest.raises(ValueError, match="exactly one"):
            run(
                with_scorer(
                    lambda s: run_open_loop(
                        s, rows, 100.0, duration_s=1.0, n_requests=5
                    )
                )
            )
        with pytest.raises(ValueError, match="rate_hz"):
            run(with_scorer(lambda s: run_open_loop(s, rows, 0.0, n_requests=5)))
        with pytest.raises(ValueError, match="non-empty"):
            run(
                with_scorer(
                    lambda s: run_open_loop(
                        s, np.empty((0, N_FEATURES)), 100.0, n_requests=5
                    )
                )
            )


class TestClosedLoop:
    def test_every_client_completes_its_quota(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                return await run_closed_loop(
                    scorer, rows, n_clients=16, requests_per_client=5
                )

        report = run(scenario())
        assert report.n_requests == 16 * 5
        assert report.n_errors == 0
        assert report.offered_rate_hz is None  # clients set the pace
        assert report.batcher.n_requests == 16 * 5

    def test_validation_errors(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                with pytest.raises(ValueError, match=">= 1"):
                    await run_closed_loop(
                        scorer, rows, n_clients=0, requests_per_client=5
                    )
                with pytest.raises(ValueError, match="non-empty"):
                    await run_closed_loop(
                        scorer,
                        np.empty((0, N_FEATURES)),
                        n_clients=2,
                        requests_per_client=2,
                    )

        run(scenario())


class TestLoadReport:
    def _report(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                return await run_open_loop(
                    scorer, rows, rate_hz=5000.0, n_requests=30
                )

        return run(scenario())

    def test_to_dict_is_json_ready(self, small_tree, rows):
        payload = self._report(small_tree, rows).to_dict()
        assert payload["n_requests"] == 30
        assert set(payload["batching"]) == {
            "n_flushes",
            "n_full_flushes",
            "n_timeout_flushes",
            "n_drain_flushes",
            "max_batch",
            "mean_batch",
        }
        import json

        json.dumps(payload)  # must serialize without custom encoders

    def test_summary_is_one_line(self, small_tree, rows):
        summary = self._report(small_tree, rows).summary()
        assert "\n" not in summary
        assert "p99" in summary
        assert "requests" in summary

    def test_empty_run_is_an_error(self, small_tree):
        from repro.serve.batching import BatcherStats
        from repro.serve.loadgen import _report

        with pytest.raises(ValueError, match="zero requests"):
            _report([], 0, 1.0, None, BatcherStats())

    def test_report_is_frozen(self, small_tree, rows):
        report = self._report(small_tree, rows)
        with pytest.raises(AttributeError):
            report.n_requests = 0
        assert isinstance(report, LoadReport)
