"""Unit tests for the micro-batcher's accumulate/flush/shutdown mechanics."""

import asyncio

import pytest

from repro.serve.batching import (
    BatchingConfig,
    MicroBatcher,
    ScorerClosedError,
)


def run(coro):
    return asyncio.run(coro)


class TestBatchingConfig:
    def test_rejects_invalid_knobs(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingConfig(max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_us"):
            BatchingConfig(max_wait_us=-1.0)
        with pytest.raises(ValueError, match="max_queue_size"):
            BatchingConfig(max_queue_size=-1)

    def test_defaults(self):
        config = BatchingConfig()
        assert config.max_batch_size == 256
        assert config.max_wait_us > 0


class TestFlushTriggers:
    def test_idle_batcher_never_flushes_empty(self):
        """No requests => zero flushes; flush_fn is never called at all."""
        calls = []

        async def scenario():
            batcher = MicroBatcher(
                lambda items: calls.append(list(items)) or items,
                BatchingConfig(max_wait_us=100.0),
            )
            # Force the worker to exist, then idle well past the window.
            first = await batcher.submit("warm")
            assert first == "warm"
            await asyncio.sleep(0.02)  # 200x the wait window, zero traffic
            await batcher.close()
            return batcher.stats

        stats = run(scenario())
        assert stats.n_flushes == 1  # only the warm-up request flushed
        assert calls == [["warm"]]
        assert [] not in calls

    def test_single_in_flight_request_flushes_alone_on_timeout(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda items: [item * 10 for item in items],
                BatchingConfig(max_batch_size=64, max_wait_us=200.0),
            )
            result = await batcher.submit(7)
            await batcher.close()
            return result, batcher.stats

        result, stats = run(scenario())
        assert result == 70
        assert stats.n_requests == 1
        assert stats.n_timeout_flushes == 1
        assert stats.max_batch == 1

    def test_full_batch_flushes_without_waiting(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda items: [item + 1 for item in items],
                # A wait window so long a timeout flush would hang the test:
                # only the size trigger can flush the first batch.
                BatchingConfig(max_batch_size=4, max_wait_us=30_000_000.0),
            )
            results = await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            stats_snapshot = batcher.stats.n_full_flushes
            await batcher.close()
            return results, stats_snapshot

        results, n_full = run(scenario())
        assert results == [1, 2, 3, 4]
        assert n_full == 1

    def test_backlog_is_drained_greedily_into_batches(self):
        """Queued items join a batch at zero cost (adaptive batching)."""

        async def scenario():
            batcher = MicroBatcher(
                lambda items: list(items),
                BatchingConfig(max_batch_size=32, max_wait_us=0.0),
            )
            results = await asyncio.gather(*(batcher.submit(i) for i in range(64)))
            await batcher.close()
            return results, batcher.stats

        results, stats = run(scenario())
        assert results == list(range(64))
        # With a zero wait window, multi-item batches can only have formed
        # from the backlog drain.
        assert stats.max_batch > 1


class TestMidFlushArrival:
    def test_request_arriving_mid_flush_lands_in_next_batch(self):
        flushed_batches = []

        async def scenario():
            gate = asyncio.Event()

            async def gated_flush(items):
                flushed_batches.append(list(items))
                if len(flushed_batches) == 1:
                    await gate.wait()  # hold the first flush open
                return [item * 2 for item in items]

            batcher = MicroBatcher(
                gated_flush, BatchingConfig(max_batch_size=8, max_wait_us=50.0)
            )
            first = asyncio.ensure_future(batcher.submit(1))
            while not flushed_batches:  # first flush is now in progress
                await asyncio.sleep(0.001)
            second = asyncio.ensure_future(batcher.submit(2))
            await asyncio.sleep(0.005)  # second arrives mid-flush
            gate.set()
            results = await asyncio.gather(first, second)
            await batcher.close()
            return results

        results = run(scenario())
        assert results == [2, 4]
        assert flushed_batches == [[1], [2]]


class TestBackpressure:
    def test_queue_full_suspends_submit_until_drained(self):
        async def scenario():
            gate = asyncio.Event()

            async def gated_flush(items):
                await gate.wait()
                return list(items)

            batcher = MicroBatcher(
                gated_flush,
                BatchingConfig(max_batch_size=1, max_wait_us=0.0, max_queue_size=1),
            )
            # First submission is dequeued by the worker and its flush
            # blocks on the gate; the second fills the queue; the third
            # must suspend inside queue.put (backpressure).
            first = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0.005)
            second = asyncio.ensure_future(batcher.submit("b"))
            await asyncio.sleep(0.005)
            third = asyncio.ensure_future(batcher.submit("c"))
            await asyncio.sleep(0.01)
            # Backpressured: c is not even *enqueued* yet (n_requests counts
            # accepted submissions post-put).
            backpressured = not third.done() and batcher.stats.n_requests == 2
            gate.set()
            results = await asyncio.gather(first, second, third)
            await batcher.close()
            return backpressured, results, batcher.stats.n_requests

        backpressured, results, n_requests = run(scenario())
        assert backpressured
        assert results == ["a", "b", "c"]
        assert n_requests == 3


class TestShutdown:
    def test_close_drains_pending_futures_with_real_results(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda items: [item + 100 for item in items],
                # Tiny batches + a huge window: without the drain path the
                # enqueued burst would sit for 30 s.
                BatchingConfig(max_batch_size=2, max_wait_us=30_000_000.0),
            )
            pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(9)]
            await asyncio.sleep(0)  # let the submissions enqueue
            await batcher.close()
            return await asyncio.gather(*pending), batcher.stats

        results, stats = run(scenario())
        assert results == [i + 100 for i in range(9)]
        assert stats.n_requests == 9
        assert stats.n_drain_flushes >= 1

    def test_submit_after_close_raises(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: list(items))
            await batcher.submit(1)
            await batcher.close()
            assert batcher.closed
            with pytest.raises(ScorerClosedError):
                await batcher.submit(2)

        run(scenario())

    def test_close_is_idempotent(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: list(items))
            await batcher.submit(1)
            await batcher.close()
            await batcher.close()

        run(scenario())

    def test_close_without_any_submission(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: list(items))
            await batcher.close()
            assert batcher.closed

        run(scenario())


class TestFlushErrors:
    def test_flush_exception_propagates_to_every_request(self):
        async def scenario():
            def explode(items):
                raise RuntimeError("kernel on fire")

            batcher = MicroBatcher(
                explode, BatchingConfig(max_batch_size=4, max_wait_us=0.0)
            )
            pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
            results = await asyncio.gather(*pending, return_exceptions=True)
            await batcher.close()
            return results

        results = run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda items: [1],  # wrong length for multi-item batches
                BatchingConfig(max_batch_size=4, max_wait_us=0.0),
            )
            pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
            results = await asyncio.gather(*pending, return_exceptions=True)
            await batcher.close()
            return results

        results = run(scenario())
        assert any(isinstance(r, RuntimeError) for r in results)

    def test_batcher_survives_a_failing_flush(self):
        """One poisoned batch must not kill the worker for later requests."""

        async def scenario():
            calls = {"n": 0}

            def flaky(items):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ValueError("first batch is poisoned")
                return [item * 3 for item in items]

            batcher = MicroBatcher(
                flaky, BatchingConfig(max_batch_size=8, max_wait_us=50.0)
            )
            with pytest.raises(ValueError):
                await batcher.submit(1)
            recovered = await batcher.submit(2)
            await batcher.close()
            return recovered

        assert run(scenario()) == 6
