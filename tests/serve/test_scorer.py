"""Bit-identity and lifecycle tests for :class:`repro.serve.scorer.AsyncScorer`.

The serving contract: no matter how single-sample requests interleave,
batch, or backpressure, every label equals what a scalar
``tree.predict_levels`` call on that sample alone would return.
"""

import asyncio

import numpy as np
import pytest

from repro.mltrees.quantize import quantize_dataset
from repro.serve.batching import BatchingConfig, ScorerClosedError
from repro.serve.scorer import AsyncScorer

N_FEATURES = 5  # matches the small_tree conftest fixture


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def rows():
    rng = np.random.default_rng(11)
    return rng.random((400, N_FEATURES))


def expected_labels(tree, rows):
    return tree.predict_levels(quantize_dataset(rows, tree.resolution_bits))


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["batch", "bitparallel"])
    def test_concurrent_burst_matches_scalar_predict_levels(
        self, small_tree, rows, engine
    ):
        expected = expected_labels(small_tree, rows)

        async def scenario():
            async with AsyncScorer(small_tree, engine=engine) as scorer:
                return await asyncio.gather(*(scorer.score(r) for r in rows))

        assert run(scenario()) == list(expected)

    @pytest.mark.parametrize("engine", ["batch", "bitparallel"])
    def test_ragged_interleaved_bursts_match(self, small_tree, rows, engine):
        """Bursts of wildly different sizes, tiny batches => many flush
        boundaries cutting through the request stream; labels must not care."""
        rng = np.random.default_rng(23)
        expected = expected_labels(small_tree, rows)

        async def scenario():
            got = {}
            config = BatchingConfig(max_batch_size=16, max_wait_us=50.0)
            async with AsyncScorer(small_tree, engine=engine, config=config) as scorer:

                async def burst(indices):
                    labels = await asyncio.gather(
                        *(scorer.score(rows[i]) for i in indices)
                    )
                    got.update(zip(indices, labels))

                cursor, bursts = 0, []
                while cursor < len(rows):
                    size = int(rng.integers(1, 49))
                    bursts.append(range(cursor, min(cursor + size, len(rows))))
                    cursor += size
                await asyncio.gather(*(burst(b) for b in bursts))
            return [got[i] for i in range(len(rows))]

        assert run(scenario()) == list(expected)

    def test_engines_agree_with_each_other(self, small_tree, rows):
        async def labels(engine):
            async with AsyncScorer(small_tree, engine=engine) as scorer:
                return await asyncio.gather(*(scorer.score(r) for r in rows[:64]))

        assert run(labels("batch")) == run(labels("bitparallel"))

    def test_score_one_matches_score(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                for row in rows[:32]:
                    assert await scorer.score(row) == scorer.score_one(row)

        run(scenario())

    def test_single_in_flight_request(self, small_tree, rows):
        """One lone request flushes alone on timeout, still bit-identical."""
        expected = expected_labels(small_tree, rows[:1])

        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                label = await scorer.score(rows[0])
                return label, scorer.stats

        label, stats = run(scenario())
        assert label == expected[0]
        assert stats.n_requests == 1
        assert stats.max_batch == 1

    def test_backpressured_overload_is_still_bit_identical(self, small_tree, rows):
        """A queue far smaller than the burst forces submit-side suspension;
        every request still completes with the scalar-reference label."""
        expected = expected_labels(small_tree, rows)

        async def scenario():
            config = BatchingConfig(
                max_batch_size=8, max_wait_us=0.0, max_queue_size=4
            )
            async with AsyncScorer(small_tree, config=config) as scorer:
                labels = await asyncio.gather(*(scorer.score(r) for r in rows))
            return labels

        assert run(scenario()) == list(expected)


class TestLifecycle:
    def test_close_drains_pending_then_rejects(self, small_tree, rows):
        expected = expected_labels(small_tree, rows[:40])

        async def scenario():
            scorer = AsyncScorer(
                small_tree,
                config=BatchingConfig(max_batch_size=4, max_wait_us=30_000_000.0),
            )
            pending = [
                asyncio.ensure_future(scorer.score(rows[i])) for i in range(40)
            ]
            await asyncio.sleep(0)
            await scorer.close()
            labels = await asyncio.gather(*pending)
            assert scorer.closed
            with pytest.raises(ScorerClosedError):
                await scorer.score(rows[0])
            return labels

        assert run(scenario()) == list(expected)

    def test_context_manager_closes(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                await scorer.score(rows[0])
            return scorer.closed

        assert run(scenario())

    def test_stats_account_every_request(self, small_tree, rows):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                await asyncio.gather(*(scorer.score(r) for r in rows[:100]))
                return scorer.stats

        stats = run(scenario())
        assert stats.n_requests == 100
        assert stats.n_flushes >= 1
        assert stats.mean_batch >= 1.0


class TestValidation:
    def test_rejects_wrong_shape(self, small_tree):
        async def scenario():
            async with AsyncScorer(small_tree) as scorer:
                with pytest.raises(ValueError, match="sample"):
                    await scorer.score(np.zeros(N_FEATURES + 1))
                with pytest.raises(ValueError, match="sample"):
                    await scorer.score(np.zeros((2, N_FEATURES)))

        run(scenario())

    def test_rejects_unknown_engine(self, small_tree):
        with pytest.raises(ValueError, match="engine"):
            AsyncScorer(small_tree, engine="quantum")

    def test_score_one_validates_shape(self, small_tree):
        scorer = AsyncScorer(small_tree)
        with pytest.raises(ValueError, match="sample"):
            scorer.score_one(np.zeros(N_FEATURES - 1))
