"""Golden tests for the ``registry`` and ``serve smoke`` CLI commands."""

import json

import pytest

from repro.cli import main

DATASET = "vertebral_2c"  # smallest real benchmark: fast to train shallow


@pytest.fixture
def registry_dir(tmp_path):
    return str(tmp_path / "registry")


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def promote(registry_dir, cache_dir, *extra):
    return main(
        [
            "registry",
            "promote",
            "--dataset",
            DATASET,
            "--depth",
            "2",
            "--registry-dir",
            registry_dir,
            "--cache-dir",
            cache_dir,
            *extra,
        ]
    )


class TestRegistryCli:
    def test_promote_then_list_then_show(
        self, registry_dir, cache_dir, capsys
    ):
        assert promote(registry_dir, cache_dir) == 0
        out = capsys.readouterr().out
        assert f"promoted {DATASET}-d2/v1" in out
        assert "kernel" in out and "cubes" in out

        assert main(["registry", "list", "--registry-dir", registry_dir]) == 0
        assert f"{DATASET}-d2/v1" in capsys.readouterr().out

        assert (
            main(["registry", "show", f"{DATASET}-d2", "--registry-dir", registry_dir])
            == 0
        )
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["name"] == f"{DATASET}-d2"
        assert manifest["version"] == 1
        assert manifest["depth"] == 2
        assert len(manifest["digest"]) == 64

    def test_promote_is_idempotent_across_invocations(
        self, registry_dir, cache_dir, capsys
    ):
        assert promote(registry_dir, cache_dir) == 0
        first = capsys.readouterr().out
        assert promote(registry_dir, cache_dir) == 0
        assert capsys.readouterr().out == first  # same version, same digest

    def test_custom_name(self, registry_dir, cache_dir, capsys):
        assert promote(registry_dir, cache_dir, "--name", "posture-prod") == 0
        assert "promoted posture-prod/v1" in capsys.readouterr().out

    def test_list_json(self, registry_dir, cache_dir, capsys):
        promote(registry_dir, cache_dir)
        capsys.readouterr()
        assert main(["registry", "list", "--json", "--registry-dir", registry_dir]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in entries] == [f"{DATASET}-d2"]

    def test_list_empty_registry(self, registry_dir, capsys):
        assert main(["registry", "list", "--registry-dir", registry_dir]) == 0
        assert "no models" in capsys.readouterr().out

    def test_show_datasheet(self, registry_dir, cache_dir, capsys):
        promote(registry_dir, cache_dir)
        capsys.readouterr()
        assert (
            main(
                [
                    "registry",
                    "show",
                    f"{DATASET}-d2",
                    "--datasheet",
                    "--registry-dir",
                    registry_dir,
                ]
            )
            == 0
        )
        assert DATASET in capsys.readouterr().out

    def test_show_unknown_model_exits_2(self, registry_dir, capsys):
        assert (
            main(["registry", "show", "ghost", "--registry-dir", registry_dir]) == 2
        )
        assert "ghost" in capsys.readouterr().err


class TestServeSmokeCli:
    def smoke(self, registry_dir, cache_dir, *extra):
        return main(
            [
                "serve",
                "smoke",
                "--dataset",
                DATASET,
                "--depth",
                "2",
                "--rate",
                "400",
                "--duration",
                "0.25",
                "--registry-dir",
                registry_dir,
                "--cache-dir",
                cache_dir,
                *extra,
            ]
        )

    def test_smoke_passes_and_writes_json(
        self, registry_dir, cache_dir, tmp_path, capsys
    ):
        out_json = tmp_path / "smoke.json"
        assert self.smoke(registry_dir, cache_dir, "--json", str(out_json)) == 0
        out = capsys.readouterr().out
        assert "SLO ok" in out
        assert "0 cache writes during serving" in out

        payload = json.loads(out_json.read_text())
        assert payload["model"] == f"{DATASET}-d2/v1"
        assert payload["engine"] == "bitparallel"
        assert payload["n_errors"] == 0
        assert payload["cache_writes_during_serving"] == 0
        assert payload["slo_failures"] == []
        assert payload["n_requests"] == 100  # 400 req/s * 0.25 s

    def test_smoke_fails_on_impossible_slo(
        self, registry_dir, cache_dir, tmp_path, capsys
    ):
        out_json = tmp_path / "smoke.json"
        code = self.smoke(
            registry_dir,
            cache_dir,
            "--p99-slo-ms",
            "1e-9",
            "--json",
            str(out_json),
        )
        assert code == 1
        assert "exceeds" in capsys.readouterr().err
        payload = json.loads(out_json.read_text())
        assert payload["slo_failures"]

    def test_smoke_batch_engine(self, registry_dir, cache_dir, capsys):
        assert self.smoke(registry_dir, cache_dir, "--engine", "batch") == 0
        assert "[batch]" in capsys.readouterr().out
