"""Tests for the model registry: promotion, versioning, content addressing."""

import json

import pytest

from repro.core.bitkernel import WORD_BITS, compile_tree_kernel
from repro.core.exploration import DesignSpaceExplorer
from repro.datasets.synthetic import make_classification_blobs
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology
from repro.serve.registry import (
    ModelRegistry,
    artifact_digest,
    default_registry_dir,
    promote_design,
)


@pytest.fixture(scope="module")
def design_points():
    """Two small trained design points with different content (depth 2 vs 3)."""
    X, y = make_classification_blobs(
        n_samples=200, n_features=4, n_classes=3, class_sep=2.0, seed=5
    )
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, seed=0)
    explorer = DesignSpaceExplorer(depths=(2, 3), taus=(0.0,), seed=0)
    split = (
        quantize_dataset(X_train, 4),
        y_train,
        quantize_dataset(X_test, 4),
        y_test,
    )
    return {
        depth: explorer.evaluate_point(*split, 3, depth, 0.0, dataset_name="blobs")
        for depth in (2, 3)
    }


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestPromotion:
    def test_promote_load_roundtrip(self, registry, design_points):
        point = design_points[2]
        artifact = registry.promote(point, "blobs-posture")
        assert artifact.name == "blobs-posture"
        assert artifact.version == 1
        assert artifact.dataset == "blobs"
        assert artifact.depth == 2
        assert artifact.accuracy == point.accuracy

        loaded = registry.load("blobs-posture")
        assert loaded.digest == artifact.digest
        assert loaded.version == 1
        # The served function survives the pickle roundtrip bit-identically.
        assert loaded.tree.root == point.tree.root

    def test_promote_is_idempotent_on_content(self, registry, design_points):
        first = registry.promote(design_points[2], "m")
        again = registry.promote(design_points[2], "m")
        assert (again.version, again.digest) == (first.version, first.digest)
        assert registry.versions("m") == [1]

    def test_new_content_allocates_next_version(self, registry, design_points):
        v1 = registry.promote(design_points[2], "m")
        v2 = registry.promote(design_points[3], "m")
        assert (v1.version, v2.version) == (1, 2)
        assert v1.digest != v2.digest
        assert registry.versions("m") == [1, 2]
        # Default load resolves to the latest version ...
        assert registry.load("m").version == 2
        # ... while pinned loads still reach the old artifact.
        assert registry.load("m", 1).digest == v1.digest

    def test_same_content_under_two_names(self, registry, design_points):
        a = registry.promote(design_points[2], "name-a")
        b = registry.promote(design_points[2], "name-b")
        assert a.digest == b.digest
        assert sorted(registry.list_models()) == ["name-a", "name-b"]

    @pytest.mark.parametrize(
        "bad_name", ["", "UPPER", "-leading-dash", ".hidden", "with space", "a" * 65]
    )
    def test_invalid_names_rejected(self, registry, design_points, bad_name):
        with pytest.raises(ValueError, match="invalid model name"):
            registry.promote(design_points[2], bad_name)


class TestDigest:
    def test_digest_is_deterministic(self, design_points):
        technology = default_technology()
        kwargs = dict(seed=0, resolution_bits=4, technology=technology)
        assert artifact_digest(design_points[2], **kwargs) == artifact_digest(
            design_points[2], **kwargs
        )

    def test_digest_separates_content(self, design_points):
        technology = default_technology()
        kwargs = dict(seed=0, resolution_bits=4, technology=technology)
        d2 = artifact_digest(design_points[2], **kwargs)
        d3 = artifact_digest(design_points[3], **kwargs)
        assert d2 != d3

    def test_digest_sensitive_to_training_knobs(self, design_points):
        technology = default_technology()
        base = artifact_digest(
            design_points[2], seed=0, resolution_bits=4, technology=technology
        )
        shifted = artifact_digest(
            design_points[2],
            seed=0,
            resolution_bits=4,
            technology=technology,
            training_sigma=0.04,
        )
        assert base != shifted


class TestManifest:
    def test_manifest_fields_and_kernel_meta(self, registry, design_points):
        point = design_points[3]
        artifact = registry.promote(point, "blobs-d3")
        manifest = registry.manifest("blobs-d3")
        assert manifest["name"] == "blobs-d3"
        assert manifest["version"] == 1
        assert manifest["digest"] == artifact.digest
        assert manifest["accuracy"] == point.accuracy

        kernel = compile_tree_kernel(point.tree)
        assert manifest["kernel_meta"] == {
            "n_digits": kernel.n_digits,
            "n_cubes": kernel.n_cubes,
            "n_literals": kernel.n_literals,
            "n_classes": kernel.n_classes,
            "word_bits": WORD_BITS,
        }

    def test_manifest_is_light_json_on_disk(self, registry, design_points):
        artifact = registry.promote(design_points[2], "m")
        path = registry.manifest_path("m", 1)
        on_disk = json.loads(path.read_text())
        assert on_disk["digest"] == artifact.digest
        assert "tree" not in on_disk  # the heavy payload stays in the pickle
        # Small enough to grep through thousands of manifests.
        assert path.stat().st_size < 4096

    def test_artifact_bundles_serving_extras(self, registry, design_points):
        artifact = registry.promote(design_points[2], "m")
        # Bespoke ADC config: per-feature retained comparator levels.
        for feature, levels in artifact.adc_config.items():
            assert isinstance(feature, int)
            assert all(0 <= level <= 16 for level in levels)
        assert artifact.datasheet  # rendered, human-readable
        assert artifact.kernel.n_classes == 3  # compiled kernel reachable


class TestLookupErrors:
    def test_unknown_name_raises_keyerror(self, registry):
        with pytest.raises(KeyError, match="ghost"):
            registry.load("ghost")
        with pytest.raises(KeyError):
            registry.manifest("ghost")
        assert registry.versions("ghost") == []
        assert registry.list_models() == []

    def test_unknown_version_raises_keyerror(self, registry, design_points):
        registry.promote(design_points[2], "m")
        with pytest.raises(KeyError, match="version"):
            registry.load("m", 7)

    def test_registry_dir_must_be_a_directory(self, tmp_path):
        clash = tmp_path / "not-a-dir"
        clash.write_text("occupied")
        with pytest.raises(ValueError, match="not a directory"):
            ModelRegistry(clash)

    def test_default_registry_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "custom"))
        assert default_registry_dir() == tmp_path / "custom"


class TestPromoteDesign:
    def test_trains_promotes_and_never_writes_the_cache(self, tmp_path):
        """The suite-cache lookup is read-only: a promote against an empty
        cache directory trains the point and leaves the cache empty."""
        cache_dir = tmp_path / "cache"
        registry = ModelRegistry(tmp_path / "registry")
        artifact = promote_design(
            registry, "vertebral_2c", 2, 0.0, cache_dir=cache_dir
        )
        assert artifact.name == "vertebral_2c-d2"
        assert artifact.depth == 2
        assert 0.0 <= artifact.accuracy <= 1.0
        cache_files = [p for p in cache_dir.rglob("*") if p.is_file()]
        assert cache_files == []

    def test_repromote_is_idempotent(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        kwargs = dict(cache_dir=tmp_path / "cache")
        first = promote_design(registry, "vertebral_2c", 2, 0.0, **kwargs)
        again = promote_design(registry, "vertebral_2c", 2, 0.0, **kwargs)
        assert (again.version, again.digest) == (first.version, first.digest)
