"""Tests for the stdlib markdown link checker behind the CI docs-check step."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py"
)
check_docs_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs_links)


class TestIterMarkdownLinks:
    def test_links_and_images_with_line_numbers(self):
        text = "intro\n[a](x.md) and ![img](pic.png)\n[b](y.md#sec)\n"
        links = list(check_docs_links.iter_markdown_links(text))
        assert links == [(2, "x.md"), (2, "pic.png"), (3, "y.md#sec")]

    def test_code_fences_are_skipped(self):
        text = "```\n[not a link](ghost.md)\n```\n[real](real.md)\n"
        assert list(check_docs_links.iter_markdown_links(text)) == [(4, "real.md")]


class TestCheckFile:
    def test_broken_relative_link_reported(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("[gone](missing.md)\n", encoding="utf-8")
        problems = check_docs_links.check_file(md, tmp_path)
        assert problems == ["doc.md:1: broken link 'missing.md'"]

    def test_existing_external_and_anchor_links_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("x\n", encoding="utf-8")
        (tmp_path / "sub").mkdir()
        md = tmp_path / "doc.md"
        md.write_text(
            "[ok](other.md)\n"
            "[dir](sub)\n"
            "[anchored](other.md#section)\n"
            "[web](https://example.com/page)\n"
            "[mail](mailto:x@example.com)\n"
            "[inpage](#local-heading)\n",
            encoding="utf-8",
        )
        assert check_docs_links.check_file(md, tmp_path) == []

    def test_root_relative_links_resolve_from_repo_root(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("x\n", encoding="utf-8")
        md = tmp_path / "docs" / "guide.md"
        md.write_text("[root](/README.md)\n", encoding="utf-8")
        assert check_docs_links.check_file(md, tmp_path) == []


class TestRepository:
    def test_this_repo_has_no_broken_links(self):
        """The same invariant the CI docs-check step enforces."""
        assert check_docs_links.main([str(REPO_ROOT)]) == 0
