"""Unit tests for the EGFET technology container."""

import pytest

from repro.pdk.egfet import EGFETTechnology, default_technology


class TestEGFETTechnology:
    def test_default_operating_point(self, technology):
        assert technology.vdd == pytest.approx(1.0)
        assert technology.frequency_hz == pytest.approx(20.0)
        assert technology.resolution_bits == 4

    def test_default_is_a_fresh_but_equivalent_instance(self):
        a = default_technology()
        b = default_technology()
        assert a.vdd == b.vdd
        assert a.cell_library.names() == b.cell_library.names()

    def test_ladder_for_same_resolution_returns_default_ladder(self, technology):
        assert technology.ladder_for(4) is technology.ladder

    def test_ladder_for_other_resolution_preserves_physics(self, technology):
        ladder3 = technology.ladder_for(3)
        assert ladder3.resolution_bits == 3
        assert ladder3.segment_area_mm2 == pytest.approx(
            technology.ladder.segment_area_mm2
        )
        assert ladder3.string_resistance_ohm == pytest.approx(
            technology.ladder.string_resistance_ohm
        )

    def test_encoder_size_scales_with_taps(self, technology):
        ge3 = technology.encoder_gate_equivalents(3)
        ge4 = technology.encoder_gate_equivalents(4)
        assert ge4 > ge3
        assert ge4 == pytest.approx(technology.encoder_gate_equivalents_per_tap * 15)

    def test_encoder_size_rejects_invalid_resolution(self, technology):
        with pytest.raises(ValueError):
            technology.encoder_gate_equivalents(0)

    def test_invalid_constructions_rejected(self):
        with pytest.raises(ValueError):
            EGFETTechnology(vdd=0.0)
        with pytest.raises(ValueError):
            EGFETTechnology(frequency_hz=-1.0)
        with pytest.raises(ValueError):
            EGFETTechnology(wiring_area_overhead=0.9)
        with pytest.raises(ValueError):
            EGFETTechnology(encoder_gate_equivalents_per_tap=0.0)

    def test_harvester_and_sensor_defaults(self, technology):
        assert technology.harvester.budget_mw == pytest.approx(2.0)
        assert technology.sensor.power_uw == pytest.approx(5.0)
