"""Unit tests for the resistor-ladder model."""

import pytest

from repro.pdk.resistor_ladder import ResistorLadder


class TestResistorLadder:
    @pytest.fixture(scope="class")
    def ladder(self):
        return ResistorLadder(resolution_bits=4)

    def test_segment_and_tap_counts(self, ladder):
        assert ladder.n_segments == 16
        assert ladder.n_taps == 15

    def test_area_scales_with_segments(self, ladder):
        assert ladder.area_mm2 == pytest.approx(16 * ladder.segment_area_mm2)

    def test_static_power_from_ohms_law(self, ladder):
        expected = ladder.vdd ** 2 / ladder.string_resistance_ohm * 1e6
        assert ladder.power_uw == pytest.approx(expected)

    def test_reference_voltages_monotone_and_bounded(self, ladder):
        voltages = ladder.reference_voltages()
        assert len(voltages) == 15
        assert all(later > earlier for earlier, later in zip(voltages, voltages[1:]))
        assert 0.0 < voltages[0] < voltages[-1] < ladder.vdd

    def test_reference_voltage_formula(self, ladder):
        assert ladder.reference_voltage(8) == pytest.approx(0.5)
        assert ladder.reference_voltage(1) == pytest.approx(1 / 16)

    def test_reference_voltage_rejects_out_of_range(self, ladder):
        with pytest.raises(ValueError):
            ladder.reference_voltage(0)
        with pytest.raises(ValueError):
            ladder.reference_voltage(16)

    def test_lower_resolution_ladder(self):
        ladder = ResistorLadder(resolution_bits=3)
        assert ladder.n_taps == 7
        assert ladder.area_mm2 == pytest.approx(8 * ladder.segment_area_mm2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ResistorLadder(resolution_bits=0)
        with pytest.raises(ValueError):
            ResistorLadder(segment_area_mm2=-1.0)
        with pytest.raises(ValueError):
            ResistorLadder(vdd=0.0)
