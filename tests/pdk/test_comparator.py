"""Unit tests for the analog comparator model."""

import pytest

from repro.pdk.comparator import AnalogComparatorModel


class TestAnalogComparatorModel:
    @pytest.fixture(scope="class")
    def model(self):
        return AnalogComparatorModel()

    def test_power_increases_with_reference_level(self, model):
        powers = [model.power_uw(level) for level in range(1, 16)]
        assert all(later > earlier for earlier, later in zip(powers, powers[1:]))

    def test_power_is_affine_in_level(self, model):
        deltas = [
            model.power_uw(level + 1) - model.power_uw(level) for level in range(1, 15)
        ]
        assert all(delta == pytest.approx(deltas[0]) for delta in deltas)

    def test_level_must_be_positive(self, model):
        with pytest.raises(ValueError):
            model.power_uw(0)

    def test_bank_power_is_sum_of_members(self, model):
        levels = [1, 2, 4, 7]
        assert model.bank_power_uw(levels) == pytest.approx(
            sum(model.power_uw(k) for k in levels)
        )

    def test_bank_area_scales_linearly(self, model):
        assert model.bank_area_mm2(4) == pytest.approx(4 * model.area_mm2)
        assert model.bank_area_mm2(0) == 0.0

    def test_bank_area_rejects_negative_count(self, model):
        with pytest.raises(ValueError):
            model.bank_area_mm2(-1)

    def test_low_levels_cheaper_than_high_levels(self, model):
        """The key property the ADC-aware training exploits (Section III-B)."""
        low_bank = model.bank_power_uw([1, 2, 3, 4])
        high_bank = model.bank_power_uw([12, 13, 14, 15])
        assert high_bank > 2 * low_bank

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            AnalogComparatorModel(area_mm2=0.0)
        with pytest.raises(ValueError):
            AnalogComparatorModel(power_base_uw=-1.0)
