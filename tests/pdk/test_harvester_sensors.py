"""Unit tests for the energy-harvester and sensor budget models."""

import pytest

from repro.pdk.harvester import PrintedEnergyHarvester
from repro.pdk.sensors import PrintedSensor, SensorSuite


class TestPrintedEnergyHarvester:
    def test_default_budget_is_two_milliwatts(self):
        assert PrintedEnergyHarvester().budget_mw == pytest.approx(2.0)

    def test_can_power_within_budget(self):
        harvester = PrintedEnergyHarvester(budget_mw=2.0)
        assert harvester.can_power(1.9)
        assert harvester.can_power(2.0)
        assert not harvester.can_power(2.01)

    def test_headroom_and_utilization(self):
        harvester = PrintedEnergyHarvester(budget_mw=2.0)
        assert harvester.headroom_mw(0.5) == pytest.approx(1.5)
        assert harvester.headroom_mw(2.5) == pytest.approx(-0.5)
        assert harvester.utilization(1.0) == pytest.approx(0.5)

    def test_negative_load_rejected(self):
        harvester = PrintedEnergyHarvester()
        with pytest.raises(ValueError):
            harvester.can_power(-1.0)
        with pytest.raises(ValueError):
            harvester.headroom_mw(-1.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            PrintedEnergyHarvester(budget_mw=0.0)


class TestSensors:
    def test_default_sensor_power(self):
        sensor = PrintedSensor()
        assert sensor.power_uw == pytest.approx(5.0)
        assert sensor.power_mw == pytest.approx(0.005)

    def test_negative_sensor_power_rejected(self):
        with pytest.raises(ValueError):
            PrintedSensor(power_uw=-1.0)

    def test_suite_power_scales_with_sensor_count(self):
        suite = SensorSuite(n_sensors=11)
        assert suite.power_uw == pytest.approx(55.0)
        assert suite.power_mw == pytest.approx(0.055)

    def test_paper_claim_eleven_sensors_below_011_mw(self):
        """Section IV: even 11 sensors add less than 0.11 mW."""
        assert SensorSuite(n_sensors=11).power_mw < 0.11

    def test_empty_suite(self):
        assert SensorSuite(n_sensors=0).power_uw == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SensorSuite(n_sensors=-1)
