"""Unit tests for the EGFET standard-cell library."""

import pytest

from repro.pdk.cells import (
    GATE_EQUIVALENT_AREA_MM2,
    GATE_EQUIVALENT_POWER_UW,
    Cell,
    CellLibrary,
    and_cell_for,
    egfet_cell_library,
    or_cell_for,
)


class TestCell:
    def test_cell_holds_declared_values(self):
        cell = Cell(name="X1", n_inputs=2, gate_equivalents=1.0, area_mm2=0.1, power_uw=2.0)
        assert cell.name == "X1"
        assert cell.n_inputs == 2
        assert cell.area_mm2 == pytest.approx(0.1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            Cell(name="BAD", n_inputs=-1, gate_equivalents=1.0, area_mm2=0.1, power_uw=1.0)

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            Cell(name="BAD", n_inputs=1, gate_equivalents=1.0, area_mm2=-0.1, power_uw=1.0)


class TestEgfetLibrary:
    @pytest.fixture(scope="class")
    def library(self):
        return egfet_cell_library()

    def test_contains_core_cells(self, library):
        for name in ["INV", "NAND2", "AND2", "OR2", "AND4", "OR4", "XOR2", "MUX2", "BUF"]:
            assert name in library

    def test_constants_have_zero_cost(self, library):
        assert library["CONST0"].area_mm2 == 0.0
        assert library["CONST1"].power_uw == 0.0

    def test_nand2_is_the_gate_equivalent(self, library):
        nand = library["NAND2"]
        assert nand.gate_equivalents == pytest.approx(1.0)
        assert nand.area_mm2 == pytest.approx(GATE_EQUIVALENT_AREA_MM2)
        assert nand.power_uw == pytest.approx(GATE_EQUIVALENT_POWER_UW)

    def test_and2_larger_than_nand2(self, library):
        assert library["AND2"].area_mm2 > library["NAND2"].area_mm2

    def test_area_and_power_scale_with_gate_equivalents(self, library):
        for cell in library:
            assert cell.area_mm2 == pytest.approx(cell.gate_equivalents * GATE_EQUIVALENT_AREA_MM2)
            assert cell.power_uw == pytest.approx(cell.gate_equivalents * GATE_EQUIVALENT_POWER_UW)

    def test_lookup_helpers(self, library):
        assert library.area_of("INV") == library["INV"].area_mm2
        assert library.power_of("INV") == library["INV"].power_uw

    def test_unknown_cell_raises_keyerror_with_hint(self, library):
        with pytest.raises(KeyError, match="not in library"):
            library["FOO42"]

    def test_names_sorted(self, library):
        names = library.names()
        assert names == sorted(names)
        assert len(names) == len(library)

    def test_add_replaces_cell(self):
        library = CellLibrary("test", [Cell("A", 1, 1.0, 0.1, 1.0)])
        library.add(Cell("A", 1, 2.0, 0.2, 2.0))
        assert len(library) == 1
        assert library["A"].area_mm2 == pytest.approx(0.2)


class TestLibraryValueSemantics:
    def test_equal_libraries_compare_and_hash_equal(self):
        first = CellLibrary("lib", [Cell("A", 1, 1.0, 0.1, 1.0)])
        second = CellLibrary("lib", [Cell("A", 1, 1.0, 0.1, 1.0)])
        assert first == second
        assert hash(first) == hash(second)

    def test_different_cells_compare_unequal(self):
        first = CellLibrary("lib", [Cell("A", 1, 1.0, 0.1, 1.0)])
        second = CellLibrary("lib", [Cell("A", 1, 2.0, 0.2, 2.0)])
        assert first != second

    def test_technology_embedding_a_library_stays_hashable(self):
        from repro.pdk.egfet import default_technology

        assert hash(default_technology()) == hash(default_technology())


class TestWidthHelpers:
    @pytest.mark.parametrize(
        "width, expected",
        [(1, "BUF"), (2, "AND2"), (3, "AND3"), (4, "AND4"), (7, "AND4")],
    )
    def test_and_cell_for(self, width, expected):
        assert and_cell_for(width) == expected

    @pytest.mark.parametrize(
        "width, expected",
        [(1, "BUF"), (2, "OR2"), (3, "OR3"), (4, "OR4"), (9, "OR4")],
    )
    def test_or_cell_for(self, width, expected):
        assert or_cell_for(width) == expected
