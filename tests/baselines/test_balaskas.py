"""Unit tests for the approximate precision-scaled baseline [7]."""

import numpy as np
import pytest

from repro.baselines.balaskas import (
    BalaskasApproximateDesign,
    approximate_tree,
    fit_balaskas_design,
)
from repro.mltrees.cart import fit_baseline_tree
from repro.mltrees.evaluation import accuracy_score


class TestApproximateTree:
    def test_full_precision_is_identity(self, small_tree):
        clone = approximate_tree(small_tree, {f: 4 for f in small_tree.used_features()})
        assert clone.comparisons() == small_tree.comparisons()

    def test_original_tree_untouched(self, small_tree):
        before = small_tree.comparisons()
        approximate_tree(small_tree, {f: 1 for f in small_tree.used_features()})
        assert small_tree.comparisons() == before

    def test_thresholds_snap_to_coarse_grid(self, small_tree):
        bits = 2
        clone = approximate_tree(small_tree, {f: bits for f in small_tree.used_features()})
        step = 2 ** (small_tree.resolution_bits - bits)
        for _, level in clone.comparisons():
            assert level % step == 0 or level == step
            assert level >= 1

    def test_one_bit_extreme(self, small_tree):
        clone = approximate_tree(small_tree, {f: 1 for f in small_tree.used_features()})
        for _, level in clone.comparisons():
            assert level == 8

    def test_prediction_changes_only_via_threshold_shift(self, small_tree):
        """Approximated tree equals original whenever no threshold moved."""
        bits = {f: 3 for f in small_tree.used_features()}
        clone = approximate_tree(small_tree, bits)
        rng = np.random.default_rng(0)
        X_levels = rng.integers(0, 16, size=(100, small_tree.n_features))
        moved = any(
            orig != approx
            for orig, approx in zip(small_tree.comparisons(), clone.comparisons())
        )
        if not moved:
            np.testing.assert_array_equal(
                clone.predict_levels(X_levels), small_tree.predict_levels(X_levels)
            )


class TestFitBalaskasDesign:
    @pytest.fixture(scope="class")
    def fitted(self, small_split, technology):
        X_train, X_test, y_train, y_test = small_split
        reference = fit_baseline_tree(X_train, y_train, X_test, y_test, 3, max_depth=5)
        design = fit_balaskas_design(
            X_train, y_train, X_test, y_test,
            n_classes=3,
            reference_accuracy=reference.test_accuracy,
            reference_depth=reference.depth,
            max_accuracy_loss=0.01,
            technology=technology,
            seed=0,
        )
        return reference, design

    def test_returns_design_object(self, fitted):
        _, design = fitted
        assert isinstance(design, BalaskasApproximateDesign)
        assert design.depth >= 1
        assert design.per_feature_bits

    def test_accuracy_within_budget(self, fitted):
        reference, design = fitted
        assert design.accuracy >= reference.test_accuracy - 0.01 - 1e-9

    def test_reported_accuracy_matches_tree(self, fitted, small_split):
        _, design = fitted
        _, X_test, _, y_test = small_split
        measured = accuracy_score(y_test, design.tree.predict_levels(X_test))
        assert measured == pytest.approx(design.accuracy)

    def test_precision_actually_reduced_somewhere(self, fitted):
        _, design = fitted
        assert any(bits < 4 for bits in design.per_feature_bits.values())

    def test_precision_bounds(self, fitted):
        _, design = fitted
        assert all(1 <= bits <= 4 for bits in design.per_feature_bits.values())

    def test_hardware_cheaper_than_exact_baseline_adc(self, fitted, technology):
        """Smaller per-input ADCs must reduce the ADC cost vs the exact baseline."""
        from repro.baselines.mubarik import BaselineBespokeDesign

        reference, design = fitted
        exact = BaselineBespokeDesign(reference.tree, technology).hardware_report()
        approx = design.hardware_report()
        if design.depth <= reference.depth:
            assert approx.adc_power_uw <= exact.adc_power_uw + 1e-6

    def test_hardware_report_consistent(self, fitted):
        _, design = fitted
        report = design.hardware_report()
        assert report.n_inputs == len(design.tree.used_features())
        assert report.n_tree_comparators == design.tree.n_decision_nodes
        assert report.total_power_uw > 0
