"""Unit tests for the exact bespoke baseline [2]."""

import numpy as np
import pytest

from repro.baselines.mubarik import (
    BaselineBespokeDesign,
    build_comparator_tree_netlist,
    comparator_variable,
    feature_bit_variable,
)


class TestVariableNaming:
    def test_names(self):
        assert feature_bit_variable(2, 3) == "I2_b3"
        assert comparator_variable(7) == "cmp_7"


class TestComparatorTreeNetlist:
    def test_inputs_are_bits_of_used_features(self, small_tree):
        netlist = build_comparator_tree_netlist(small_tree)
        used = small_tree.used_features()
        expected_inputs = {
            feature_bit_variable(feature, bit)
            for feature in used
            for bit in range(small_tree.resolution_bits)
        }
        assert set(netlist.inputs) == expected_inputs

    def test_one_output_per_class(self, small_tree):
        netlist = build_comparator_tree_netlist(small_tree)
        assert netlist.outputs == [f"class_{c}" for c in range(small_tree.n_classes)]

    def test_netlist_validates(self, small_tree):
        netlist = build_comparator_tree_netlist(small_tree)
        netlist.validate()
        assert netlist.n_gates > small_tree.n_decision_nodes  # comparators + label logic

    def test_reduced_precision_shrinks_logic(self, small_tree):
        full = build_comparator_tree_netlist(small_tree)
        scaled = build_comparator_tree_netlist(
            small_tree,
            per_feature_bits={f: 2 for f in small_tree.used_features()},
        )
        assert scaled.n_gates <= full.n_gates


class TestBaselineBespokeDesign:
    @pytest.fixture(scope="class")
    def design(self, small_tree, technology):
        return BaselineBespokeDesign(small_tree, technology)

    def test_netlist_predictions_match_software_tree(self, design, small_tree, small_split):
        _, X_test_levels, _, _ = small_split
        sample = X_test_levels[:25]
        expected = small_tree.predict_levels(sample)
        actual = np.array([design.netlist_predict_one_level(row) for row in sample])
        np.testing.assert_array_equal(actual, expected)

    def test_netlist_predictions_match_on_random_levels(self, design, small_tree):
        rng = np.random.default_rng(17)
        X_levels = rng.integers(0, 16, size=(40, small_tree.n_features))
        expected = small_tree.predict_levels(X_levels)
        actual = np.array([design.netlist_predict_one_level(row) for row in X_levels])
        np.testing.assert_array_equal(actual, expected)

    def test_netlist_predict_on_raw_features(self, design, small_tree):
        rng = np.random.default_rng(19)
        X = rng.random((10, small_tree.n_features))
        np.testing.assert_array_equal(design.netlist_predict(X), small_tree.predict(X))

    def test_hardware_report_fields(self, design, small_tree):
        report = design.hardware_report()
        assert report.n_tree_comparators == small_tree.n_decision_nodes
        assert report.n_inputs == len(small_tree.used_features())
        assert report.n_adc_comparators == 15 * report.n_inputs
        assert report.total_area_mm2 == pytest.approx(
            report.adc_area_mm2 + report.digital_area_mm2
        )

    def test_adc_dominates_power(self, design):
        """Table I observation: ADCs are the dominant power consumer."""
        report = design.hardware_report()
        assert report.adc_power_fraction > 0.5

    def test_adc_cost_scales_with_used_inputs(self, small_tree, technology):
        report = BaselineBespokeDesign(small_tree, technology).hardware_report()
        n_inputs = report.n_inputs
        # per-channel bank ~0.6 mm2 / ~0.45 mW plus one shared encoder
        assert report.adc_area_mm2 > 10.0
        assert report.adc_power_uw > 400.0 * n_inputs


class TestBatchNetlistPrediction:
    @pytest.fixture(scope="class")
    def design(self, small_tree, technology):
        return BaselineBespokeDesign(small_tree, technology)

    def test_batch_matches_per_row_scalar_api(self, design, small_tree):
        rng = np.random.default_rng(31)
        X_levels = rng.integers(0, 16, size=(60, small_tree.n_features))
        batch = design.netlist_predict_levels(X_levels)
        scalar = np.array(
            [design.netlist_predict_one_level(row) for row in X_levels],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_batch_matches_software_tree(self, design, small_tree, small_split):
        _, X_test_levels, _, _ = small_split
        np.testing.assert_array_equal(
            design.netlist_predict_levels(X_test_levels),
            small_tree.predict_levels(X_test_levels),
        )

    def test_bit_matrix_matches_bit_assignment(self, design, small_tree):
        rng = np.random.default_rng(37)
        X_levels = rng.integers(0, 16, size=(12, small_tree.n_features))
        matrix = design.bit_matrix(X_levels)
        for row_index, row in enumerate(X_levels):
            scalar = design.bit_assignment(row)
            for net, expected in scalar.items():
                assert bool(matrix[net][row_index]) == expected

    def test_bit_matrix_rejects_vectors(self, design, small_tree):
        with pytest.raises(ValueError, match="2-D"):
            design.bit_matrix(np.zeros(small_tree.n_features, dtype=np.int64))
