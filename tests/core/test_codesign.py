"""Unit/integration tests for the end-to-end co-design framework."""

import pytest

from repro.core.codesign import CoDesignFramework, CoDesignResult
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs


@pytest.fixture(scope="module")
def small_benchmark():
    """A small but non-trivial benchmark dataset for the framework."""
    X, y = make_classification_blobs(
        n_samples=300, n_features=6, n_classes=3, class_sep=1.8,
        noise_scale=1.0, label_noise=0.05, clusters_per_class=2, seed=21,
    )
    return Dataset(
        name="toy_bench",
        X=X,
        y=y,
        feature_names=[f"f{i}" for i in range(6)],
        class_names=["a", "b", "c"],
        metadata={"abbreviation": "TB"},
    )


@pytest.fixture(scope="module")
def framework(technology):
    return CoDesignFramework(
        technology=technology,
        max_baseline_depth=4,
        depths=(2, 3, 4),
        taus=(0.0, 0.01, 0.03),
        accuracy_losses=(0.0, 0.01, 0.05),
        seed=0,
        include_approximate_baseline=True,
    )


@pytest.fixture(scope="module")
def result(framework, small_benchmark):
    return framework.run(small_benchmark)


class TestCoDesignRun:
    def test_result_structure(self, result):
        assert isinstance(result, CoDesignResult)
        assert result.dataset == "toy_bench"
        assert result.baseline.hardware.n_tree_comparators > 0
        assert result.unary_bespoke_adc.hardware.n_tree_comparators == 0
        assert len(result.exploration) == 9
        assert result.approximate_baseline is not None

    def test_baseline_and_unary_share_model_accuracy(self, result):
        assert result.baseline.accuracy == pytest.approx(
            result.unary_bespoke_adc.accuracy
        )
        assert result.baseline.depth == result.unary_bespoke_adc.depth

    def test_fig4_gains_positive(self, result):
        reduction = result.fig4_reduction()
        assert reduction.area_factor > 1.0
        assert reduction.power_factor > 1.0

    def test_selected_designs_meet_their_accuracy_constraints(self, result):
        for loss, design in result.selected.items():
            assert design.accuracy >= result.baseline.accuracy - loss - 1e-9

    def test_selected_designs_monotone_in_loss_budget(self, result):
        losses = sorted(result.selected)
        powers = [result.selected[loss].hardware.total_power_uw for loss in losses]
        assert all(b <= a + 1e-9 for a, b in zip(powers, powers[1:]))

    def test_table2_reduction_vs_baseline(self, result):
        reduction = result.table2_reduction(0.01)
        assert reduction is not None
        assert reduction.area_factor > 1.0
        assert reduction.power_factor > 1.0

    def test_table2_reduction_vs_approximate(self, result):
        reduction = result.table2_reduction_vs_approximate(0.01)
        assert reduction is not None
        assert reduction.power_factor > 0.0

    def test_self_power_analysis_available(self, result):
        analysis = result.self_power(0.01)
        assert analysis is not None
        assert analysis.sensor_power_mw > 0
        assert analysis.harvester_budget_mw == pytest.approx(2.0)

    def test_missing_loss_threshold_returns_none(self, result):
        assert result.fig5_reduction(0.42) is None
        assert result.table2_reduction(0.42) is None
        assert result.self_power(0.42) is None

    def test_metadata_carries_technology_and_abbreviation(self, result, technology):
        assert result.metadata["technology"] is technology
        assert result.metadata["abbreviation"] == "TB"


class TestFrameworkConfiguration:
    def test_prepare_quantizes_and_splits(self, framework, small_benchmark):
        X_train, X_test, y_train, y_test = framework.prepare(small_benchmark)
        assert X_train.max() <= 15 and X_train.min() >= 0
        assert len(X_train) + len(X_test) == small_benchmark.n_samples
        assert len(y_test) == len(X_test)

    def test_approximate_baseline_can_be_skipped(self, technology, small_benchmark):
        framework = CoDesignFramework(
            technology=technology, depths=(2,), taus=(0.0,), seed=0,
            include_approximate_baseline=False,
        )
        result = framework.run(small_benchmark)
        assert result.approximate_baseline is None
        assert result.table2_reduction_vs_approximate(0.01) is None

    def test_runs_are_reproducible(self, technology, small_benchmark):
        def run_once():
            framework = CoDesignFramework(
                technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=7,
                include_approximate_baseline=False,
            )
            return framework.run(small_benchmark)

        first, second = run_once(), run_once()
        assert first.baseline.accuracy == pytest.approx(second.baseline.accuracy)
        assert first.baseline.hardware.total_area_mm2 == pytest.approx(
            second.baseline.hardware.total_area_mm2
        )
        for loss in first.selected:
            assert first.selected[loss].hardware.total_power_uw == pytest.approx(
                second.selected[loss].hardware.total_power_uw
            )
