"""Unit tests for the parallel unary decision-tree architecture."""

import numpy as np
import pytest

from repro.circuits.verification import check_equivalence
from repro.core.unary_tree import UnaryDecisionTree, digit_variable
from repro.mltrees.cart import CARTTrainer


class TestDigitVariable:
    def test_naming(self):
        assert digit_variable(3, 11) == "I3_u11"


class TestUnaryTranslation:
    @pytest.fixture(scope="class")
    def unary(self, small_tree):
        return UnaryDecisionTree(small_tree)

    def test_required_digits_match_tree(self, unary, small_tree):
        assert unary.required_digits == small_tree.required_levels()
        assert unary.used_features == tuple(small_tree.used_features())
        assert unary.n_inputs == len(small_tree.used_features())

    def test_total_unary_digits_counts_unique_pairs(self, unary, small_tree):
        assert unary.n_unary_digits == len(small_tree.unique_comparisons())

    def test_label_logic_covers_all_classes(self, unary, small_tree):
        logic = unary.label_logic
        assert set(logic) == set(range(small_tree.n_classes))
        predicted_classes = {leaf.prediction for leaf in small_tree.leaves()}
        for label, sop in logic.items():
            if label in predicted_classes:
                assert not sop.is_false()
            else:
                assert sop.is_false()

    def test_digit_variables_sorted(self, unary):
        variables = unary.digit_variables()
        assert variables == sorted(
            variables, key=lambda v: (int(v[1:].split("_u")[0]), int(v.split("_u")[1]))
        )

    def test_exactly_one_label_fires_per_sample(self, unary, small_tree):
        rng = np.random.default_rng(3)
        X_levels = rng.integers(0, 16, size=(100, small_tree.n_features))
        for row in X_levels:
            assignment = unary._digits_from_levels(row)
            fired = [
                label for label, sop in unary.label_logic.items()
                if sop.evaluate(assignment)
            ]
            assert len(fired) == 1


class TestUnaryPrediction:
    @pytest.fixture(scope="class")
    def unary(self, small_tree):
        return UnaryDecisionTree(small_tree)

    def test_matches_original_tree_on_levels(self, unary, small_tree, small_split):
        _, X_test_levels, _, _ = small_split
        np.testing.assert_array_equal(
            unary.predict_levels(X_test_levels),
            small_tree.predict_levels(X_test_levels),
        )

    def test_matches_original_tree_on_random_levels(self, unary, small_tree):
        rng = np.random.default_rng(7)
        X_levels = rng.integers(0, 16, size=(200, small_tree.n_features))
        np.testing.assert_array_equal(
            unary.predict_levels(X_levels), small_tree.predict_levels(X_levels)
        )

    def test_matches_original_tree_on_raw_features(self, unary, small_tree):
        rng = np.random.default_rng(11)
        X = rng.random((50, small_tree.n_features))
        np.testing.assert_array_equal(unary.predict(X), small_tree.predict(X))

    def test_predict_from_digits_interface(self, unary, small_tree):
        levels = np.full(small_tree.n_features, 8)
        digits = {
            feature: {level: int(levels[feature] >= level) for level in required}
            for feature, required in unary.required_digits.items()
        }
        assert unary.predict_from_digits(digits) == small_tree.predict_one_level(levels)

    def test_inconsistent_assignment_raises(self, small_tree):
        unary = UnaryDecisionTree(small_tree)
        assignment = {variable: False for variable in unary.digit_variables()}
        # Forcing every digit false is still consistent (level 0), so flip the
        # logic: an all-false assignment must fire exactly one label, never zero.
        assert isinstance(unary.predict_from_assignment(assignment), int)


class TestUnaryHardware:
    def test_netlist_equivalent_to_tree(self, small_tree, technology):
        unary = UnaryDecisionTree(small_tree)
        netlist = unary.to_netlist()

        def reference(assignment):
            label = unary.predict_from_assignment(assignment)
            return {
                unary.class_output(c): (c == label) for c in range(unary.n_classes)
            }

        result = check_equivalence(
            netlist, reference, exhaustive_limit=10, n_random_vectors=300, seed=0
        )
        assert result.equivalent, result.mismatches

    def test_digital_report_positive_and_small(self, small_tree, technology):
        unary = UnaryDecisionTree(small_tree)
        report = unary.digital_report(technology)
        assert report.area_mm2 > 0
        assert report.power_uw > 0
        assert report.n_gates > 0

    def test_unary_logic_cheaper_than_baseline_digital(self, small_tree, technology):
        """Removing the comparators must shrink the digital block (Fig. 4)."""
        from repro.baselines.mubarik import BaselineBespokeDesign

        unary = UnaryDecisionTree(small_tree)
        baseline = BaselineBespokeDesign(small_tree, technology)
        assert unary.digital_report(technology).area_mm2 < baseline.digital_report().area_mm2

    def test_single_leaf_tree_translates(self):
        X_levels = np.array([[3, 4], [5, 6]])
        y = np.array([1, 1])
        tree = CARTTrainer(max_depth=2).fit(X_levels, y, n_classes=2)
        unary = UnaryDecisionTree(tree)
        assert unary.n_inputs == 0
        assert unary.label_logic[1].is_true()
        assert unary.predict_levels(X_levels).tolist() == [1, 1]
