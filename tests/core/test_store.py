"""Unit tests for the content-addressed on-disk result store."""

import pickle

import pytest

from repro.core.store import ResultStore, code_version, make_key


@pytest.fixture
def store(tmp_path):
    return ResultStore(cache_dir=tmp_path / "cache")


class TestMakeKey:
    def test_field_order_does_not_matter(self):
        assert make_key(a=1, b="x") == make_key(b="x", a=1)

    def test_list_and_tuple_alias(self):
        assert make_key(depths=(2, 3), taus=[0.0]) == make_key(depths=[2, 3], taus=(0.0,))

    def test_different_values_differ(self):
        assert make_key(seed=0) != make_key(seed=1)
        assert make_key(dataset="seeds") != make_key(dataset="cardio")

    def test_code_version_participates(self):
        current = make_key(seed=0)
        pinned = make_key(seed=0, code_version="0.0.0/older")
        assert current != pinned
        assert make_key(seed=0, code_version=code_version()) == current

    def test_dataclasses_hash_by_value(self):
        from repro.pdk.egfet import default_technology

        assert make_key(tech=default_technology()) == make_key(tech=default_technology())


class TestResultStore:
    def test_miss_then_hit_round_trip(self, store):
        key = store.make_key(dataset="seeds", seed=0)
        assert store.get(key) is None
        assert store.stats.misses == 1

        store.put(key, {"accuracy": 0.9})
        assert store.stats.stores == 1
        assert store.get(key) == {"accuracy": 0.9}
        assert store.stats.hits == 1

    def test_survives_across_instances(self, store):
        key = make_key(dataset="seeds", seed=0)
        store.put(key, [1, 2, 3])

        reopened = ResultStore(cache_dir=store.cache_dir)
        assert reopened.get(key) == [1, 2, 3]
        assert reopened.stats.hits == 1
        assert reopened.stats.misses == 0

    def test_contains_and_len(self, store):
        key = make_key(n=1)
        assert key not in store
        assert len(store) == 0
        store.put(key, "value")
        assert key in store
        assert len(store) == 1

    def test_invalidate(self, store):
        key = make_key(n=2)
        store.put(key, "value")
        assert store.invalidate(key) is True
        assert store.invalidate(key) is False
        assert store.get(key) is None

    def test_clear(self, store):
        for n in range(3):
            store.put(make_key(n=n), n)
        assert store.clear() == 3
        assert len(store) == 0

    def test_clear_sweeps_orphaned_tmp_files(self, store):
        store.put(make_key(n=0), 0)
        orphan = store.cache_dir / "deadbeef.tmp"
        orphan.write_bytes(b"partial write from a killed process")
        assert store.clear() == 1  # tmp files are not entries
        assert not orphan.exists()

    def test_corrupt_entry_counts_as_miss_and_is_evicted(self, store):
        key = make_key(n=3)
        store.put(key, "value")
        store.path_for(key).write_bytes(b"\x80truncated")
        assert store.get(key, default="fallback") == "fallback"
        assert store.stats.misses == 1
        assert key not in store

    def test_put_overwrites_atomically(self, store):
        key = make_key(n=4)
        store.put(key, "old")
        store.put(key, "new")
        assert store.get(key) == "new"
        with open(store.path_for(key), "rb") as handle:
            assert pickle.load(handle) == "new"

    def test_cache_dir_pointing_at_a_file_rejected(self, tmp_path):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        with pytest.raises(ValueError, match="not a directory"):
            ResultStore(cache_dir=bogus)

    def test_stats_reset(self, store):
        store.get(make_key(n=5))
        store.stats.reset()
        assert (store.stats.hits, store.stats.misses, store.stats.stores) == (0, 0, 0)
