"""Unit tests for the content-addressed on-disk result store."""

import json
import os
import pickle
import tempfile
import threading
import time

import pytest

from repro.core.store import ResultStore, code_version, content_digest, make_key


@pytest.fixture
def store(tmp_path):
    return ResultStore(cache_dir=tmp_path / "cache")


class TestMakeKey:
    def test_field_order_does_not_matter(self):
        assert make_key(a=1, b="x") == make_key(b="x", a=1)

    def test_list_and_tuple_alias(self):
        assert make_key(depths=(2, 3), taus=[0.0]) == make_key(depths=[2, 3], taus=(0.0,))

    def test_different_values_differ(self):
        assert make_key(seed=0) != make_key(seed=1)
        assert make_key(dataset="seeds") != make_key(dataset="cardio")

    def test_code_version_participates(self):
        current = make_key(seed=0)
        pinned = make_key(seed=0, code_version="0.0.0/older")
        assert current != pinned
        assert make_key(seed=0, code_version=code_version()) == current

    def test_dataclasses_hash_by_value(self):
        from repro.pdk.egfet import default_technology

        assert make_key(tech=default_technology()) == make_key(tech=default_technology())


class TestContentDigest:
    def test_field_order_does_not_matter(self):
        assert content_digest(a=1, b="x") == content_digest(b="x", a=1)

    def test_no_code_version_mixed_in(self):
        """content_digest is a pure content address: stable across package
        upgrades, unlike make_key (which exists to expire stale results)."""
        digest = content_digest(seed=0)
        # make_key == content_digest once code_version is passed explicitly.
        assert make_key(seed=0) == content_digest(seed=0, code_version=code_version())
        # Without it, the two address different things.
        assert make_key(seed=0) != digest

    def test_is_hex_sha256(self):
        digest = content_digest(kind="artifact", n=1)
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestTouchOnGet:
    def _aged_entry(self, store, age_s=3600.0):
        key = make_key(n="aged")
        store.put(key, "value")
        path = store.path_for(key)
        old = time.time() - age_s
        os.utime(path, (old, old))
        return key, path

    def test_default_get_refreshes_mtime(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path / "cache")
        key, path = self._aged_entry(store)
        before = path.stat().st_mtime
        assert store.get(key) == "value"
        assert path.stat().st_mtime > before  # LRU recency refreshed

    def test_fast_read_get_leaves_mtime_untouched(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path / "cache", touch_on_get=False)
        key, path = self._aged_entry(store)
        before = path.stat().st_mtime_ns
        assert store.get(key) == "value"  # still a full hit ...
        assert store.stats.hits == 1
        assert path.stat().st_mtime_ns == before  # ... with zero writes

    def test_fast_read_store_interoperates_with_writer(self, tmp_path):
        writer = ResultStore(cache_dir=tmp_path / "cache")
        reader = ResultStore(cache_dir=tmp_path / "cache", touch_on_get=False)
        key = make_key(n="shared")
        writer.put(key, {"accuracy": 0.9})
        assert reader.get(key) == {"accuracy": 0.9}


class TestResultStore:
    def test_miss_then_hit_round_trip(self, store):
        key = store.make_key(dataset="seeds", seed=0)
        assert store.get(key) is None
        assert store.stats.misses == 1

        store.put(key, {"accuracy": 0.9})
        assert store.stats.stores == 1
        assert store.get(key) == {"accuracy": 0.9}
        assert store.stats.hits == 1

    def test_survives_across_instances(self, store):
        key = make_key(dataset="seeds", seed=0)
        store.put(key, [1, 2, 3])

        reopened = ResultStore(cache_dir=store.cache_dir)
        assert reopened.get(key) == [1, 2, 3]
        assert reopened.stats.hits == 1
        assert reopened.stats.misses == 0

    def test_contains_and_len(self, store):
        key = make_key(n=1)
        assert key not in store
        assert len(store) == 0
        store.put(key, "value")
        assert key in store
        assert len(store) == 1

    def test_invalidate(self, store):
        key = make_key(n=2)
        store.put(key, "value")
        assert store.invalidate(key) is True
        assert store.invalidate(key) is False
        assert store.get(key) is None

    def test_clear(self, store):
        for n in range(3):
            store.put(make_key(n=n), n)
        assert store.clear() == 3
        assert len(store) == 0

    def test_clear_sweeps_orphaned_tmp_files(self, store):
        store.put(make_key(n=0), 0)
        orphan = store.cache_dir / "deadbeef.tmp"
        orphan.write_bytes(b"partial write from a killed process")
        assert store.clear() == 1  # tmp files are not entries
        assert not orphan.exists()

    def test_corrupt_entry_counts_as_miss_and_is_evicted(self, store):
        key = make_key(n=3)
        store.put(key, "value")
        store.path_for(key).write_bytes(b"\x80truncated")
        assert store.get(key, default="fallback") == "fallback"
        assert store.stats.misses == 1
        assert key not in store

    def test_put_overwrites_atomically(self, store):
        key = make_key(n=4)
        store.put(key, "old")
        store.put(key, "new")
        assert store.get(key) == "new"
        with open(store.path_for(key), "rb") as handle:
            assert pickle.load(handle) == "new"

    def test_cache_dir_pointing_at_a_file_rejected(self, tmp_path):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        with pytest.raises(ValueError, match="not a directory"):
            ResultStore(cache_dir=bogus)

    def test_stats_reset(self, store):
        store.get(make_key(n=5))
        store.stats.reset()
        assert (store.stats.hits, store.stats.misses, store.stats.stores) == (0, 0, 0)


class TestStoreLifecycle:
    @pytest.fixture()
    def store(self, tmp_path):
        return ResultStore(cache_dir=tmp_path / "cache")

    def test_disk_stats_empty_store(self, store):
        stats = store.disk_stats()
        assert stats.n_entries == 0
        assert stats.total_bytes == 0
        assert stats.oldest_age_s is None
        assert stats.newest_age_s is None

    def test_disk_stats_counts_entries_and_bytes(self, store):
        store.put(make_key(n=1), "a")
        store.put(make_key(n=2), list(range(100)))
        stats = store.disk_stats()
        assert stats.n_entries == 2
        assert stats.total_bytes > 0
        assert stats.oldest_age_s >= stats.newest_age_s >= 0.0

    def test_prune_older_than_drops_only_old_entries(self, store):
        old_key, new_key = make_key(n=1), make_key(n=2)
        store.put(old_key, "old")
        ancient = time.time() - 10 * 86400
        os.utime(store.path_for(old_key), (ancient, ancient))
        store.put(new_key, "new")
        assert store.prune_older_than(86400.0) == 1
        assert old_key not in store
        assert new_key in store

    def test_prune_rejects_negative_age(self, store):
        with pytest.raises(ValueError):
            store.prune_older_than(-1.0)

    def test_prune_sweeps_old_tmp_files_without_counting_them(self, store):
        store.put(make_key(n=1), "keep")
        orphan = store.cache_dir / "deadbeef.tmp"
        orphan.write_bytes(b"partial")
        ancient = time.time() - 10 * 86400
        os.utime(orphan, (ancient, ancient))
        assert store.prune_older_than(86400.0) == 0
        assert not orphan.exists()

    def test_flush_stats_accumulates_across_instances(self, store):
        key = make_key(n=1)
        store.get(key)            # miss
        store.put(key, "value")   # store
        store.get(key)            # hit
        totals = store.flush_stats()
        assert totals == {"hits": 1, "misses": 1, "stores": 1}
        assert store.stats.hits == 1  # in-memory counters keep counting
        assert store.flush_stats() == totals  # re-flush adds nothing new
        other = ResultStore(cache_dir=store.cache_dir)
        other.get(key)            # hit
        assert other.lifetime_stats() == {"hits": 2, "misses": 1, "stores": 1}

    def test_lifetime_stats_tolerates_corrupt_file(self, store):
        store.put(make_key(n=1), "x")
        store.flush_stats()
        (store.cache_dir / "_stats.json").write_text("not json at all")
        assert store.lifetime_stats() == {"hits": 0, "misses": 0, "stores": 0}

    def test_stats_file_is_not_an_entry(self, store):
        store.put(make_key(n=1), "x")
        store.flush_stats()
        assert len(store) == 1
        assert store.disk_stats().n_entries == 1

    def test_lifetime_stats_tolerates_non_object_json(self, store):
        store.put(make_key(n=1), "x")
        store.flush_stats()
        (store.cache_dir / "_stats.json").write_text("[1, 2, 3]")
        assert store.lifetime_stats() == {"hits": 0, "misses": 0, "stores": 0}

    def test_flush_stats_degrades_gracefully_on_read_only_store(
        self, store, monkeypatch
    ):
        # chmod tricks are a no-op under root, so force the unwritable-store
        # branch deterministically by making the stats tempfile creation fail.
        import tempfile

        key = make_key(n=1)
        store.put(key, "payload")
        store.flush_stats()
        reader = ResultStore(cache_dir=store.cache_dir)
        assert reader.get(key) == "payload"   # pure reads keep working

        def _denied(*args, **kwargs):
            raise PermissionError("read-only store")

        monkeypatch.setattr(tempfile, "mkstemp", _denied)
        totals = reader.flush_stats()         # accounting degrades, no raise
        assert totals["hits"] >= 1
        monkeypatch.undo()
        # nothing was lost while read-only; a later flush persists the hit
        assert reader.flush_stats()["hits"] == 1
        assert ResultStore(cache_dir=store.cache_dir).lifetime_stats()["hits"] == 1


class TestPruneToSize:
    def _put_sized(self, store, name: str, size: int, mtime: float) -> str:
        """Store a payload of roughly ``size`` bytes with a forced mtime."""
        key = make_key(name=name)
        store.put(key, b"x" * size)
        os.utime(store.path_for(key), (mtime, mtime))
        return key

    def test_evicts_least_recently_used_first(self, store):
        now = time.time()
        old = self._put_sized(store, "old", 4000, now - 300)
        middle = self._put_sized(store, "middle", 4000, now - 200)
        fresh = self._put_sized(store, "fresh", 4000, now - 100)
        budget = store.disk_stats().total_bytes - 1  # force one eviction
        assert store.prune_to_size(budget) == 1
        assert old not in store
        assert middle in store and fresh in store

    def test_noop_when_under_budget(self, store):
        self._put_sized(store, "a", 1000, time.time())
        assert store.prune_to_size(10**9) == 0
        assert len(store) == 1

    def test_zero_budget_clears_everything(self, store):
        for index in range(3):
            self._put_sized(store, f"e{index}", 1000, time.time() - index)
        assert store.prune_to_size(0) == 3
        assert len(store) == 0

    def test_hit_refreshes_recency(self, store):
        now = time.time()
        read = self._put_sized(store, "read", 4000, now - 300)
        unread = self._put_sized(store, "unread", 4000, now - 200)
        assert store.get(read) is not None  # touch: becomes most recent
        budget = store.disk_stats().total_bytes - 1
        assert store.prune_to_size(budget) == 1
        assert read in store
        assert unread not in store

    def test_sweeps_stale_orphaned_tmp_files(self, store):
        self._put_sized(store, "keep", 100, time.time())
        stale = store.cache_dir / "orphan.tmp"
        stale.write_bytes(b"partial")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        assert store.prune_to_size(10**9) == 0  # tmp sweep is not counted
        assert not stale.exists()
        assert len(store) == 1

    def test_fresh_tmp_files_survive_concurrent_prune(self, store):
        """A young *.tmp may be another process's in-flight put()."""
        self._put_sized(store, "keep", 100, time.time())
        in_flight = store.cache_dir / "writer.tmp"
        in_flight.write_bytes(b"partial")
        store.prune_to_size(0)
        assert in_flight.exists()

    def test_stats_file_is_never_evicted(self, store):
        self._put_sized(store, "entry", 1000, time.time())
        store.flush_stats()
        assert store.prune_to_size(0) == 1
        assert (store.cache_dir / "_stats.json").exists()

    def test_negative_budget_rejected(self, store):
        with pytest.raises(ValueError):
            store.prune_to_size(-1)

    def test_missing_store_directory_is_empty(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path / "never-created")
        assert store.prune_to_size(0) == 0


class TestStoreConcurrencyEdges:
    """Races a shared store must survive: pruning vs in-flight writes,
    parallel writers/pruners, and stats-file corruption recovery."""

    def test_inflight_put_completes_across_a_concurrent_prune(self, store):
        """prune_to_size(0) between a writer's mkstemp and os.replace must
        not destroy the write: the fresh ``*.tmp`` survives and the entry
        lands intact when the writer finishes."""
        store.put(make_key(n="victim"), "evict me")
        key = make_key(n="in-flight")
        # reproduce put()'s two-step write, pausing at the vulnerable window
        store.cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=store.cache_dir, suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            pickle.dump({"payload": 42}, handle, protocol=pickle.HIGHEST_PROTOCOL)

        assert store.prune_to_size(0) == 1      # the victim entry goes ...
        assert os.path.exists(tmp_name)         # ... the in-flight write stays

        os.replace(tmp_name, store.path_for(key))  # writer completes
        assert store.get(key) == {"payload": 42}

    def test_parallel_writers_and_pruners_never_corrupt_the_store(self, tmp_path):
        """Hammer one directory from writer and pruner threads (each with
        its own ResultStore, like separate processes sharing a CI cache):
        no exceptions, and every surviving entry is readable and intact."""
        cache_dir = tmp_path / "shared"
        payload = list(range(64))
        errors: list[Exception] = []

        def writer(thread_index: int) -> None:
            own = ResultStore(cache_dir=cache_dir)
            try:
                for n in range(25):
                    key = make_key(thread=thread_index, n=n)
                    own.put(key, payload)
                    value = own.get(key)
                    # a pruner may have evicted it, but never half-written it
                    assert value is None or value == payload
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def pruner() -> None:
            own = ResultStore(cache_dir=cache_dir)
            try:
                for _ in range(40):
                    own.prune_to_size(2_000)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(index,)) for index in range(4)
        ] + [threading.Thread(target=pruner) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        survivor = ResultStore(cache_dir=cache_dir)
        for path in cache_dir.glob("*.pkl"):
            key = path.stem
            assert survivor.get(key) == payload  # every survivor loads cleanly
        assert not list(cache_dir.glob("*.tmp"))  # no leaked temp files

    def test_concurrent_prunes_remove_each_entry_once(self, store):
        for n in range(8):
            store.put(make_key(n=n), b"x" * 1000)
        removed: list[int] = []
        barrier = threading.Barrier(2)

        def prune() -> None:
            barrier.wait()
            removed.append(ResultStore(cache_dir=store.cache_dir).prune_to_size(0))

        threads = [threading.Thread(target=prune) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # both prunes succeed; between them every entry is gone exactly once
        assert sum(removed) == 8
        assert len(store) == 0

    def test_flush_stats_recovers_a_corrupt_stats_file(self, store):
        store.get(make_key(n=1))          # miss
        store.put(make_key(n=1), "x")     # store
        store.flush_stats()
        stats_path = store.cache_dir / "_stats.json"
        stats_path.write_text("{ corrupted json !!!")

        fresh = ResultStore(cache_dir=store.cache_dir)
        fresh.get(make_key(n=1))          # hit
        totals = fresh.flush_stats()
        # corrupt history is discarded, this instance's delta is preserved,
        # and the file on disk is valid JSON again
        assert totals == {"hits": 1, "misses": 0, "stores": 0}
        assert json.loads(stats_path.read_text()) == totals

    def test_flush_stats_recovers_wrong_typed_stats_file(self, store):
        stats_path = store.cache_dir
        store.put(make_key(n=1), "x")
        (stats_path / "_stats.json").write_text('{"hits": "many", "misses": {}}')
        fresh = ResultStore(cache_dir=store.cache_dir)
        fresh.get(make_key(n=1))
        assert fresh.flush_stats() == {"hits": 1, "misses": 0, "stores": 0}

    def test_get_evicting_corrupt_entry_races_reput(self, store):
        """A reader evicting a truncated entry must not break a concurrent
        writer's fresh replacement (worst case: one extra recomputation)."""
        key = make_key(n="flaky")
        store.put(key, "good")
        store.path_for(key).write_bytes(b"\x80truncated")
        assert store.get(key) is None     # evicted as corrupt
        store.put(key, "recomputed")      # writer replaces it
        assert store.get(key) == "recomputed"


class TestMergeFrom:
    def _store_pair(self, tmp_path):
        return (
            ResultStore(cache_dir=tmp_path / "target"),
            ResultStore(cache_dir=tmp_path / "source"),
        )

    def test_union_with_content_address_dedup(self, tmp_path):
        target, source = self._store_pair(tmp_path)
        shared = make_key(n="shared")
        target.put(shared, {"v": 1})
        source.put(shared, {"v": 1})
        only_source = make_key(n="source-only")
        source.put(only_source, {"v": 2})

        report = target.merge_from(source)
        assert (report.merged, report.skipped) == (1, 1)
        assert report.source_entries == 2
        assert len(target) == 2
        assert target.get(only_source) == {"v": 2}

    def test_remerge_is_idempotent(self, tmp_path):
        target, source = self._store_pair(tmp_path)
        for index in range(3):
            source.put(make_key(n=index), index)
        first = target.merge_from(source)
        assert (first.merged, first.skipped) == (3, 0)
        second = target.merge_from(source)
        assert (second.merged, second.skipped) == (0, 3)
        assert len(target) == 3

    def test_stats_aggregate_once_across_remerges(self, tmp_path):
        target, source = self._store_pair(tmp_path)
        key = make_key(n="s")
        source.get(key)          # miss
        source.put(key, "x")     # store
        source.get(key)          # hit
        source.flush_stats()
        target.put(make_key(n="t"), "y")
        target.flush_stats()

        report = target.merge_from(source)
        assert report.stats_merged
        merged_once = target.lifetime_stats()
        assert merged_once == {"hits": 1, "misses": 1, "stores": 2}
        # idempotent: the source id replaces, never adds, its record
        target.merge_from(source)
        assert target.lifetime_stats() == merged_once
        # and the aggregate survives reopening the target
        assert ResultStore(cache_dir=target.cache_dir).lifetime_stats() == merged_once

    def test_transitive_merge_flattens_sources(self, tmp_path):
        """A -> B -> C carries A's counters into C exactly once."""
        a = ResultStore(cache_dir=tmp_path / "a")
        b = ResultStore(cache_dir=tmp_path / "b")
        c = ResultStore(cache_dir=tmp_path / "c")
        a.get(make_key(n="a"))   # miss
        a.flush_stats()
        b.merge_from(a)
        c.merge_from(b)
        assert c.lifetime_stats()["misses"] == 1
        c.merge_from(b)          # re-merge of the aggregate: still once
        assert c.lifetime_stats()["misses"] == 1

    def test_source_without_stats_merges_entries_only(self, tmp_path):
        target, source = self._store_pair(tmp_path)
        source.put(make_key(n=1), "x")
        # put() alone never flushes; wipe the side file to simulate a source
        # that recorded nothing
        stats_path = source.cache_dir / "_stats.json"
        if stats_path.exists():
            stats_path.unlink()
        report = target.merge_from(source)
        assert report.merged == 1
        assert not report.stats_merged

    def test_merging_into_itself_is_rejected(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path / "self")
        with pytest.raises(ValueError, match="itself"):
            store.merge_from(ResultStore(cache_dir=tmp_path / "self"))

    def test_merge_from_missing_source_directory_is_a_noop(self, tmp_path):
        target = ResultStore(cache_dir=tmp_path / "target")
        report = target.merge_from(ResultStore(cache_dir=tmp_path / "never"))
        assert (report.merged, report.skipped) == (0, 0)
        assert not report.stats_merged


class TestArchives:
    def test_export_import_round_trip(self, tmp_path):
        source = ResultStore(cache_dir=tmp_path / "source")
        payloads = {make_key(n=index): [index] * 3 for index in range(3)}
        for key, value in payloads.items():
            source.put(key, value)
        source.get(next(iter(payloads)))  # one hit for the stats trip
        archive = source.export_archive(tmp_path / "store.tar.gz")
        assert archive.is_file()

        target = ResultStore(cache_dir=tmp_path / "target")
        report = target.import_archive(archive)
        assert (report.merged, report.skipped) == (3, 0)
        for key, value in payloads.items():
            assert target.get(key) == value
        # the source's flushed accounting travelled with the archive
        lifetime = target.lifetime_stats()
        assert lifetime["stores"] >= 3
        assert lifetime["hits"] >= 1

    def test_reimport_is_idempotent(self, tmp_path):
        source = ResultStore(cache_dir=tmp_path / "source")
        source.put(make_key(n=1), "x")
        archive = source.export_archive(tmp_path / "store.tar.gz")
        target = ResultStore(cache_dir=tmp_path / "target")
        target.import_archive(archive)
        lifetime = target.lifetime_stats()
        report = target.import_archive(archive)
        assert (report.merged, report.skipped) == (0, 1)
        assert target.lifetime_stats() == lifetime

    def test_import_rejects_garbage_files(self, tmp_path):
        junk = tmp_path / "junk.tar.gz"
        junk.write_bytes(b"definitely not a tarball")
        store = ResultStore(cache_dir=tmp_path / "store")
        with pytest.raises(ValueError, match="not a result-store archive"):
            store.import_archive(junk)

    def test_import_rejects_archives_without_manifest(self, tmp_path):
        import io
        import tarfile

        path = tmp_path / "no-manifest.tar.gz"
        with tarfile.open(path, "w:gz") as tar:
            info = tarfile.TarInfo(name="a" * 64 + ".pkl")
            data = pickle.dumps("x")
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))
        store = ResultStore(cache_dir=tmp_path / "store")
        with pytest.raises(ValueError, match="manifest"):
            store.import_archive(path)

    def test_import_rejects_schema_mismatch(self, tmp_path):
        import io
        import tarfile

        path = tmp_path / "future.tar.gz"
        manifest = json.dumps(
            {"format": "repro-result-store", "schema": 999, "n_entries": 0}
        ).encode()
        with tarfile.open(path, "w:gz") as tar:
            info = tarfile.TarInfo(name="manifest.json")
            info.size = len(manifest)
            tar.addfile(info, io.BytesIO(manifest))
        store = ResultStore(cache_dir=tmp_path / "store")
        with pytest.raises(ValueError, match="schema"):
            store.import_archive(path)

    def test_import_ignores_traversal_and_foreign_members(self, tmp_path):
        """Only flat ``<sha256>.pkl`` members are staged: a crafted archive
        cannot plant files outside the store or under other names."""
        import io
        import tarfile
        from repro.core.store import STORE_SCHEMA_VERSION

        good_key = make_key(n="good")
        path = tmp_path / "crafted.tar.gz"
        members = {
            "manifest.json": json.dumps(
                {"format": "repro-result-store",
                 "schema": STORE_SCHEMA_VERSION, "n_entries": 1}
            ).encode(),
            f"{good_key}.pkl": pickle.dumps("good"),
            "../escape.pkl": pickle.dumps("evil"),
            "not-a-key.pkl": pickle.dumps("evil"),
            "nested/" + "b" * 64 + ".pkl": pickle.dumps("evil"),
        }
        with tarfile.open(path, "w:gz") as tar:
            for name, data in members.items():
                info = tarfile.TarInfo(name=name)
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))

        store = ResultStore(cache_dir=tmp_path / "store")
        report = store.import_archive(path)
        assert report.merged == 1
        assert store.get(good_key) == "good"
        assert len(store) == 1
        assert not (tmp_path / "escape.pkl").exists()


class TestSearchStats:
    def test_record_accumulates_and_flush_persists(self, store):
        store.record_search_stats(from_cache=3, trained=2)
        store.record_search_stats(trained=1)
        assert store.lifetime_search_stats() == {"from_cache": 3, "trained": 3}
        store.flush_stats()
        # A fresh instance reads the counters back from _stats.json.
        fresh = ResultStore(cache_dir=store.cache_dir)
        assert fresh.lifetime_search_stats() == {"from_cache": 3, "trained": 3}

    def test_reflush_adds_nothing(self, store):
        store.record_search_stats(from_cache=2)
        store.flush_stats()
        store.flush_stats()
        assert store.lifetime_search_stats() == {"from_cache": 2, "trained": 0}

    def test_negative_counters_rejected(self, store):
        with pytest.raises(ValueError):
            store.record_search_stats(from_cache=-1)
        with pytest.raises(ValueError):
            store.record_search_stats(trained=-1)

    def test_zero_counters_leave_stats_file_without_search_section(self, store):
        store.put(make_key(n=1), "x")
        store.flush_stats()
        raw = json.loads((store.cache_dir / "_stats.json").read_text())
        assert "search" not in raw

    def test_lifetime_search_stats_tolerate_corrupt_section(self, store):
        store.record_search_stats(from_cache=1, trained=1)
        store.flush_stats()
        raw = json.loads((store.cache_dir / "_stats.json").read_text())
        raw["search"] = {"from_cache": "garbage", "trained": None}
        (store.cache_dir / "_stats.json").write_text(json.dumps(raw))
        assert ResultStore(cache_dir=store.cache_dir).lifetime_search_stats() == {
            "from_cache": 0,
            "trained": 0,
        }

    def test_hit_miss_flush_preserves_search_section(self, store):
        store.record_search_stats(trained=4)
        store.flush_stats()
        key = make_key(n=1)
        store.get(key)          # miss
        store.put(key, "x")     # store
        store.flush_stats()     # rebuilds the payload; search must survive
        fresh = ResultStore(cache_dir=store.cache_dir)
        assert fresh.lifetime_search_stats() == {"from_cache": 0, "trained": 4}
        assert fresh.lifetime_stats()["misses"] == 1

    def test_merge_does_not_absorb_source_search_counters(self, store, tmp_path):
        source = ResultStore(cache_dir=tmp_path / "source")
        source.put(make_key(n="entry"), "payload")
        source.record_search_stats(from_cache=5, trained=7)
        source.flush_stats()
        store.record_search_stats(trained=1)
        store.merge_from(source)
        store.flush_stats()
        # Hit/miss counters absorb the source; search counters stay local,
        # because "trained here" describes this store's own study history.
        assert store.lifetime_search_stats() == {"from_cache": 0, "trained": 1}
        assert ResultStore(cache_dir=store.cache_dir).lifetime_search_stats() == {
            "from_cache": 0,
            "trained": 1,
        }
