"""Unit tests for bespoke ADC front-end generation from trained trees."""

import numpy as np
import pytest

from repro.core.bespoke_adc import build_bespoke_adcs, build_bespoke_frontend
from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.cart import CARTTrainer


class TestBuildBespokeADCs:
    def test_one_adc_per_used_feature(self, small_tree, technology):
        adcs = build_bespoke_adcs(small_tree, technology)
        assert sorted(adcs) == small_tree.used_features()

    def test_retained_levels_match_tree_requirements(self, small_tree, technology):
        adcs = build_bespoke_adcs(small_tree, technology)
        for feature, levels in small_tree.required_levels().items():
            assert adcs[feature].retained_levels == levels

    def test_accepts_unary_tree_too(self, small_tree, technology):
        from_tree = build_bespoke_adcs(small_tree, technology)
        from_unary = build_bespoke_adcs(UnaryDecisionTree(small_tree), technology)
        assert {f: adc.retained_levels for f, adc in from_tree.items()} == {
            f: adc.retained_levels for f, adc in from_unary.items()
        }

    def test_feature_names_used_for_labels(self, small_tree, technology):
        names = [f"sensor_{i}" for i in range(small_tree.n_features)]
        adcs = build_bespoke_adcs(small_tree, technology, feature_names=names)
        for feature, adc in adcs.items():
            assert adc.feature_name == f"sensor_{feature}"

    def test_resolution_follows_tree(self, technology):
        X_levels = np.array([[0, 3], [1, 0], [3, 1], [2, 2]])
        y = np.array([0, 0, 1, 1])
        tree = CARTTrainer(max_depth=2, resolution_bits=2).fit(X_levels, y)
        adcs = build_bespoke_adcs(tree, technology)
        for adc in adcs.values():
            assert adc.resolution_bits == 2


class TestBuildBespokeFrontend:
    def test_frontend_totals(self, small_tree, technology):
        frontend = build_bespoke_frontend(small_tree, technology)
        adcs = build_bespoke_adcs(small_tree, technology)
        assert frontend.n_channels == len(adcs)
        assert frontend.n_comparators == sum(
            adc.n_unary_digits for adc in adcs.values()
        )
        assert frontend.area_mm2 == pytest.approx(
            sum(adc.area_mm2 for adc in adcs.values())
        )

    def test_frontend_digits_drive_unary_tree_correctly(self, small_tree, technology):
        """ADC front end + unary logic must reproduce the software tree."""
        unary = UnaryDecisionTree(small_tree)
        frontend = build_bespoke_frontend(unary, technology)
        rng = np.random.default_rng(13)
        X = rng.random((40, small_tree.n_features))
        expected = small_tree.predict(X)
        for row, expected_label in zip(X, expected):
            digits = frontend.convert(row)
            assert unary.predict_from_digits(digits) == expected_label

    def test_single_leaf_tree_rejected(self, technology):
        X_levels = np.array([[1, 2], [3, 4]])
        y = np.array([0, 0])
        tree = CARTTrainer(max_depth=2).fit(X_levels, y, n_classes=2)
        with pytest.raises(ValueError, match="no input feature"):
            build_bespoke_frontend(tree, technology)
