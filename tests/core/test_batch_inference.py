"""Scalar-vs-batch equivalence of the vectorized inference engine.

The batch paths (matrix prediction in :class:`UnaryDecisionTree`, the
``(n_trials, n_comparators)`` offset evaluation in ``core.variation`` and the
batched netlist simulator behind the baselines) must be **bit-identical** to
the scalar per-row/per-trial semantics they replaced.  These tests pin that
property across every registered benchmark and several seeds, and keep a
faithful reimplementation of the pre-vectorization Monte-Carlo loop as the
regression reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.unary_tree import UnaryDecisionTree
from repro.core.variation import (
    ComparatorOffsetModel,
    _predict_with_offsets,
    _predict_with_offsets_scalar,
    simulate_offset_variation,
)
from repro.datasets.registry import dataset_names, load_dataset
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

SEEDS = (0, 1)


def _fitted_unary(dataset_name: str, seed: int, max_rows: int = 300):
    """Small tree + raw/quantized test split of one registered benchmark."""
    dataset = load_dataset(dataset_name, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    tree = CARTTrainer(max_depth=3, seed=seed).fit(
        quantize_dataset(X_train[:max_rows]), y_train[:max_rows], dataset.n_classes
    )
    return UnaryDecisionTree(tree), X_test[:max_rows], y_test[:max_rows]


class TestUnaryTreeBatchEquivalence:
    @pytest.mark.parametrize("dataset_name", dataset_names())
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_predict_matches_scalar_rows(self, dataset_name, seed):
        unary, X_test, _ = _fitted_unary(dataset_name, seed)
        levels = quantize_dataset(X_test)
        batch = unary.predict_levels(levels)
        scalar = np.array(
            [unary.predict_one_level(row) for row in levels], dtype=np.int64
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_digit_matrix_columns_follow_comparator_order(self, small_tree):
        unary = UnaryDecisionTree(small_tree)
        levels = np.array([[k % 16 for k in range(small_tree.n_features)]] * 3)
        digits = unary.digit_matrix_from_levels(levels)
        assert digits.shape == (3, unary.n_unary_digits)
        for column, (feature, level) in enumerate(unary.comparators):
            np.testing.assert_array_equal(
                digits[:, column], levels[:, feature] >= level
            )

    def test_digit_matrix_prediction_matches_scalar_on_arbitrary_digits(
        self, small_tree
    ):
        """Batch and scalar agree on *any* digit row -- winner and raise alike."""
        unary = UnaryDecisionTree(small_tree)
        names = unary.digit_variables()
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 2, size=(256, unary.n_unary_digits)).astype(bool)
        for row in rows:
            assignment = dict(zip(names, (bool(bit) for bit in row)))
            try:
                scalar = unary.predict_from_assignment(assignment)
            except ValueError:
                with pytest.raises(ValueError, match="no label function fired"):
                    unary.predict_digit_matrix(row[np.newaxis, :])
                continue
            assert unary.predict_digit_matrix(row[np.newaxis, :])[0] == scalar

    def test_empty_batch_predicts_empty(self, small_tree):
        unary = UnaryDecisionTree(small_tree)
        levels = np.empty((0, small_tree.n_features), dtype=np.int64)
        assert unary.predict_levels(levels).shape == (0,)


class TestOffsetMatrixEquivalence:
    @pytest.mark.parametrize("dataset_name", ("seeds", "vertebral_3c", "balance_scale"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_offset_matrix_matches_scalar_loop(self, dataset_name, seed):
        unary, X_test, _ = _fitted_unary(dataset_name, seed)
        technology = default_technology()
        rng = np.random.default_rng(seed)
        model = ComparatorOffsetModel(sigma_v=0.03)
        comparators = unary.comparators
        offsets_matrix = model.sample_matrix(rng, 5, len(comparators))
        batch = _predict_with_offsets(unary, X_test, offsets_matrix, technology.vdd)
        for trial, offsets_row in enumerate(offsets_matrix):
            scalar = _predict_with_offsets_scalar(
                unary, X_test, dict(zip(comparators, offsets_row)), technology.vdd
            )
            np.testing.assert_array_equal(batch[trial], scalar)

    def test_sample_matrix_preserves_the_sequential_draw_stream(self):
        model = ComparatorOffsetModel(sigma_v=0.02)
        matrix = model.sample_matrix(np.random.default_rng(11), 7, 9)
        rng = np.random.default_rng(11)
        sequential = np.stack([model.sample(rng, 9) for _ in range(7)])
        np.testing.assert_array_equal(matrix, sequential)

    def test_offset_matrix_column_count_checked(self, small_tree):
        unary = UnaryDecisionTree(small_tree)
        with pytest.raises(ValueError, match="columns"):
            _predict_with_offsets(
                unary,
                np.zeros((2, small_tree.n_features)),
                np.zeros((3, unary.n_unary_digits + 1)),
                1.0,
            )


class TestSimulateOffsetVariationRegression:
    """``simulate_offset_variation(seed=k)`` is bit-identical to the old loop."""

    def _reference_accuracies(self, unary, X, y, sigma_v, n_trials, seed, vdd):
        """The pre-vectorization implementation, kept verbatim as the oracle."""
        rng = np.random.default_rng(seed)
        model = ComparatorOffsetModel(sigma_v=sigma_v)
        comparators = [
            (feature, level)
            for feature, levels in unary.required_digits.items()
            for level in levels
        ]
        accuracies = []
        for _ in range(n_trials):
            samples = model.sample(rng, len(comparators))
            offsets = dict(zip(comparators, samples))
            predictions = _predict_with_offsets_scalar(unary, X, offsets, vdd)
            accuracies.append(accuracy_score(y, predictions))
        return tuple(accuracies)

    @pytest.mark.parametrize("seed", (0, 7))
    def test_bit_identical_to_pre_refactor_loop(self, small_tree, small_split, seed):
        _, X_test_levels, _, y_test = small_split
        X_raw = X_test_levels / 16.0
        unary = UnaryDecisionTree(small_tree)
        technology = default_technology()
        analysis = simulate_offset_variation(
            unary, X_raw, y_test, sigma_v=0.03, n_trials=8,
            technology=technology, seed=seed,
        )
        reference = self._reference_accuracies(
            unary, X_raw, y_test, 0.03, 8, seed, technology.vdd
        )
        assert analysis.accuracies == reference

    def test_parallel_jobs_bit_identical_to_serial(self, small_tree, small_split):
        _, X_test_levels, _, y_test = small_split
        X_raw = X_test_levels / 16.0
        serial = simulate_offset_variation(
            small_tree, X_raw, y_test, sigma_v=0.02, n_trials=6, seed=3
        )
        parallel = simulate_offset_variation(
            small_tree, X_raw, y_test, sigma_v=0.02, n_trials=6, seed=3, jobs=2
        )
        assert serial.accuracies == parallel.accuracies
