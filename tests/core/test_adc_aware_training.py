"""Unit tests for the ADC-aware trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.adc_aware_training import ADCAwareTrainer, partition_by_cost
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import accuracy_score
from repro.mltrees.split_search import SplitCandidate


def _candidate(feature, level, gini=0.1):
    return SplitCandidate(feature=feature, threshold_level=level, gini=gini,
                          n_left=5, n_right=5)


class TestPartitionByCost:
    def test_three_way_partition(self):
        candidates = [
            _candidate(0, 3),   # already selected -> zero cost
            _candidate(0, 7),   # feature known, new level -> medium cost
            _candidate(2, 1),   # new feature -> high cost
        ]
        sets = partition_by_cost(candidates, {(0, 3)}, {0})
        assert [c.threshold_level for c in sets.zero_cost] == [3]
        assert [c.threshold_level for c in sets.medium_cost] == [7]
        assert [c.feature for c in sets.high_cost] == [2]

    def test_empty_history_makes_everything_high_cost(self):
        candidates = [_candidate(0, 3), _candidate(1, 5)]
        sets = partition_by_cost(candidates, set(), set())
        assert not sets.zero_cost
        assert not sets.medium_cost
        assert len(sets.high_cost) == 2


class TestADCAwareTrainerBehaviour:
    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            ADCAwareTrainer(max_depth=0)
        with pytest.raises(ValueError):
            ADCAwareTrainer(gini_threshold=-0.1)
        with pytest.raises(ValueError):
            ADCAwareTrainer(resolution_bits=0)
        with pytest.raises(ValueError):
            ADCAwareTrainer(min_samples_leaf=0)

    def test_input_validation(self):
        trainer = ADCAwareTrainer(max_depth=2)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((3, 2, 1), dtype=int), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((3, 2), dtype=int), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            trainer.fit(np.full((3, 2), 99, dtype=int), np.zeros(3, dtype=int))

    def test_learns_separable_data(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        tree = ADCAwareTrainer(max_depth=2, seed=0).fit(X_levels, y)
        np.testing.assert_array_equal(tree.predict_levels(X_levels), y)

    def test_max_depth_respected(self, small_split):
        X_train, _, y_train, _ = small_split
        for depth in (1, 2, 3):
            tree = ADCAwareTrainer(max_depth=depth, seed=0).fit(X_train, y_train, 3)
            assert tree.depth <= depth

    def test_reproducible(self, small_split):
        X_train, _, y_train, _ = small_split
        first = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=5).fit(
            X_train, y_train, 3
        )
        second = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=5).fit(
            X_train, y_train, 3
        )
        assert first.comparisons() == second.comparisons()

    def test_tau_zero_matches_cart_accuracy(self, small_split):
        """tau = 0 must not cost accuracy relative to conventional training."""
        X_train, X_test, y_train, y_test = small_split
        cart = CARTTrainer(max_depth=4, seed=0).fit(X_train, y_train, 3)
        aware = ADCAwareTrainer(max_depth=4, gini_threshold=0.0, seed=0).fit(
            X_train, y_train, 3
        )
        cart_accuracy = accuracy_score(y_test, cart.predict_levels(X_test))
        aware_accuracy = accuracy_score(y_test, aware.predict_levels(X_test))
        assert aware_accuracy >= cart_accuracy - 0.03

    def test_reduces_unique_comparisons_vs_cart(self, small_split):
        """The whole point of Algorithm 1: fewer distinct (feature, level) pairs."""
        X_train, _, y_train, _ = small_split
        cart = CARTTrainer(max_depth=5, seed=0).fit(X_train, y_train, 3)
        aware = ADCAwareTrainer(max_depth=5, gini_threshold=0.02, seed=0).fit(
            X_train, y_train, 3
        )
        if cart.n_decision_nodes and aware.n_decision_nodes:
            cart_ratio = len(cart.unique_comparisons()) / cart.n_decision_nodes
            aware_ratio = len(aware.unique_comparisons()) / aware.n_decision_nodes
            assert aware_ratio <= cart_ratio + 1e-9

    def test_tau_sweep_beats_plain_cart_on_adc_comparators(self, small_split):
        """Somewhere on the tau grid, ADC-aware training needs no more distinct
        (feature, level) pairs than conventional CART at the same depth -- this
        is the hardware lever the exploration of Section IV relies on."""
        X_train, _, y_train, _ = small_split
        cart = CARTTrainer(max_depth=5, seed=0).fit(X_train, y_train, 3)
        counts = []
        for tau in (0.0, 0.01, 0.03):
            tree = ADCAwareTrainer(max_depth=5, gini_threshold=tau, seed=0).fit(
                X_train, y_train, 3
            )
            counts.append(len(tree.unique_comparisons()))
        assert min(counts) <= len(cart.unique_comparisons())

    def test_prefers_reusing_existing_pairs(self):
        """With equally good candidate splits, an already-selected pair is reused."""
        # Two features that are exact copies: once feature 0 / level 8 is
        # selected at the root, the children should keep reusing pairs on
        # feature 0 instead of switching to feature 1.
        rng = np.random.default_rng(0)
        base = rng.integers(0, 16, size=400)
        X_levels = np.stack([base, base], axis=1)
        y = (base >= 8).astype(int) + (base >= 12).astype(int)
        tree = ADCAwareTrainer(max_depth=3, gini_threshold=0.0, seed=1).fit(
            X_levels, y, n_classes=3
        )
        assert tree.used_features() == [0] or tree.used_features() == [1]

    def test_prefers_low_levels_for_new_comparators(self):
        """Among equally scoring new pairs, the smaller threshold is selected."""
        # Feature 0: classes separated at level 4; feature 1: identical
        # separation but at level 12.  Both give the same Gini, so Algorithm 1
        # must pick the cheaper low-level comparator.
        values = np.concatenate([np.arange(0, 4), np.arange(4, 8)])
        X_levels = np.stack([values, values + 8], axis=1)
        y = np.array([0] * 4 + [1] * 4)
        tree = ADCAwareTrainer(max_depth=1, gini_threshold=0.0, seed=0).fit(
            X_levels, y, n_classes=2
        )
        root = tree.root
        assert root.feature == 0
        assert root.threshold_level == 4
