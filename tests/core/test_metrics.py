"""Unit tests for hardware reports and reduction arithmetic."""

import pytest

from repro.core.metrics import (
    ClassifierDesign,
    HardwareReport,
    compare_designs,
    reduction_factor,
    reduction_percent,
)


def _report(name="x", adc_area=10.0, adc_power=500.0, dig_area=5.0, dig_power=100.0):
    return HardwareReport(
        name=name,
        adc_area_mm2=adc_area,
        adc_power_uw=adc_power,
        digital_area_mm2=dig_area,
        digital_power_uw=dig_power,
        n_inputs=3,
        n_tree_comparators=7,
        n_adc_comparators=12,
    )


class TestHardwareReport:
    def test_totals(self):
        report = _report()
        assert report.total_area_mm2 == pytest.approx(15.0)
        assert report.total_power_uw == pytest.approx(600.0)
        assert report.total_power_mw == pytest.approx(0.6)
        assert report.adc_power_mw == pytest.approx(0.5)
        assert report.digital_power_mw == pytest.approx(0.1)

    def test_fractions(self):
        report = _report()
        assert report.adc_area_fraction == pytest.approx(10.0 / 15.0)
        assert report.adc_power_fraction == pytest.approx(500.0 / 600.0)

    def test_fractions_of_zero_cost_design(self):
        report = _report(adc_area=0.0, adc_power=0.0, dig_area=0.0, dig_power=0.0)
        assert report.adc_area_fraction == 0.0
        assert report.adc_power_fraction == 0.0


class TestReductions:
    def test_reduction_factor(self):
        assert reduction_factor(10.0, 2.0) == pytest.approx(5.0)
        assert reduction_factor(10.0, 0.0) == float("inf")

    def test_reduction_percent(self):
        assert reduction_percent(10.0, 2.0) == pytest.approx(80.0)
        assert reduction_percent(0.0, 2.0) == 0.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            reduction_factor(-1.0, 2.0)
        with pytest.raises(ValueError):
            reduction_percent(1.0, -2.0)

    def test_compare_designs(self):
        baseline = _report("baseline", adc_area=20.0, adc_power=1000.0,
                           dig_area=10.0, dig_power=500.0)
        proposed = _report("proposed", adc_area=2.0, adc_power=100.0,
                           dig_area=1.0, dig_power=50.0)
        report = compare_designs(baseline, proposed)
        assert report.area_factor == pytest.approx(10.0)
        assert report.power_factor == pytest.approx(10.0)
        assert report.area_percent == pytest.approx(90.0)
        assert report.power_percent == pytest.approx(90.0)
        assert report.reference == "baseline"
        assert report.proposed == "proposed"


class TestClassifierDesign:
    def test_fields(self):
        design = ClassifierDesign(
            name="demo", dataset="seeds", accuracy=0.9, hardware=_report(),
            depth=4, tau=0.01,
        )
        assert design.accuracy == pytest.approx(0.9)
        assert design.hardware.total_area_mm2 == pytest.approx(15.0)
        assert design.extra == {}
