"""Tests for the deterministic work-unit planner (``repro.core.sharding``).

The load-bearing properties of sharded execution live here: every shard
split is a *disjoint cover* of the full plan, membership is stable under
dataset reordering and across processes (no ``PYTHONHASHSEED`` leakage),
and unit identities stay put when the code version changes even though the
store keys (correctly) do not.
"""

import os
import subprocess
import sys

import pytest

from repro.core.exploration import grid_points
from repro.core.sharding import (
    MissingResultsError,
    ShardSpec,
    normalize_sigmas,
    plan_suite_units,
    suite_result_key,
    suite_work_unit,
    variation_work_unit,
)
from repro.core.store import ResultStore
from repro.core.variation import variation_result_key

#: Tiny grid keeping planner tests instant.
SMALL_GRID = dict(depths=(2, 3), taus=(0.0, 0.01))


class TestShardSpec:
    def test_parse_round_trip(self):
        spec = ShardSpec.parse("2/3")
        assert (spec.index, spec.count) == (2, 3)
        assert str(spec) == "2/3"
        assert ShardSpec.parse(" 1/1 ") == ShardSpec(1, 1)

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/", "/3", "1/2/3"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError, match="K/N"):
            ShardSpec.parse(text)

    @pytest.mark.parametrize("index,count", [(0, 3), (4, 3), (-1, 2), (1, 0)])
    def test_out_of_range_rejected(self, index, count):
        with pytest.raises(ValueError):
            ShardSpec(index=index, count=count)


class TestGridPoints:
    def test_depth_major_order(self):
        assert grid_points((2, 3), (0.0, 0.01)) == (
            (2, 0.0), (2, 0.01), (3, 0.0), (3, 0.01),
        )


class TestWorkUnits:
    def test_suite_unit_addresses_the_suite_cache_entry(self):
        unit = suite_work_unit("vertebral_2c", 0, False, (2, 3), (0.0,))
        assert unit.store_key == suite_result_key("vertebral_2c", 0, False, (2, 3), (0.0,))
        assert unit.kind == "suite"
        assert unit.label == "suite:vertebral_2c[table1]"

    def test_variation_unit_addresses_the_variation_cache_entry(self):
        unit = variation_work_unit("seeds", 0, 0.02, 5, 3, 0.01)
        assert unit.store_key == variation_result_key("seeds", 0, 0.02, 5, 3, 0.01)
        assert unit.kind == "variation"

    def test_abbreviation_aliases_canonical_name(self):
        assert suite_work_unit("V2", 0, False, (2,), (0.0,)) == suite_work_unit(
            "vertebral_2c", 0, False, (2,), (0.0,)
        )

    def test_shard_membership_survives_code_version_changes(self, monkeypatch):
        import repro

        unit = suite_work_unit("seeds", 0, False, (2,), (0.0,))
        monkeypatch.setattr(repro, "__version__", "99.99.99")
        bumped = suite_work_unit("seeds", 0, False, (2,), (0.0,))
        assert bumped.store_key != unit.store_key  # new code, new cache entry
        for count in (1, 2, 3, 7):
            assert bumped.shard_index(count) == unit.shard_index(count)

    def test_shard_index_rejects_non_positive_counts(self):
        unit = suite_work_unit("seeds", 0, False, (2,), (0.0,))
        with pytest.raises(ValueError):
            unit.shard_index(0)


class TestPlanSuiteUnits:
    def test_default_plan_covers_all_benchmarks_and_variants(self):
        plan = plan_suite_units(**SMALL_GRID)
        assert len(plan.datasets) == 8
        assert len(plan.units) == 8 * 2  # table1 + table2 variant per dataset
        assert all(unit.kind == "suite" for unit in plan.units)

    def test_sigma_adds_one_variation_unit_per_grid_point(self):
        plan = plan_suite_units(
            datasets=("seeds",), sigma_v=0.02, n_trials=5, **SMALL_GRID
        )
        kinds = [unit.kind for unit in plan.units]
        assert kinds.count("suite") == 2
        assert kinds.count("variation") == len(grid_points(**SMALL_GRID))
        grid = [
            (unit.params["depth"], unit.params["tau"])
            for unit in plan.units
            if unit.kind == "variation"
        ]
        assert tuple(grid) == grid_points(**SMALL_GRID)

    def test_duplicates_and_abbreviations_collapse(self):
        plan = plan_suite_units(
            datasets=("V2", "vertebral_2c", "seeds"), **SMALL_GRID
        )
        assert plan.datasets == ("vertebral_2c", "seeds")

    def test_fast_flag_selects_small_benchmarks(self):
        plan = plan_suite_units(fast=True, **SMALL_GRID)
        assert set(plan.datasets) == {
            "balance_scale", "vertebral_3c", "vertebral_2c", "seeds"
        }

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_shards_are_a_disjoint_cover(self, n_shards):
        plan = plan_suite_units(sigma_v=0.02, n_trials=5, **SMALL_GRID)
        seen: list = []
        for index in range(1, n_shards + 1):
            seen.extend(plan.shard(ShardSpec(index, n_shards)))
        assert len(seen) == len(plan.units)  # no unit claimed twice
        assert set(seen) == set(plan.units)  # no unit dropped

    def test_membership_invariant_under_dataset_reordering(self):
        datasets = ("whitewine", "seeds", "vertebral_2c", "balance_scale")
        forward = plan_suite_units(
            datasets=datasets, sigma_v=0.02, n_trials=5, **SMALL_GRID
        )
        backward = plan_suite_units(
            datasets=tuple(reversed(datasets)), sigma_v=0.02, n_trials=5,
            **SMALL_GRID,
        )
        assignment = {unit: unit.shard_index(3) for unit in forward.units}
        assert {unit: unit.shard_index(3) for unit in backward.units} == assignment

    def test_missing_diffs_plan_against_store_without_misses(self, tmp_path):
        plan = plan_suite_units(datasets=("seeds",), **SMALL_GRID)
        store = ResultStore(cache_dir=tmp_path / "cache")
        assert plan.missing(store) == plan.units
        store.put(plan.units[0].store_key, "stub")
        assert plan.missing(store) == plan.units[1:]
        assert store.stats.misses == 0  # pure membership checks


class TestNormalizeSigmas:
    def test_sorts_and_dedupes(self):
        assert normalize_sigmas((0.04, 0.01, 0.01, 0.02)) == (0.01, 0.02, 0.04)

    def test_scalar_and_none_forms(self):
        assert normalize_sigmas(0.02) == (0.02,)
        assert normalize_sigmas(None) == ()
        assert normalize_sigmas(None, sigma_v=0.02) == (0.02,)

    def test_both_spellings_rejected(self):
        with pytest.raises(ValueError, match="both"):
            normalize_sigmas((0.01,), sigma_v=0.02)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            normalize_sigmas((0.01, -0.02))


class TestMultiSigmaPlanning:
    def test_one_variation_unit_per_dataset_sigma_grid_point(self):
        plan = plan_suite_units(
            datasets=("seeds",), sigmas=(0.01, 0.02), n_trials=5, **SMALL_GRID
        )
        kinds = [unit.kind for unit in plan.units]
        assert kinds.count("suite") == 2
        assert kinds.count("variation") == 2 * len(grid_points(**SMALL_GRID))
        sigmas = [
            unit.params["sigma_v"]
            for unit in plan.units
            if unit.kind == "variation"
        ]
        # sigma-ascending outer loop, grid-major inner loop
        assert sigmas == [0.01] * 4 + [0.02] * 4

    def test_single_sigma_tuple_equals_legacy_scalar_spelling(self):
        modern = plan_suite_units(
            datasets=("seeds",), sigmas=(0.02,), n_trials=5, **SMALL_GRID
        )
        legacy = plan_suite_units(
            datasets=("seeds",), sigma_v=0.02, n_trials=5, **SMALL_GRID
        )
        assert modern.units == legacy.units
        assert modern.sigmas == legacy.sigmas == (0.02,)
        assert modern.sigma_v == 0.02  # compat property

    def test_both_sigma_spellings_rejected(self):
        with pytest.raises(ValueError, match="both"):
            plan_suite_units(
                datasets=("seeds",), sigma_v=0.02, sigmas=(0.01,), **SMALL_GRID
            )

    def test_identities_invariant_to_sigma_ordering_and_duplicates(self):
        canonical = plan_suite_units(
            datasets=("seeds",), sigmas=(0.01, 0.04), n_trials=5, **SMALL_GRID
        )
        shuffled = plan_suite_units(
            datasets=("seeds",), sigmas=(0.04, 0.01, 0.04), n_trials=5,
            **SMALL_GRID,
        )
        assert shuffled.units == canonical.units
        assert shuffled.sigmas == (0.01, 0.04)
        assert shuffled.sigma_v is None  # scalar view undefined for multi-sigma

    @pytest.mark.parametrize("n_shards", [1, 3, 5])
    def test_multi_sigma_shards_are_a_disjoint_cover(self, n_shards):
        plan = plan_suite_units(
            datasets=("seeds", "vertebral_2c"), sigmas=(0.01, 0.02, 0.04),
            n_trials=5, **SMALL_GRID,
        )
        seen: list = []
        for index in range(1, n_shards + 1):
            seen.extend(plan.shard(ShardSpec(index, n_shards)))
        assert len(seen) == len(plan.units)
        assert set(seen) == set(plan.units)

    def test_per_sigma_units_alias_single_sigma_plans(self):
        """A multi-sigma plan is exactly the union of per-sigma plans: unit
        identities (and hence shard membership and store keys) do not depend
        on which other sigmas ride along in the sweep."""
        multi = plan_suite_units(
            datasets=("seeds",), sigmas=(0.01, 0.02), n_trials=5, **SMALL_GRID
        )
        union: set = set()
        for sigma in (0.01, 0.02):
            union.update(
                plan_suite_units(
                    datasets=("seeds",), sigmas=(sigma,), n_trials=5,
                    **SMALL_GRID,
                ).units
            )
        assert set(multi.units) == union


class TestCrossProcessStability:
    SCRIPT = (
        "from repro.core.sharding import plan_suite_units\n"
        "plan = plan_suite_units(sigma_v=0.02, n_trials=5,"
        " depths=(2, 3), taus=(0.0, 0.01))\n"
        "for unit in plan.units:\n"
        "    print(unit.label, unit.shard_index(5))\n"
    )

    @staticmethod
    def _env(hash_seed: str) -> dict:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in ("src", env.get("PYTHONPATH")) if part
        )
        return env

    def test_assignment_identical_across_hash_seeds(self):
        """Shard membership must not leak ``PYTHONHASHSEED`` (sha256 only)."""
        outputs = []
        for hash_seed in ("0", "424242"):
            completed = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True, text=True, check=True,
                env=self._env(hash_seed),
            )
            outputs.append(completed.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].count("\n") == 8 * 2 + 8 * 4

    def test_in_process_assignment_matches_subprocess(self):
        plan = plan_suite_units(sigma_v=0.02, n_trials=5, **SMALL_GRID)
        expected = "".join(
            f"{unit.label} {unit.shard_index(5)}\n" for unit in plan.units
        )
        completed = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True, text=True, check=True,
            env=self._env("7"),
        )
        assert completed.stdout == expected


class TestMissingResultsError:
    def test_message_lists_labels_and_keys(self):
        error = MissingResultsError(
            [("suite:seeds[table1]", "deadbeef"), ("variation:x", "cafe")]
        )
        assert len(error.missing) == 2
        text = str(error)
        assert "2 planned unit(s) missing" in text
        assert "suite:seeds[table1]  deadbeef" in text
        assert "variation:x  cafe" in text
