"""Offset-aware training: the expected-flip penalty through the whole stack.

Layers under test (see ``docs/TESTING.md`` for the taxonomy):

* trainer semantics: the penalty steers thresholds into sparse sample
  regions, is inert unless both knobs are positive, and validates inputs;
* explorer / framework threading: ``DesignSpaceExplorer(training_sigma=)``
  reaches the trainer (volts, normalized by the technology's supply) and
  the cache keys separate nominal from offset-aware runs;
* the benchmark claim (nightly): at matched depth/tau, offset-aware trees
  achieve strictly lower mean accuracy drop than nominal trees on at least
  half of the eight benchmarks.
"""

import numpy as np
import pytest

from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import DesignSpaceExplorer
from repro.core.variation import simulate_offset_variation, variation_result_key
from repro.datasets.registry import dataset_names, load_dataset
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset


class TestTrainerSemantics:
    def test_penalty_centers_the_threshold_in_the_sparse_band(self):
        """Equal-Gini splits: nominal training is indifferent (tie-broken by
        RNG), offset-aware training must pick the widest-margin one."""
        # class 0 at levels {2, 3}, class 1 at {8, 9}: thresholds 4..8 all
        # separate perfectly, but only 6 is centered in the empty band.
        X_levels = np.array([[2], [3], [2], [3], [8], [9], [8], [9]])
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        for seed in range(5):
            aware = CARTTrainer(
                max_depth=1, seed=seed, training_sigma=0.05, robustness_weight=1.0
            ).fit(X_levels, y, n_classes=2)
            assert (aware.root.feature, aware.root.threshold_level) == (0, 6)
        nominal_choices = {
            CARTTrainer(max_depth=1, seed=seed).fit(
                X_levels, y, n_classes=2
            ).root.threshold_level
            for seed in range(10)
        }
        assert nominal_choices <= {4, 5, 6, 7, 8}
        assert len(nominal_choices) > 1  # the nominal trainer really is blind

    def test_cart_weight_zero_is_bit_identical_to_nominal(self, small_split):
        X_train_levels, _, y_train, _ = small_split
        nominal = CARTTrainer(max_depth=4, seed=3).fit(X_train_levels, y_train, 3)
        disabled = CARTTrainer(
            max_depth=4, seed=3, training_sigma=0.05, robustness_weight=0.0
        ).fit(X_train_levels, y_train, 3)
        assert nominal == disabled

    def test_adc_aware_trainer_exposes_offset_aware_flag(self):
        assert not ADCAwareTrainer().offset_aware
        # sigma alone activates the penalty (weight defaults to 1.0, matching
        # the explorer); disabling either knob deactivates it
        assert ADCAwareTrainer(training_sigma=0.04).offset_aware
        assert not ADCAwareTrainer(robustness_weight=2.0).offset_aware
        assert not ADCAwareTrainer(
            training_sigma=0.04, robustness_weight=0.0
        ).offset_aware
        assert ADCAwareTrainer(
            training_sigma=0.04, robustness_weight=1.0
        ).offset_aware

    @pytest.mark.parametrize("trainer_cls", [CARTTrainer, ADCAwareTrainer])
    def test_negative_knobs_rejected(self, trainer_cls):
        with pytest.raises(ValueError, match="training_sigma"):
            trainer_cls(training_sigma=-0.01)
        with pytest.raises(ValueError, match="robustness_weight"):
            trainer_cls(robustness_weight=-1.0)


class TestExplorerThreading:
    def test_explorer_trains_offset_aware_trees(self, small_dataset):
        X, y = small_dataset
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.3, seed=1
        )
        X_train_levels = quantize_dataset(X_train)
        X_test_levels = quantize_dataset(X_test)
        nominal = DesignSpaceExplorer(depths=(4,), taus=(0.02,), seed=0)
        aware = DesignSpaceExplorer(
            depths=(4,), taus=(0.02,), seed=0, training_sigma=0.04
        )
        nominal_point = nominal.evaluate_point(
            X_train_levels, y_train, X_test_levels, y_test, 3, 4, 0.02
        )
        aware_point = aware.evaluate_point(
            X_train_levels, y_train, X_test_levels, y_test, 3, 4, 0.02
        )
        assert nominal_point.tree != aware_point.tree

    def test_explorer_sigma_zero_matches_plain_explorer(self, small_dataset):
        X, y = small_dataset
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.3, seed=1
        )
        X_train_levels = quantize_dataset(X_train)
        X_test_levels = quantize_dataset(X_test)
        plain = DesignSpaceExplorer(depths=(4,), taus=(0.01,), seed=0)
        zeroed = DesignSpaceExplorer(
            depths=(4,), taus=(0.01,), seed=0,
            training_sigma=0.0, robustness_weight=5.0,
        )
        assert plain.evaluate_point(
            X_train_levels, y_train, X_test_levels, y_test, 3, 4, 0.01
        ).tree == zeroed.evaluate_point(
            X_train_levels, y_train, X_test_levels, y_test, 3, 4, 0.01
        ).tree

    def test_explorer_sigma_is_in_volts(self, technology, small_dataset):
        """The explorer normalizes by the supply voltage before training."""
        X, y = small_dataset
        X_train, _, y_train, _ = train_test_split(X, y, test_size=0.3, seed=1)
        X_train_levels = quantize_dataset(X_train)
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(4,), taus=(0.01,), seed=0,
            training_sigma=0.04,
        )
        direct = ADCAwareTrainer(
            max_depth=4, gini_threshold=0.01, seed=0,
            training_sigma=0.04 / technology.vdd, robustness_weight=1.0,
        ).fit(X_train_levels, y_train, 3)
        point = explorer.evaluate_point(
            X_train_levels, y_train, quantize_dataset(X_train), y_train, 3, 4, 0.01
        )
        assert point.tree == direct

    def test_negative_explorer_knobs_rejected(self):
        with pytest.raises(ValueError, match="training_sigma"):
            DesignSpaceExplorer(training_sigma=-0.01)
        with pytest.raises(ValueError, match="robustness_weight"):
            DesignSpaceExplorer(robustness_weight=-1.0)


class TestCacheKeySeparation:
    def test_variation_key_distinguishes_training_sigma(self):
        nominal = variation_result_key("seeds", 0, 0.04, 100, 5, 0.01)
        aware = variation_result_key(
            "seeds", 0, 0.04, 100, 5, 0.01, training_sigma=0.04,
            robustness_weight=1.0,
        )
        assert nominal != aware

    def test_variation_key_canonicalizes_inert_penalties(self):
        """sigma=0 or weight=0 is nominal training: all spellings alias."""
        nominal = variation_result_key("seeds", 0, 0.04, 100, 5, 0.01)
        assert nominal == variation_result_key(
            "seeds", 0, 0.04, 100, 5, 0.01, training_sigma=0.0,
            robustness_weight=3.0,
        )
        assert nominal == variation_result_key(
            "seeds", 0, 0.04, 100, 5, 0.01, training_sigma=0.05,
            robustness_weight=0.0,
        )

    def test_suite_key_distinguishes_training_sigma(self):
        from repro.analysis.experiments import suite_result_key

        nominal = suite_result_key("seeds", 0, False, (2, 3), (0.0,))
        aware = suite_result_key(
            "seeds", 0, False, (2, 3), (0.0,), training_sigma=0.04
        )
        inert = suite_result_key(
            "seeds", 0, False, (2, 3), (0.0,), training_sigma=0.04,
            robustness_weight=0.0,
        )
        assert nominal != aware
        assert nominal == inert


@pytest.mark.nightly
class TestBenchmarkRobustnessGains:
    """The headline claim, asserted over all eight benchmarks (nightly)."""

    SIGMA_V = 0.04
    DEPTH = 5
    TAU = 0.01
    N_TRIALS = 200

    def test_offset_aware_training_wins_on_at_least_half_the_benchmarks(self):
        from repro.pdk.egfet import default_technology

        # the trainer speaks normalized full-scale units, the simulation
        # volts: normalize explicitly so the claim stays matched-sigma even
        # if the calibrated corner's supply voltage changes
        trainer_sigma = self.SIGMA_V / default_technology().vdd
        wins = []
        for name in dataset_names():
            dataset = load_dataset(name, seed=0)
            X_train, X_test, y_train, y_test = train_test_split(
                dataset.X, dataset.y, test_size=0.3, seed=0
            )
            X_train_levels = quantize_dataset(X_train)
            drops = {}
            for label, weight in (("nominal", 0.0), ("aware", 1.0)):
                tree = ADCAwareTrainer(
                    max_depth=self.DEPTH, gini_threshold=self.TAU, seed=0,
                    training_sigma=trainer_sigma, robustness_weight=weight,
                ).fit(X_train_levels, y_train, dataset.n_classes)
                drops[label] = simulate_offset_variation(
                    tree, X_test, y_test, sigma_v=self.SIGMA_V,
                    n_trials=self.N_TRIALS, seed=0,
                ).mean_accuracy_drop
            wins.append(drops["aware"] < drops["nominal"])
        # strictly lower mean accuracy drop on >= 4 of the 8 benchmarks at
        # matched depth/tau (deterministic: every stage above is seeded)
        assert sum(wins) >= 4, f"offset-aware won only {sum(wins)}/8 benchmarks"
