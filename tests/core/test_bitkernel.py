"""Unit tests for the bit-parallel packed-uint64 tree kernels."""

import pickle

import numpy as np
import pytest

from repro.adc.thermometer import (
    WORD_BITS,
    pack_digit_matrix,
    packed_tail_mask,
    unpack_digit_matrix,
)
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.bitkernel import CompiledTreeKernel, compile_tree_kernel
from repro.core.exploration import DesignSpaceExplorer
from repro.core.unary_tree import UnaryDecisionTree
from repro.datasets.registry import load_dataset
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import (
    ENGINES,
    predict_levels_with_engine,
    resolve_engine,
    train_test_split,
)
from repro.mltrees.quantize import quantize_dataset


@pytest.fixture(scope="module")
def trained():
    """A depth-4 ADC-aware tree on seeds plus its quantized test matrix."""
    dataset = load_dataset("seeds", seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=0
    )
    tree = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=0).fit(
        quantize_dataset(X_train), y_train, dataset.n_classes
    )
    return tree, quantize_dataset(X_test), y_test


class TestPacking:
    @pytest.mark.parametrize("n_samples", [0, 1, 63, 64, 65, 127, 128, 257])
    @pytest.mark.parametrize("order", ["C", "F"])
    def test_pack_unpack_roundtrip(self, n_samples, order):
        rng = np.random.default_rng(n_samples)
        digits = rng.random((n_samples, 7)) < 0.5
        digits = np.asfortranarray(digits) if order == "F" else np.ascontiguousarray(digits)
        packed = pack_digit_matrix(digits)
        assert packed.dtype == np.uint64
        assert packed.shape == (7, -(-n_samples // WORD_BITS))
        np.testing.assert_array_equal(unpack_digit_matrix(packed, n_samples), digits)

    def test_pack_layout_is_little_endian_lsb_first(self):
        digits = np.zeros((65, 2), dtype=bool)
        digits[0, 0] = True    # sample 0 -> bit 0 of word 0
        digits[63, 0] = True   # sample 63 -> bit 63 of word 0
        digits[64, 1] = True   # sample 64 -> bit 0 of word 1
        packed = pack_digit_matrix(digits)
        assert packed[0, 0] == (1 | (1 << 63))
        assert packed[0, 1] == 0
        assert packed[1, 0] == 0
        assert packed[1, 1] == 1

    def test_pack_memory_order_parity(self):
        rng = np.random.default_rng(0)
        digits = rng.random((130, 5)) < 0.5
        np.testing.assert_array_equal(
            pack_digit_matrix(np.ascontiguousarray(digits)),
            pack_digit_matrix(np.asfortranarray(digits)),
        )

    def test_pack_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            pack_digit_matrix(np.zeros(8, dtype=bool))

    def test_tail_mask(self):
        assert packed_tail_mask(64) == np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        assert packed_tail_mask(128) == np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        assert packed_tail_mask(1) == np.uint64(1)
        assert packed_tail_mask(65) == np.uint64(1)
        assert packed_tail_mask(63) == np.uint64((1 << 63) - 1)


class TestKernelEquivalence:
    @pytest.mark.parametrize("n_samples", [1, 63, 64, 65, 257])
    def test_ragged_batches_match_batch_engine(self, trained, n_samples):
        tree, X_levels, _ = trained
        kernel = compile_tree_kernel(tree)
        repeats = -(-n_samples // len(X_levels))
        levels = np.tile(X_levels, (repeats, 1))[:n_samples]
        np.testing.assert_array_equal(
            kernel.predict_levels(levels), tree.predict_levels(levels)
        )

    def test_matches_predict_from_digits_batch(self, trained):
        tree, X_levels, _ = trained
        unary = UnaryDecisionTree(tree)
        kernel = compile_tree_kernel(tree)
        digits: dict[int, dict[int, np.ndarray]] = {}
        for feature, level in unary.comparators:
            digits.setdefault(feature, {})[level] = X_levels[:, feature] >= level
        np.testing.assert_array_equal(
            kernel.predict_levels(X_levels), unary.predict_from_digits_batch(digits)
        )

    def test_single_leaf_tree_constant_true_cube(self):
        # Constant features leave nothing to split on: the tree is a single
        # leaf, the kernel has no comparators, its one cube is empty
        # (constant true) and every sample gets the majority label.
        X_levels = np.zeros((10, 3), dtype=np.int64)
        y = np.zeros(10, dtype=np.int64)
        tree = CARTTrainer(max_depth=2, seed=0).fit(X_levels, y, n_classes=2)
        kernel = compile_tree_kernel(tree)
        assert kernel.n_digits == 0
        np.testing.assert_array_equal(
            kernel.predict_levels(np.zeros((130, 3), dtype=np.int64)),
            np.zeros(130, dtype=np.int64),
        )

    def test_uncovered_digits_raise_like_batch_engine(self, trained):
        # The minimized label logic of a real tree covers the whole digit
        # space (don't-care expansion), so the no-fire guard is exercised
        # with a synthetic coverage hole: every label requires digit 0.
        tree, _, _ = trained
        kernel = CompiledTreeKernel(tree)
        kernel.cubes = [
            [(np.array([0], dtype=np.intp), np.array([], dtype=np.intp))]
            for _ in range(kernel.n_classes)
        ]
        bad = np.zeros((3, kernel.n_digits), dtype=bool)  # digit 0 never set
        with pytest.raises(
            ValueError,
            match="no label function fired; the digit assignment is "
            "inconsistent with a thermometer code",
        ):
            kernel.predict_digit_matrix(bad)
        # the guard scans only real lanes: a firing batch stays fine even
        # when its ragged tail pads the last word with zeros
        good = np.ones((65, kernel.n_digits), dtype=bool)
        np.testing.assert_array_equal(
            kernel.predict_digit_matrix(good), np.zeros(65, dtype=np.int64)
        )

    def test_empty_batch(self, trained):
        tree, X_levels, _ = trained
        kernel = compile_tree_kernel(tree)
        predictions = kernel.predict_levels(X_levels[:0])
        assert predictions.shape == (0,)

    def test_predict_raw_samples(self, trained):
        tree, _, _ = trained
        dataset = load_dataset("seeds", seed=0)
        kernel = compile_tree_kernel(tree)
        np.testing.assert_array_equal(
            kernel.predict(dataset.X), tree.predict(dataset.X)
        )


class TestKernelCache:
    def test_compile_is_cached_per_tree(self, trained):
        tree, _, _ = trained
        assert compile_tree_kernel(tree) is compile_tree_kernel(tree)

    def test_direct_construction_is_not_cached(self, trained):
        tree, _, _ = trained
        kernel = compile_tree_kernel(tree)
        assert CompiledTreeKernel(tree) is not kernel

    def test_pickle_strips_cached_kernel(self, trained):
        tree, X_levels, _ = trained
        compile_tree_kernel(tree)
        clone = pickle.loads(pickle.dumps(tree))
        assert not hasattr(clone, "_compiled_bitkernel")
        assert clone == tree
        # and the clone compiles its own, equivalent kernel
        np.testing.assert_array_equal(
            compile_tree_kernel(clone).predict_levels(X_levels),
            tree.predict_levels(X_levels),
        )


class TestEngineDispatch:
    def test_engine_names(self):
        assert ENGINES == ("batch", "bitparallel")
        for engine in ENGINES:
            assert resolve_engine(engine) == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("simd")

    def test_engines_are_bit_identical(self, trained):
        tree, X_levels, _ = trained
        np.testing.assert_array_equal(
            predict_levels_with_engine(tree, X_levels, engine="batch"),
            predict_levels_with_engine(tree, X_levels, engine="bitparallel"),
        )

    @staticmethod
    def _explore(engine):
        dataset = load_dataset("seeds", seed=0)
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, test_size=0.3, seed=0
        )
        return DesignSpaceExplorer(
            depths=(2, 3), taus=(0.0, 0.01), seed=0, engine=engine
        ).explore(
            quantize_dataset(X_train),
            y_train,
            quantize_dataset(X_test),
            y_test,
            dataset.n_classes,
            dataset_name="seeds",
        )

    def test_explorer_results_engine_invariant(self):
        batch = self._explore("batch")
        packed = self._explore("bitparallel")
        assert [p.accuracy for p in batch] == [p.accuracy for p in packed]

    def test_explorer_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            DesignSpaceExplorer(engine="gpu")

    def test_design_point_kernel_property(self):
        point = self._explore("batch")[0]
        kernel = point.kernel
        assert kernel is compile_tree_kernel(point.tree)
        assert kernel.n_digits == len(kernel.comparators)
