"""Unit tests for the comparator-offset variation analysis."""

import numpy as np
import pytest

from repro.core.unary_tree import UnaryDecisionTree
from repro.core.variation import (
    ComparatorOffsetModel,
    offset_tolerance_sweep,
    simulate_offset_variation,
)
from repro.mltrees.cart import CARTTrainer


class TestComparatorOffsetModel:
    def test_zero_sigma_is_deterministic(self):
        model = ComparatorOffsetModel(sigma_v=0.0, mean_v=0.002)
        samples = model.sample(np.random.default_rng(0), 10)
        np.testing.assert_allclose(samples, 0.002)

    def test_samples_follow_requested_spread(self):
        model = ComparatorOffsetModel(sigma_v=0.05)
        samples = model.sample(np.random.default_rng(1), 5000)
        assert abs(samples.mean()) < 0.01
        assert 0.04 < samples.std() < 0.06

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ComparatorOffsetModel(sigma_v=-0.01)


class TestSimulateOffsetVariation:
    @pytest.fixture(scope="class")
    def evaluation_data(self, small_tree, small_split):
        _, X_test_levels, _, y_test = small_split
        X_raw = X_test_levels / 16.0
        return small_tree, X_raw, y_test

    def test_zero_offset_matches_nominal(self, evaluation_data, technology):
        tree, X, y = evaluation_data
        analysis = simulate_offset_variation(
            tree, X, y, sigma_v=0.0, n_trials=3, technology=technology, seed=0
        )
        assert analysis.mean_accuracy == pytest.approx(analysis.nominal_accuracy)
        assert analysis.std_accuracy == pytest.approx(0.0)
        assert analysis.mean_accuracy_drop == pytest.approx(0.0)

    def test_large_offsets_degrade_accuracy(self, evaluation_data, technology):
        tree, X, y = evaluation_data
        small = simulate_offset_variation(
            tree, X, y, sigma_v=0.005, n_trials=15, technology=technology, seed=1
        )
        large = simulate_offset_variation(
            tree, X, y, sigma_v=0.15, n_trials=15, technology=technology, seed=1
        )
        assert large.mean_accuracy <= small.mean_accuracy + 1e-9
        assert large.worst_case_drop >= 0.0

    def test_reproducible_per_seed(self, evaluation_data, technology):
        tree, X, y = evaluation_data
        first = simulate_offset_variation(
            tree, X, y, sigma_v=0.03, n_trials=10, technology=technology, seed=7
        )
        second = simulate_offset_variation(
            tree, X, y, sigma_v=0.03, n_trials=10, technology=technology, seed=7
        )
        assert first.accuracies == second.accuracies

    def test_accepts_unary_tree_directly(self, evaluation_data, technology):
        tree, X, y = evaluation_data
        unary = UnaryDecisionTree(tree)
        analysis = simulate_offset_variation(
            unary, X, y, sigma_v=0.02, n_trials=5, technology=technology, seed=0
        )
        assert len(analysis.accuracies) == 5
        assert 0.0 <= analysis.min_accuracy <= analysis.mean_accuracy <= 1.0

    def test_single_leaf_tree_is_immune(self, technology):
        X_levels = np.array([[3, 4], [5, 6], [2, 1]])
        y = np.array([1, 1, 1])
        tree = CARTTrainer(max_depth=2).fit(X_levels, y, n_classes=2)
        analysis = simulate_offset_variation(
            tree, X_levels / 16.0, y, sigma_v=0.2, n_trials=4, technology=technology
        )
        assert analysis.std_accuracy == 0.0
        assert analysis.mean_accuracy == pytest.approx(1.0)

    def test_invalid_trials_rejected(self, evaluation_data, technology):
        tree, X, y = evaluation_data
        with pytest.raises(ValueError):
            simulate_offset_variation(tree, X, y, sigma_v=0.01, n_trials=0)


class TestOffsetToleranceSweep:
    def test_sweep_returns_one_analysis_per_sigma(self, small_tree, small_split, technology):
        _, X_test_levels, _, y_test = small_split
        X_raw = X_test_levels / 16.0
        sigmas = (0.0, 0.02, 0.08)
        analyses = offset_tolerance_sweep(
            small_tree, X_raw, y_test, sigmas_v=sigmas, n_trials=5,
            technology=technology, seed=0,
        )
        assert [a.sigma_v for a in analyses] == list(sigmas)
        # mean accuracy is (weakly) decreasing as offsets grow
        means = [a.mean_accuracy for a in analyses]
        assert means[0] >= means[-1] - 1e-9
