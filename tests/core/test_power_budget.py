"""Unit tests for the self-power feasibility analysis."""

import pytest

from repro.core.metrics import HardwareReport
from repro.core.power_budget import analyze_self_power
from repro.pdk.egfet import EGFETTechnology
from repro.pdk.harvester import PrintedEnergyHarvester


def _report(total_power_uw: float, n_inputs: int = 5) -> HardwareReport:
    return HardwareReport(
        name="design",
        adc_area_mm2=1.0,
        adc_power_uw=total_power_uw * 0.7,
        digital_area_mm2=1.0,
        digital_power_uw=total_power_uw * 0.3,
        n_inputs=n_inputs,
        n_tree_comparators=0,
        n_adc_comparators=n_inputs,
    )


class TestAnalyzeSelfPower:
    def test_sensor_power_one_per_used_input(self, technology):
        analysis = analyze_self_power(_report(500.0, n_inputs=11), technology)
        assert analysis.sensor_power_mw == pytest.approx(0.055)

    def test_feasible_design(self, technology):
        analysis = analyze_self_power(_report(800.0), technology)
        assert analysis.is_self_powered
        assert analysis.headroom_mw > 0
        assert 0 < analysis.utilization < 1

    def test_infeasible_design(self, technology):
        analysis = analyze_self_power(_report(2500.0), technology)
        assert not analysis.is_self_powered
        assert analysis.headroom_mw < 0
        assert analysis.utilization > 1

    def test_boundary_includes_sensors(self, technology):
        """A classifier at exactly 2 mW fails once sensors are added."""
        analysis = analyze_self_power(_report(2000.0, n_inputs=4), technology)
        assert analysis.classifier_power_mw == pytest.approx(2.0)
        assert not analysis.is_self_powered

    def test_total_power_composition(self, technology):
        analysis = analyze_self_power(_report(1000.0, n_inputs=2), technology)
        assert analysis.total_power_mw == pytest.approx(
            analysis.classifier_power_mw + analysis.sensor_power_mw
        )

    def test_custom_harvester_budget(self):
        technology = EGFETTechnology(harvester=PrintedEnergyHarvester(budget_mw=5.0))
        analysis = analyze_self_power(_report(2500.0), technology)
        assert analysis.harvester_budget_mw == pytest.approx(5.0)
        assert analysis.is_self_powered

    def test_default_technology_used_when_omitted(self):
        analysis = analyze_self_power(_report(100.0))
        assert analysis.harvester_budget_mw == pytest.approx(2.0)
