"""Unit tests for the Pareto-front utilities."""

import pytest

from repro.core.exploration import DesignPoint, DesignSpaceExplorer
from repro.core.metrics import HardwareReport
from repro.core.pareto import (
    accuracy_area_front,
    accuracy_power_front,
    dominates,
    non_dominated_indices,
    pareto_front,
)


def _point(accuracy, power_uw, area_mm2=1.0):
    hardware = HardwareReport(
        name=f"p{accuracy}-{power_uw}",
        adc_area_mm2=area_mm2 / 2,
        adc_power_uw=power_uw / 2,
        digital_area_mm2=area_mm2 / 2,
        digital_power_uw=power_uw / 2,
        n_inputs=2,
        n_tree_comparators=0,
        n_adc_comparators=3,
    )
    return DesignPoint(
        dataset="toy", depth=2, tau=0.0, accuracy=accuracy, hardware=hardware,
        tree=None,  # type: ignore[arg-type]
    )


class TestDominates:
    def test_strictly_better_everywhere_dominates(self):
        assert dominates((1.0, 2.0), (3.0, 4.0))

    def test_better_on_one_axis_equal_on_the_other_dominates(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_equal_tuples_do_not_dominate_each_other(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_tradeoff_dominates_neither_way(self):
        assert not dominates((1.0, 4.0), (2.0, 3.0))
        assert not dominates((2.0, 3.0), (1.0, 4.0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))


class TestNonDominatedIndices:
    def test_empty_input_gives_empty_front(self):
        assert non_dominated_indices([]) == []

    def test_single_point_is_its_own_front(self):
        assert non_dominated_indices([(3.0, 7.0)]) == [0]

    def test_dominated_points_excluded_order_preserved(self):
        points = [(2.0, 3.0), (1.0, 4.0), (2.0, 4.0), (0.0, 9.0)]
        assert non_dominated_indices(points) == [0, 1, 3]

    def test_duplicate_objective_tuples_are_all_retained(self):
        # Equal tuples never dominate each other, so every copy survives --
        # a study must keep every trial that achieved the optimal tradeoff.
        points = [(1.0, 2.0), (1.0, 2.0), (0.0, 3.0), (1.0, 2.0)]
        assert non_dominated_indices(points) == [0, 1, 2, 3]

    def test_tie_on_one_axis_with_worse_other_axis_is_dominated(self):
        points = [(0.0, 1.0), (0.0, 2.0)]
        assert non_dominated_indices(points) == [0]

    def test_non_dominated_ties_on_different_axes_all_survive(self):
        points = [(0.0, 5.0), (5.0, 0.0), (0.0, 5.0)]
        assert non_dominated_indices(points) == [0, 1, 2]

    def test_three_objectives(self):
        points = [(1.0, 1.0, 1.0), (1.0, 1.0, 2.0), (0.0, 2.0, 2.0)]
        assert non_dominated_indices(points) == [0, 2]


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [
            _point(0.90, 100.0),
            _point(0.85, 200.0),   # dominated: worse accuracy AND more power
            _point(0.95, 300.0),
            _point(0.80, 50.0),
        ]
        front = accuracy_power_front(points)
        accuracies = {p.accuracy for p in front}
        assert 0.85 not in accuracies
        assert {0.80, 0.90, 0.95} <= accuracies

    def test_front_sorted_by_minimized_objective(self):
        points = [_point(0.9, 300.0), _point(0.7, 100.0), _point(0.95, 500.0)]
        front = accuracy_power_front(points)
        powers = [p.hardware.total_power_uw for p in front]
        assert powers == sorted(powers)

    def test_single_point_is_its_own_front(self):
        points = [_point(0.5, 10.0)]
        assert accuracy_power_front(points) == points

    def test_identical_points_deduplicated(self):
        points = [_point(0.9, 100.0), _point(0.9, 100.0)]
        assert len(accuracy_power_front(points)) == 1

    def test_all_points_on_front_when_tradeoff_is_strict(self):
        points = [_point(0.6, 60.0), _point(0.7, 70.0), _point(0.8, 80.0)]
        assert len(accuracy_power_front(points)) == 3

    def test_area_front_uses_area_objective(self):
        cheap_area = _point(0.8, 500.0, area_mm2=1.0)
        small_power = _point(0.8, 100.0, area_mm2=5.0)
        area_front = accuracy_area_front([cheap_area, small_power])
        power_front = accuracy_power_front([cheap_area, small_power])
        assert cheap_area in area_front
        assert small_power in power_front

    def test_generic_pareto_front_with_custom_objectives(self):
        items = [(1, 10), (2, 5), (3, 20), (0, 1)]
        front = pareto_front(
            items, maximize=lambda t: t[0], minimize=lambda t: t[1]
        )
        assert (3, 20) in front and (2, 5) in front and (0, 1) in front
        assert (1, 10) not in front

    def test_front_of_real_exploration_is_nonempty(self, small_split, technology):
        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )
        points = explorer.explore(X_train, y_train, X_test, y_test, 3, "small")
        front = accuracy_power_front(points)
        assert 1 <= len(front) <= len(points)
        best_accuracy = max(p.accuracy for p in points)
        assert any(p.accuracy == pytest.approx(best_accuracy) for p in front)
