"""Unit tests for the classifier datasheet generator."""

import numpy as np
import pytest

from repro.core.datasheet import generate_datasheet
from repro.mltrees.cart import CARTTrainer


class TestGenerateDatasheet:
    @pytest.fixture(scope="class")
    def datasheet(self, small_tree, small_split, technology):
        _, X_test_levels, _, y_test = small_split
        return generate_datasheet(
            small_tree,
            name="unit-test classifier",
            technology=technology,
            feature_names=[f"sensor_{i}" for i in range(small_tree.n_features)],
            class_names=["alpha", "beta", "gamma"],
            X_test=X_test_levels / 16.0,
            y_test=y_test,
        )

    def test_title_and_sections_present(self, datasheet):
        assert "DATASHEET -- unit-test classifier" in datasheet
        for section in [
            "Model", "Bespoke ADC front end",
            "Digital label logic", "Area / power", "self-power:",
        ]:
            assert section in datasheet

    def test_model_summary_fields(self, datasheet, small_tree):
        assert f"depth {small_tree.depth}" in datasheet
        assert f"{small_tree.n_decision_nodes} decision" in datasheet
        assert "test accuracy:" in datasheet

    def test_adc_spec_lists_used_inputs(self, datasheet, small_tree):
        for feature in small_tree.used_features():
            assert f"sensor_{feature}" in datasheet
        assert "-UD" in datasheet

    def test_power_budget_and_timing(self, datasheet):
        assert "sampling period" in datasheet
        assert "harvester budget" in datasheet
        assert ("self-power: YES" in datasheet) or ("self-power: NO" in datasheet)

    def test_without_evaluation_set(self, small_tree, technology):
        datasheet = generate_datasheet(small_tree, technology=technology)
        assert "test accuracy" not in datasheet
        assert "DATASHEET" in datasheet

    def test_single_leaf_tree(self, technology):
        tree = CARTTrainer(max_depth=2).fit(
            np.array([[1, 2], [3, 4]]), np.array([1, 1]), n_classes=2
        )
        datasheet = generate_datasheet(tree, technology=technology)
        assert "no ADC channel required" in datasheet
