"""Unit tests for the serial/parallel experiment execution backends."""

import operator

import pytest

from repro.core.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    get_executor,
)


class TestSerialExecutor:
    def test_maps_in_submission_order(self):
        executor = SerialExecutor()
        assert executor.map(operator.mul, [(2, 3), (4, 5), (0, 7)]) == [6, 20, 0]

    def test_empty_task_list(self):
        assert SerialExecutor().map(operator.neg, []) == []

    def test_is_an_executor_with_one_job(self):
        executor = SerialExecutor()
        assert isinstance(executor, Executor)
        assert executor.jobs == 1

    def test_close_is_idempotent(self):
        executor = SerialExecutor()
        executor.close()
        executor.close()
        assert executor.map(operator.neg, [(1,)]) == [-1]


class TestParallelExecutor:
    def test_matches_serial_results_and_order(self):
        tasks = [(i, i + 1) for i in range(10)]
        serial = SerialExecutor().map(operator.mul, tasks)
        with ParallelExecutor(jobs=2) as executor:
            parallel = executor.map(operator.mul, tasks)
        assert parallel == serial

    def test_more_jobs_than_tasks(self):
        with ParallelExecutor(jobs=8) as executor:
            assert executor.map(operator.neg, [(3,), (-4,)]) == [-3, 4]

    def test_auto_jobs_from_cpu_count(self):
        assert ParallelExecutor(jobs=None).jobs >= 1
        assert ParallelExecutor(jobs=0).jobs >= 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=-2)

    def test_worker_exceptions_propagate(self):
        with ParallelExecutor(jobs=2) as executor:
            with pytest.raises(ZeroDivisionError):
                executor.map(operator.truediv, [(1, 1), (1, 0)])

    def test_close_then_context_reuse(self):
        executor = ParallelExecutor(jobs=2)
        assert executor.map(operator.neg, [(5,)]) == [-5]
        executor.close()
        executor.close()  # idempotent


class TestGetExecutor:
    def test_default_is_serial(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)

    def test_multiple_jobs_is_parallel(self):
        executor = get_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_zero_means_one_worker_per_cpu(self):
        executor = get_executor(0)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs >= 1
