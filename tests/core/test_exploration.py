"""Unit tests for the design-space exploration and constrained selection."""

import dataclasses

import pytest

from repro.core.exploration import (
    DEFAULT_DEPTHS,
    DEFAULT_TAUS,
    DesignSpaceExplorer,
    proposed_hardware_report,
    select_best_design,
)
from repro.core.variation import VariationAnalysis


def _analysis(nominal: float, mean: float, minimum: float) -> VariationAnalysis:
    return VariationAnalysis(
        nominal_accuracy=nominal,
        mean_accuracy=mean,
        std_accuracy=0.0,
        min_accuracy=minimum,
        accuracies=(mean,),
        sigma_v=0.02,
    )


class TestDefaults:
    def test_paper_grids(self):
        assert DEFAULT_DEPTHS == (2, 3, 4, 5, 6, 7, 8)
        assert DEFAULT_TAUS == (0.0, 0.005, 0.010, 0.015, 0.020, 0.025, 0.030)


class TestProposedHardwareReport:
    def test_no_tree_comparators_in_proposed_architecture(self, small_tree, technology):
        report = proposed_hardware_report(small_tree, technology)
        assert report.n_tree_comparators == 0
        assert report.n_adc_comparators == len(small_tree.unique_comparisons())
        assert report.n_inputs == len(small_tree.used_features())
        assert report.total_area_mm2 > 0
        assert report.total_power_uw > 0

    def test_cheaper_than_baseline(self, small_tree, technology):
        from repro.baselines.mubarik import BaselineBespokeDesign

        baseline = BaselineBespokeDesign(small_tree, technology).hardware_report()
        proposed = proposed_hardware_report(small_tree, technology)
        assert proposed.total_area_mm2 < baseline.total_area_mm2
        assert proposed.total_power_uw < baseline.total_power_uw


class TestDesignSpaceExplorer:
    @pytest.fixture(scope="class")
    def points(self, small_split, technology):
        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )
        return explorer.explore(X_train, y_train, X_test, y_test, 3, "small")

    def test_grid_size(self, points):
        assert len(points) == 4
        assert {(p.depth, p.tau) for p in points} == {
            (2, 0.0), (2, 0.02), (3, 0.0), (3, 0.02)
        }

    def test_point_fields(self, points):
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0
            assert point.dataset == "small"
            assert point.total_area_mm2 == point.hardware.total_area_mm2
            assert point.total_power_uw == point.hardware.total_power_uw
            assert point.tree.depth <= point.depth

    def test_empty_grid_rejected(self, technology):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(technology=technology, depths=(), taus=(0.0,))

    def test_parallel_executor_matches_serial(self, small_split, technology, points):
        from repro.core.executor import ParallelExecutor

        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )
        with ParallelExecutor(jobs=2) as executor:
            parallel_points = explorer.explore(
                X_train, y_train, X_test, y_test, 3, "small", executor=executor
            )
        # bit-identical results in the same depth-major order
        assert parallel_points == points


class TestSelectBestDesign:
    @pytest.fixture(scope="class")
    def points(self, small_split, technology):
        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3, 4), taus=(0.0, 0.03), seed=0
        )
        return explorer.explore(X_train, y_train, X_test, y_test, 3, "small")

    def test_selected_point_respects_accuracy_floor(self, points):
        reference = max(point.accuracy for point in points)
        chosen = select_best_design(points, reference, 0.01)
        assert chosen is not None
        assert chosen.accuracy >= reference - 0.01 - 1e-12

    def test_power_objective_picks_minimum_power(self, points):
        reference = min(point.accuracy for point in points)  # everything feasible
        chosen = select_best_design(points, reference, 0.0, objective="power")
        assert chosen.hardware.total_power_uw == pytest.approx(
            min(point.hardware.total_power_uw for point in points)
        )

    def test_area_objective_picks_minimum_area(self, points):
        reference = min(point.accuracy for point in points)
        chosen = select_best_design(points, reference, 0.0, objective="area")
        assert chosen.hardware.total_area_mm2 == pytest.approx(
            min(point.hardware.total_area_mm2 for point in points)
        )

    def test_unsatisfiable_constraint_returns_none(self, points):
        assert select_best_design(points, 2.0, 0.0) is None

    def test_larger_loss_budget_never_increases_power(self, points):
        reference = max(point.accuracy for point in points)
        strict = select_best_design(points, reference, 0.0)
        relaxed = select_best_design(points, reference, 0.10)
        if strict is not None and relaxed is not None:
            assert relaxed.hardware.total_power_uw <= strict.hardware.total_power_uw

    def test_invalid_objective_rejected(self, points):
        with pytest.raises(ValueError):
            select_best_design(points, 0.5, 0.01, objective="delay")

    def test_unanalyzed_points_infeasible_under_drop_constraint(self, points):
        reference = min(point.accuracy for point in points)
        assert select_best_design(points, reference, 0.0, max_accuracy_drop=1.0) is None

    def test_drop_constraint_filters_fragile_points(self, points):
        reference = min(point.accuracy for point in points)
        # Make every point robust except the unconstrained power winner.
        unconstrained = select_best_design(points, reference, 0.0)
        annotated = [
            point.with_robustness(
                _analysis(point.accuracy, point.accuracy - 0.10, point.accuracy - 0.20)
                if point is unconstrained
                else _analysis(point.accuracy, point.accuracy - 0.001, point.accuracy - 0.01)
            )
            for point in points
        ]
        chosen = select_best_design(annotated, reference, 0.0, max_accuracy_drop=0.02)
        assert chosen is not None
        assert chosen.mean_accuracy_drop <= 0.02 + 1e-12
        assert (chosen.depth, chosen.tau) != (unconstrained.depth, unconstrained.tau)

    def test_unsatisfiable_drop_constraint_returns_none(self, points):
        reference = min(point.accuracy for point in points)
        annotated = [
            point.with_robustness(
                _analysis(point.accuracy, point.accuracy - 0.5, point.accuracy - 0.5)
            )
            for point in points
        ]
        assert (
            select_best_design(annotated, reference, 0.0, max_accuracy_drop=0.01)
            is None
        )


class TestEvaluateRobustness:
    @pytest.fixture(scope="class")
    def analog_split(self, small_dataset):
        from repro.mltrees.evaluation import train_test_split

        X, y = small_dataset
        return train_test_split(X, y, test_size=0.3, seed=1)

    @pytest.fixture(scope="class")
    def explorer(self, technology):
        return DesignSpaceExplorer(
            technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )

    @pytest.fixture(scope="class")
    def points(self, explorer, small_split):
        X_train, X_test, y_train, y_test = small_split
        return explorer.explore(X_train, y_train, X_test, y_test, 3, "small")

    @pytest.fixture(scope="class")
    def robust_points(self, explorer, points, analog_split):
        _, X_test, _, y_test = analog_split
        return explorer.evaluate_robustness(
            points, X_test, y_test, sigma_v=0.03, n_trials=16
        )

    def test_every_point_gains_robustness_columns(self, points, robust_points):
        assert len(robust_points) == len(points)
        for nominal, robust in zip(points, robust_points):
            assert nominal.robustness is None
            assert nominal.mean_accuracy_drop is None
            assert robust.robustness is not None
            assert len(robust.robustness.accuracies) == 16
            assert robust.robustness.sigma_v == 0.03
            assert robust.mean_accuracy_drop == pytest.approx(
                robust.robustness.nominal_accuracy - robust.robustness.mean_accuracy
            )
            assert robust.worst_case_drop >= robust.mean_accuracy_drop - 1e-12
            # the nominal columns are untouched
            assert robust.accuracy == nominal.accuracy
            assert robust.hardware == nominal.hardware

    def test_parallel_pass_is_bit_identical(self, explorer, points, analog_split,
                                            robust_points):
        from repro.core.executor import ParallelExecutor

        _, X_test, _, y_test = analog_split
        with ParallelExecutor(jobs=2) as executor:
            parallel = explorer.evaluate_robustness(
                points, X_test, y_test, sigma_v=0.03, n_trials=16, executor=executor
            )
        assert parallel == robust_points

    def test_store_caches_per_point_analyses(self, explorer, points, analog_split,
                                             robust_points, tmp_path):
        from repro.core.store import ResultStore

        _, X_test, _, y_test = analog_split
        store = ResultStore(cache_dir=tmp_path / "robustness")
        first = explorer.evaluate_robustness(
            points, X_test, y_test, sigma_v=0.03, n_trials=16, store=store
        )
        assert store.stats.stores == len(points)
        assert first == robust_points
        second = explorer.evaluate_robustness(
            points, X_test, y_test, sigma_v=0.03, n_trials=16, store=store
        )
        assert store.stats.stores == len(points)  # nothing recomputed
        assert store.stats.hits >= len(points)
        assert second == first

    def test_sigma_addresses_distinct_cache_entries(self, explorer, points,
                                                    analog_split, tmp_path):
        from repro.core.store import ResultStore

        _, X_test, _, y_test = analog_split
        store = ResultStore(cache_dir=tmp_path / "sigma-grid")
        explorer.evaluate_robustness(
            points, X_test, y_test, sigma_v=0.01, n_trials=8, store=store
        )
        explorer.evaluate_robustness(
            points, X_test, y_test, sigma_v=0.02, n_trials=8, store=store
        )
        assert len(store) == 2 * len(points)

    def test_custom_technology_addresses_distinct_cache_entries(
        self, technology, points, analog_split, tmp_path
    ):
        """Vdd scales the offsets, so corners must not share cache entries."""
        import dataclasses

        from repro.core.store import ResultStore

        _, X_test, _, y_test = analog_split
        store = ResultStore(cache_dir=tmp_path / "corner-grid")
        kwargs = dict(sigma_v=0.02, n_trials=8, store=store)
        default_explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )
        default_points = default_explorer.evaluate_robustness(
            points, X_test, y_test, **kwargs
        )
        low_vdd = dataclasses.replace(technology, vdd=technology.vdd / 2)
        corner_explorer = DesignSpaceExplorer(
            technology=low_vdd, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )
        corner_points = corner_explorer.evaluate_robustness(
            points, X_test, y_test, **kwargs
        )
        assert len(store) == 2 * len(points)  # no cross-corner aliasing
        assert store.stats.hits == 0
        # halving vdd doubles the normalized offsets: the analyses differ
        assert any(
            c.robustness.accuracies != d.robustness.accuracies
            for c, d in zip(corner_points, default_points)
        )


class TestDesignPointRobustnessColumns:
    def test_with_robustness_returns_annotated_copy(self, small_tree, technology):
        from repro.core.exploration import DesignPoint

        point = DesignPoint(
            dataset="small",
            depth=4,
            tau=0.0,
            accuracy=0.9,
            hardware=proposed_hardware_report(small_tree, technology),
            tree=small_tree,
        )
        annotated = point.with_robustness(_analysis(0.9, 0.88, 0.8))
        assert point.robustness is None
        assert annotated.mean_accuracy_drop == pytest.approx(0.02)
        assert annotated.worst_case_drop == pytest.approx(0.10)
        assert dataclasses.replace(annotated, robustness=None) == point


class TestVariationKeyTestSize:
    def test_non_default_split_addresses_distinct_entries(self):
        from repro.core.variation import variation_result_key

        default = variation_result_key("seeds", 0, 0.02, 10, 3, 0.01)
        explicit = variation_result_key("seeds", 0, 0.02, 10, 3, 0.01, test_size=0.3)
        half = variation_result_key("seeds", 0, 0.02, 10, 3, 0.01, test_size=0.5)
        assert default == explicit
        assert default != half
