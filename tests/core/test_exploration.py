"""Unit tests for the design-space exploration and constrained selection."""

import pytest

from repro.core.exploration import (
    DEFAULT_DEPTHS,
    DEFAULT_TAUS,
    DesignSpaceExplorer,
    proposed_hardware_report,
    select_best_design,
)


class TestDefaults:
    def test_paper_grids(self):
        assert DEFAULT_DEPTHS == (2, 3, 4, 5, 6, 7, 8)
        assert DEFAULT_TAUS == (0.0, 0.005, 0.010, 0.015, 0.020, 0.025, 0.030)


class TestProposedHardwareReport:
    def test_no_tree_comparators_in_proposed_architecture(self, small_tree, technology):
        report = proposed_hardware_report(small_tree, technology)
        assert report.n_tree_comparators == 0
        assert report.n_adc_comparators == len(small_tree.unique_comparisons())
        assert report.n_inputs == len(small_tree.used_features())
        assert report.total_area_mm2 > 0
        assert report.total_power_uw > 0

    def test_cheaper_than_baseline(self, small_tree, technology):
        from repro.baselines.mubarik import BaselineBespokeDesign

        baseline = BaselineBespokeDesign(small_tree, technology).hardware_report()
        proposed = proposed_hardware_report(small_tree, technology)
        assert proposed.total_area_mm2 < baseline.total_area_mm2
        assert proposed.total_power_uw < baseline.total_power_uw


class TestDesignSpaceExplorer:
    @pytest.fixture(scope="class")
    def points(self, small_split, technology):
        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )
        return explorer.explore(X_train, y_train, X_test, y_test, 3, "small")

    def test_grid_size(self, points):
        assert len(points) == 4
        assert {(p.depth, p.tau) for p in points} == {
            (2, 0.0), (2, 0.02), (3, 0.0), (3, 0.02)
        }

    def test_point_fields(self, points):
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0
            assert point.dataset == "small"
            assert point.total_area_mm2 == point.hardware.total_area_mm2
            assert point.total_power_uw == point.hardware.total_power_uw
            assert point.tree.depth <= point.depth

    def test_empty_grid_rejected(self, technology):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(technology=technology, depths=(), taus=(0.0,))

    def test_parallel_executor_matches_serial(self, small_split, technology, points):
        from repro.core.executor import ParallelExecutor

        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3), taus=(0.0, 0.02), seed=0
        )
        with ParallelExecutor(jobs=2) as executor:
            parallel_points = explorer.explore(
                X_train, y_train, X_test, y_test, 3, "small", executor=executor
            )
        # bit-identical results in the same depth-major order
        assert parallel_points == points


class TestSelectBestDesign:
    @pytest.fixture(scope="class")
    def points(self, small_split, technology):
        X_train, X_test, y_train, y_test = small_split
        explorer = DesignSpaceExplorer(
            technology=technology, depths=(2, 3, 4), taus=(0.0, 0.03), seed=0
        )
        return explorer.explore(X_train, y_train, X_test, y_test, 3, "small")

    def test_selected_point_respects_accuracy_floor(self, points):
        reference = max(point.accuracy for point in points)
        chosen = select_best_design(points, reference, 0.01)
        assert chosen is not None
        assert chosen.accuracy >= reference - 0.01 - 1e-12

    def test_power_objective_picks_minimum_power(self, points):
        reference = min(point.accuracy for point in points)  # everything feasible
        chosen = select_best_design(points, reference, 0.0, objective="power")
        assert chosen.hardware.total_power_uw == pytest.approx(
            min(point.hardware.total_power_uw for point in points)
        )

    def test_area_objective_picks_minimum_area(self, points):
        reference = min(point.accuracy for point in points)
        chosen = select_best_design(points, reference, 0.0, objective="area")
        assert chosen.hardware.total_area_mm2 == pytest.approx(
            min(point.hardware.total_area_mm2 for point in points)
        )

    def test_unsatisfiable_constraint_returns_none(self, points):
        assert select_best_design(points, 2.0, 0.0) is None

    def test_larger_loss_budget_never_increases_power(self, points):
        reference = max(point.accuracy for point in points)
        strict = select_best_design(points, reference, 0.0)
        relaxed = select_best_design(points, reference, 0.10)
        if strict is not None and relaxed is not None:
            assert relaxed.hardware.total_power_uw <= strict.hardware.total_power_uw

    def test_invalid_objective_rejected(self, points):
        with pytest.raises(ValueError):
            select_best_design(points, 0.5, 0.01, objective="delay")
