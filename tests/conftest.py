"""Shared fixtures for the test suite.

Fixtures deliberately use small datasets and shallow trees so the whole unit
test suite stays fast; the heavier end-to-end runs live in
``tests/test_integration.py`` and the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_classification_blobs
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.quantize import quantize_dataset
from repro.mltrees.evaluation import train_test_split
from repro.pdk.egfet import default_technology

#: Test files that exercise the full stack end-to-end (or spawn worker
#: processes); they are auto-marked ``slow`` and skipped by the tier-1 PR
#: gate (``pytest -m "not slow"``), which keeps the gate in the minutes
#: range.  The nightly CI job and a plain ``pytest`` run include them.
_SLOW_FILES = {"test_integration.py", "test_paper_claims.py"}


def pytest_addoption(parser):
    """``--run-nightly`` opts into the ``nightly``-marked validation tests.

    The runslow pattern from the pytest docs: nightly tests (multi-benchmark
    Monte-Carlo validation, hours-of-compute claims) are *skipped* by
    default -- a plain ``pytest`` run, and therefore the tier-1 verify
    command, never pays for them -- and the nightly CI job runs them with
    ``pytest -m nightly --run-nightly``.
    """
    parser.addoption(
        "--run-nightly",
        action="store_true",
        default=False,
        help="run tests marked 'nightly' (benchmark-wide Monte-Carlo validation)",
    )


def pytest_collection_modifyitems(config, items):
    """Auto-apply the ``fast``/``slow`` markers registered in pyproject.toml.

    Tests may also opt in explicitly with ``@pytest.mark.slow``; every test
    without a ``slow`` marker is marked ``fast``.  Marker audit: ``nightly``
    implies ``slow`` (so the ``-m "not slow"`` PR gate can never pick a
    nightly test up), and nightly tests additionally skip unless
    ``--run-nightly`` is given.
    """
    run_nightly = config.getoption("--run-nightly")
    skip_nightly = pytest.mark.skip(reason="nightly validation: pass --run-nightly")
    for item in items:
        if item.path.name in _SLOW_FILES:
            item.add_marker(pytest.mark.slow)
        if "nightly" in item.keywords:
            item.add_marker(pytest.mark.slow)
            if not run_nightly:
                item.add_marker(skip_nightly)
        if "slow" in item.keywords:
            continue
        item.add_marker(pytest.mark.fast)


@pytest.fixture(scope="session")
def technology():
    """Default calibrated EGFET technology."""
    return default_technology()


@pytest.fixture(scope="session")
def small_dataset():
    """A small, easy 3-class dataset (deterministic)."""
    X, y = make_classification_blobs(
        n_samples=240,
        n_features=5,
        n_classes=3,
        class_sep=2.5,
        noise_scale=0.8,
        seed=7,
    )
    return X, y


@pytest.fixture(scope="session")
def small_split(small_dataset):
    """Quantized 70/30 split of the small dataset."""
    X, y = small_dataset
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, seed=1)
    return (
        quantize_dataset(X_train, 4),
        quantize_dataset(X_test, 4),
        y_train,
        y_test,
    )


@pytest.fixture(scope="session")
def small_tree(small_split):
    """A depth-4 conventional tree trained on the small dataset."""
    X_train_levels, _, y_train, _ = small_split
    trainer = CARTTrainer(max_depth=4, resolution_bits=4, seed=3)
    return trainer.fit(X_train_levels, y_train, n_classes=3)


@pytest.fixture(scope="session")
def tiny_levels_dataset():
    """A tiny hand-checkable quantized dataset (2 features, 2 classes)."""
    X_levels = np.array(
        [
            [2, 10],
            [3, 12],
            [1, 9],
            [4, 11],
            [12, 2],
            [13, 3],
            [11, 1],
            [14, 4],
        ],
        dtype=np.int64,
    )
    y = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
    return X_levels, y
