"""End-to-end integration tests.

These tests tie every layer together on one real benchmark dataset: dataset
synthesis -> quantization/splitting -> training (conventional and ADC-aware)
-> unary translation -> bespoke ADC generation -> gate-level synthesis ->
functional equivalence -> hardware costing -> self-power analysis.
"""

import numpy as np
import pytest

from repro.baselines.mubarik import BaselineBespokeDesign
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.bespoke_adc import build_bespoke_frontend
from repro.core.codesign import CoDesignFramework
from repro.core.exploration import proposed_hardware_report
from repro.core.power_budget import analyze_self_power
from repro.core.unary_tree import UnaryDecisionTree
from repro.datasets.registry import load_dataset
from repro.mltrees.cart import fit_baseline_tree
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset


@pytest.fixture(scope="module")
def seeds_split():
    dataset = load_dataset("seeds", seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=0
    )
    return (
        dataset,
        quantize_dataset(X_train),
        quantize_dataset(X_test),
        y_train,
        y_test,
    )


class TestFullStackOnSeeds:
    def test_baseline_pipeline_end_to_end(self, seeds_split, technology):
        dataset, X_train, X_test, y_train, y_test = seeds_split
        fit = fit_baseline_tree(X_train, y_train, X_test, y_test, dataset.n_classes)
        assert fit.test_accuracy > 0.8

        baseline = BaselineBespokeDesign(fit.tree, technology)
        report = baseline.hardware_report()
        # Table I shape: baseline cannot be powered by a printed harvester.
        assert report.total_power_mw > 2.0
        assert report.adc_power_fraction > 0.5

        # The synthesized baseline netlist is functionally the trained tree.
        sample = X_test[:20]
        np.testing.assert_array_equal(
            np.array([baseline.netlist_predict_one_level(r) for r in sample]),
            fit.tree.predict_levels(sample),
        )

    def test_proposed_pipeline_end_to_end(self, seeds_split, technology):
        dataset, X_train, X_test, y_train, y_test = seeds_split
        fit = fit_baseline_tree(X_train, y_train, X_test, y_test, dataset.n_classes)

        unary = UnaryDecisionTree(fit.tree)
        frontend = build_bespoke_frontend(unary, technology)
        proposed = proposed_hardware_report(fit.tree, technology)
        baseline = BaselineBespokeDesign(fit.tree, technology).hardware_report()

        # Fig. 4 shape: the same model gets cheaper in the proposed architecture.
        assert proposed.total_area_mm2 < baseline.total_area_mm2
        assert proposed.total_power_uw < baseline.total_power_uw
        assert proposed.n_adc_comparators < baseline.n_adc_comparators

        # Full physical path: analog front end digits -> unary logic -> class.
        expected = fit.tree.predict_levels(X_test[:30])
        raw = X_test[:30] / 16.0
        for row, label in zip(raw, expected):
            assert unary.predict_from_digits(frontend.convert(row)) == label

    def test_adc_aware_training_end_to_end(self, seeds_split, technology):
        dataset, X_train, X_test, y_train, y_test = seeds_split
        fit = fit_baseline_tree(X_train, y_train, X_test, y_test, dataset.n_classes)

        aware = ADCAwareTrainer(max_depth=fit.depth, gini_threshold=0.01, seed=0).fit(
            X_train, y_train, dataset.n_classes
        )
        aware_accuracy = accuracy_score(y_test, aware.predict_levels(X_test))
        assert aware_accuracy >= fit.test_accuracy - 0.05

        aware_hw = proposed_hardware_report(aware, technology)
        analysis = analyze_self_power(aware_hw, technology)
        # Table II headline: the co-designed classifier is self-powered.
        assert analysis.is_self_powered

    def test_codesign_framework_on_real_benchmark(self, technology):
        framework = CoDesignFramework(
            technology=technology,
            depths=(2, 3, 4, 5),
            taus=(0.0, 0.01, 0.03),
            seed=0,
            include_approximate_baseline=True,
        )
        result = framework.run(load_dataset("vertebral_3c", seed=0))

        assert result.baseline.hardware.total_power_mw > 2.0
        fig4 = result.fig4_reduction()
        assert fig4.area_factor > 1.5
        assert fig4.power_factor > 1.5

        table2 = result.table2_reduction(0.01)
        assert table2 is not None
        assert table2.area_factor > 2.0
        assert table2.power_factor > 2.0

        self_power = result.self_power(0.01)
        assert self_power is not None and self_power.is_self_powered
