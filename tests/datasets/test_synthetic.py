"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_classification_blobs, make_ordinal_dataset


class TestMakeClassificationBlobs:
    def test_shapes_and_ranges(self):
        X, y = make_classification_blobs(120, 6, 3, seed=0)
        assert X.shape == (120, 6)
        assert y.shape == (120,)
        assert X.min() >= 0.0 and X.max() <= 1.0
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_deterministic_per_seed(self):
        first = make_classification_blobs(80, 4, 2, seed=9)
        second = make_classification_blobs(80, 4, 2, seed=9)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_different_seeds_differ(self):
        first = make_classification_blobs(80, 4, 2, seed=1)
        second = make_classification_blobs(80, 4, 2, seed=2)
        assert not np.array_equal(first[0], second[0])

    def test_class_weights_respected(self):
        _, y = make_classification_blobs(
            2000, 3, 2, class_weights=[0.9, 0.1], seed=0
        )
        assert 0.85 <= np.mean(y == 0) <= 0.95

    def test_separation_controls_difficulty(self):
        """Larger class_sep must make a nearest-centroid rule more accurate."""
        def centroid_accuracy(sep):
            X, y = make_classification_blobs(
                600, 4, 3, class_sep=sep, noise_scale=1.0, seed=3
            )
            centroids = np.stack([X[y == c].mean(axis=0) for c in range(3)])
            distances = np.linalg.norm(X[:, None, :] - centroids[None], axis=2)
            return np.mean(np.argmin(distances, axis=1) == y)

        assert centroid_accuracy(4.0) > centroid_accuracy(0.5) + 0.1

    def test_label_noise_reduces_purity(self):
        X, y_clean = make_classification_blobs(500, 4, 3, label_noise=0.0, seed=4)
        _, y_noisy = make_classification_blobs(500, 4, 3, label_noise=0.3, seed=4)
        assert np.mean(y_clean != y_noisy) > 0.1

    def test_multicluster_classes(self):
        X, y = make_classification_blobs(
            300, 5, 3, clusters_per_class=3, seed=0
        )
        assert X.shape == (300, 5)
        assert len(np.unique(y)) == 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_classification_blobs(10, 3, 1)
        with pytest.raises(ValueError):
            make_classification_blobs(10, 0, 2)
        with pytest.raises(ValueError):
            make_classification_blobs(10, 3, 2, clusters_per_class=0)
        with pytest.raises(ValueError):
            make_classification_blobs(10, 3, 2, class_weights=[1.0])


class TestMakeOrdinalDataset:
    def test_shapes_and_ranges(self):
        X, y = make_ordinal_dataset(300, 8, 5, seed=0)
        assert X.shape == (300, 8)
        assert y.min() >= 0 and y.max() <= 4
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_deterministic_per_seed(self):
        first = make_ordinal_dataset(100, 5, 4, seed=6)
        second = make_ordinal_dataset(100, 5, 4, seed=6)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_concentration_makes_distribution_imbalanced(self):
        _, y_flat = make_ordinal_dataset(
            3000, 6, 7, class_balance_temperature=0.0, seed=1
        )
        _, y_peaked = make_ordinal_dataset(
            3000, 6, 7, class_balance_temperature=1.0, class_concentration=9.0, seed=1
        )
        flat_max = np.bincount(y_flat, minlength=7).max() / len(y_flat)
        peaked_max = np.bincount(y_peaked, minlength=7).max() / len(y_peaked)
        assert peaked_max > flat_max + 0.15

    def test_labels_follow_latent_score_ordering(self):
        """Higher-labelled samples should have a larger mean latent direction."""
        X, y = make_ordinal_dataset(
            2000, 4, 4, noise_scale=0.1, class_balance_temperature=0.0, seed=2
        )
        means = [X[y == c].mean() for c in range(4) if np.any(y == c)]
        correlations = np.corrcoef(np.arange(len(means)), means)[0, 1]
        assert abs(correlations) > 0.7

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_ordinal_dataset(10, 3, 1)
        with pytest.raises(ValueError):
            make_ordinal_dataset(10, 3, 3, class_concentration=0.0)
