"""Unit tests for the dataset registry and the eight benchmark loaders."""

import numpy as np
import pytest

from repro.datasets.balance_scale import load_balance_scale
from repro.datasets.registry import (
    DATASET_ABBREVIATIONS,
    dataset_names,
    load_csv,
    load_dataset,
    paper_reference,
)

EXPECTED_SHAPES = {
    "whitewine": (4898, 11, 7),
    "cardio": (2126, 21, 3),
    "arrhythmia": (452, 32, 13),
    "balance_scale": (625, 4, 3),
    "vertebral_3c": (310, 6, 3),
    "seeds": (210, 7, 3),
    "vertebral_2c": (310, 6, 2),
    "pendigits": (7494, 16, 10),
}


class TestRegistry:
    def test_eight_benchmarks_in_paper_order(self):
        assert dataset_names() == list(EXPECTED_SHAPES)

    def test_abbreviations_cover_all_datasets(self):
        assert set(DATASET_ABBREVIATIONS) == set(dataset_names())
        assert set(DATASET_ABBREVIATIONS.values()) == {
            "WW", "CA", "AR", "BS", "V3", "SE", "V2", "PD"
        }

    def test_load_by_abbreviation_and_case_insensitivity(self):
        assert load_dataset("SE").name == "seeds"
        assert load_dataset("Seeds").name == "seeds"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("mnist")

    def test_paper_reference_available_for_all(self):
        for name in dataset_names():
            reference = paper_reference(name)
            assert 0.0 < reference["accuracy"] <= 1.0
            assert reference["total_power_mw"] > 2.0  # none self-powered in Table I


@pytest.mark.parametrize("name", list(EXPECTED_SHAPES))
class TestLoaders:
    def test_shape_matches_original_dataset(self, name):
        dataset = load_dataset(name)
        n_samples, n_features, n_classes = EXPECTED_SHAPES[name]
        assert dataset.n_samples == n_samples
        assert dataset.n_features == n_features
        assert dataset.n_classes == n_classes

    def test_normalized_features_and_valid_labels(self, name):
        dataset = load_dataset(name)
        assert dataset.X.min() >= 0.0
        assert dataset.X.max() <= 1.0
        assert dataset.y.min() >= 0
        assert dataset.y.max() < dataset.n_classes

    def test_deterministic(self, name):
        first = load_dataset(name, seed=0)
        second = load_dataset(name, seed=0)
        np.testing.assert_array_equal(first.X, second.X)
        np.testing.assert_array_equal(first.y, second.y)

    def test_metadata_present(self, name):
        dataset = load_dataset(name)
        assert dataset.metadata["abbreviation"] == DATASET_ABBREVIATIONS[name]
        assert "paper_baseline_accuracy" in dataset.metadata


class TestBalanceScaleExactness:
    def test_balance_scale_is_complete_factorial(self):
        dataset = load_balance_scale()
        distinct_rows = {tuple(row) for row in dataset.X}
        assert len(distinct_rows) == 625

    def test_balance_scale_rule(self):
        dataset = load_balance_scale()
        raw = dataset.X * 4.0 + 1.0  # undo normalization back to 1..5
        lw, ld, rw, rd = raw.T
        left_torque = lw * ld
        right_torque = rw * rd
        expected = np.where(
            left_torque > right_torque, 0, np.where(left_torque == right_torque, 1, 2)
        )
        np.testing.assert_array_equal(dataset.y, expected)

    def test_class_distribution_matches_uci(self):
        """The real dataset has 288 'L', 49 'B', 288 'R'."""
        dataset = load_balance_scale()
        np.testing.assert_array_equal(dataset.class_distribution(), [288, 49, 288])


class TestCsvLoader:
    def test_roundtrip_through_csv(self, tmp_path):
        path = tmp_path / "demo.csv"
        rows = ["1.0,10.0,0", "2.0,20.0,1", "3.0,30.0,1", "4.0,40.0,0"]
        path.write_text("\n".join(rows) + "\n")
        dataset = load_csv(str(path))
        assert dataset.n_samples == 4
        assert dataset.n_features == 2
        assert dataset.n_classes == 2
        assert dataset.X.min() >= 0.0 and dataset.X.max() <= 1.0

    def test_label_column_selection(self, tmp_path):
        path = tmp_path / "firstcol.csv"
        path.write_text("0,1.0,2.0\n1,3.0,4.0\n")
        dataset = load_csv(str(path), label_column=0)
        assert dataset.n_features == 2
        np.testing.assert_array_equal(dataset.y, [0, 1])

    def test_missing_values_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,,0\n2.0,3.0,1\n")
        with pytest.raises(ValueError, match="missing"):
            load_csv(str(path))
