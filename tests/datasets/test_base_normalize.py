"""Unit tests for the Dataset container and normalization helpers."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.normalize import MinMaxNormalizer, normalize_unit_range


def _valid_dataset(**overrides):
    defaults = dict(
        name="demo",
        X=np.array([[0.1, 0.9], [0.5, 0.2]]),
        y=np.array([0, 1]),
        feature_names=["a", "b"],
        class_names=["neg", "pos"],
    )
    defaults.update(overrides)
    return Dataset(**defaults)


class TestDataset:
    def test_properties(self):
        dataset = _valid_dataset()
        assert dataset.n_samples == 2
        assert dataset.n_features == 2
        assert dataset.n_classes == 2
        np.testing.assert_array_equal(dataset.class_distribution(), [1, 1])

    def test_rejects_unnormalized_features(self):
        with pytest.raises(ValueError):
            _valid_dataset(X=np.array([[0.1, 3.0], [0.5, 0.2]]))

    def test_rejects_shape_mismatches(self):
        with pytest.raises(ValueError):
            _valid_dataset(y=np.array([0, 1, 1]))
        with pytest.raises(ValueError):
            _valid_dataset(feature_names=["only_one"])
        with pytest.raises(ValueError):
            _valid_dataset(class_names=["only_one"])

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            _valid_dataset(y=np.array([0, -1]))

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            _valid_dataset(X=np.array([0.1, 0.2]))


class TestMinMaxNormalizer:
    def test_fit_transform_range(self):
        X = np.array([[1.0, 100.0], [3.0, 300.0], [2.0, 200.0]])
        scaled = MinMaxNormalizer().fit_transform(X)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)
        np.testing.assert_allclose(scaled[2], [0.5, 0.5])

    def test_transform_clips_out_of_range(self):
        normalizer = MinMaxNormalizer().fit(np.array([[0.0], [10.0]]))
        np.testing.assert_allclose(
            normalizer.transform(np.array([[-5.0], [15.0]])), [[0.0], [1.0]]
        )

    def test_constant_feature_handled(self):
        X = np.array([[2.0, 1.0], [2.0, 3.0]])
        scaled = MinMaxNormalizer().fit_transform(X)
        assert np.all(np.isfinite(scaled))
        np.testing.assert_allclose(scaled[:, 0], [0.0, 0.0])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.zeros((2, 2)))

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit(np.array([1.0, 2.0]))

    def test_one_shot_helper(self):
        X = np.array([[5.0], [10.0]])
        np.testing.assert_allclose(normalize_unit_range(X), [[0.0], [1.0]])
