"""Unit tests for the conventional CART trainer and baseline depth selection."""

import numpy as np
import pytest

from repro.mltrees.cart import CARTTrainer, fit_baseline_tree
from repro.mltrees.evaluation import accuracy_score


class TestCARTTrainerBasics:
    def test_perfectly_separable_data_is_learned(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        tree = CARTTrainer(max_depth=2, seed=0).fit(X_levels, y)
        np.testing.assert_array_equal(tree.predict_levels(X_levels), y)
        assert tree.depth == 1  # one split suffices

    def test_max_depth_respected(self, small_split):
        X_train, _, y_train, _ = small_split
        for depth in (1, 2, 3):
            tree = CARTTrainer(max_depth=depth, seed=0).fit(X_train, y_train, 3)
            assert tree.depth <= depth

    def test_deeper_trees_fit_training_data_at_least_as_well(self, small_split):
        X_train, _, y_train, _ = small_split
        accuracies = []
        for depth in (1, 2, 4, 6):
            tree = CARTTrainer(max_depth=depth, seed=0).fit(X_train, y_train, 3)
            accuracies.append(accuracy_score(y_train, tree.predict_levels(X_train)))
        assert all(b >= a - 1e-9 for a, b in zip(accuracies, accuracies[1:]))

    def test_reproducible_for_same_seed(self, small_split):
        X_train, _, y_train, _ = small_split
        tree_a = CARTTrainer(max_depth=4, seed=11).fit(X_train, y_train, 3)
        tree_b = CARTTrainer(max_depth=4, seed=11).fit(X_train, y_train, 3)
        assert tree_a.comparisons() == tree_b.comparisons()

    def test_min_samples_leaf_enforced(self, small_split):
        X_train, _, y_train, _ = small_split
        tree = CARTTrainer(max_depth=6, min_samples_leaf=10, seed=0).fit(
            X_train, y_train, 3
        )
        assert all(leaf.n_samples >= 10 for leaf in tree.leaves())

    def test_pure_dataset_returns_single_leaf(self):
        X_levels = np.array([[1, 2], [3, 4], [5, 6]])
        y = np.array([1, 1, 1])
        tree = CARTTrainer(max_depth=3, seed=0).fit(X_levels, y, n_classes=2)
        assert tree.n_decision_nodes == 0
        assert tree.root.prediction == 1

    def test_class_counts_recorded_on_nodes(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        tree = CARTTrainer(max_depth=2, seed=0).fit(X_levels, y)
        assert tree.root.class_counts == (4, 4)
        assert tree.root.n_samples == 8


class TestCARTTrainerValidation:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            CARTTrainer(max_depth=0)
        with pytest.raises(ValueError):
            CARTTrainer(resolution_bits=0)
        with pytest.raises(ValueError):
            CARTTrainer(min_samples_leaf=0)

    def test_shape_mismatch_rejected(self):
        trainer = CARTTrainer(max_depth=2)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 2), dtype=int), np.zeros(3, dtype=int))

    def test_empty_dataset_rejected(self):
        trainer = CARTTrainer(max_depth=2)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, 2), dtype=int), np.zeros(0, dtype=int))

    def test_levels_out_of_range_rejected(self):
        trainer = CARTTrainer(max_depth=2, resolution_bits=4)
        X_levels = np.array([[16, 2], [1, 2]])
        with pytest.raises(ValueError):
            trainer.fit(X_levels, np.array([0, 1]))

    def test_1d_input_rejected(self):
        trainer = CARTTrainer(max_depth=2)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros(4, dtype=int), np.zeros(4, dtype=int))


class TestBaselineDepthSelection:
    def test_selects_minimum_depth_achieving_max_accuracy(self, small_split):
        X_train, X_test, y_train, y_test = small_split
        result = fit_baseline_tree(X_train, y_train, X_test, y_test, 3, max_depth=6)
        best = max(result.accuracy_by_depth.values())
        assert result.test_accuracy == pytest.approx(best)
        shallower_with_best = [
            depth for depth, accuracy in result.accuracy_by_depth.items()
            if accuracy >= best - 1e-12
        ]
        assert result.depth == min(shallower_with_best)

    def test_accuracy_by_depth_covers_requested_range(self, small_split):
        X_train, X_test, y_train, y_test = small_split
        result = fit_baseline_tree(X_train, y_train, X_test, y_test, 3, max_depth=4)
        assert sorted(result.accuracy_by_depth) == [1, 2, 3, 4]

    def test_returned_tree_matches_reported_accuracy(self, small_split):
        X_train, X_test, y_train, y_test = small_split
        result = fit_baseline_tree(X_train, y_train, X_test, y_test, 3, max_depth=5)
        measured = accuracy_score(y_test, result.tree.predict_levels(X_test))
        assert measured == pytest.approx(result.test_accuracy)
        assert result.tree.depth <= result.depth
