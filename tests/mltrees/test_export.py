"""Unit tests for decision-path and comparison-summary export."""

import numpy as np

from repro.mltrees.export import comparisons_summary, tree_to_paths
from repro.mltrees.cart import CARTTrainer


class TestTreeToPaths:
    def test_path_count_equals_leaf_count(self, small_tree):
        paths = tree_to_paths(small_tree)
        assert len(paths) == small_tree.n_leaves

    def test_path_lengths_bounded_by_depth(self, small_tree):
        for path in tree_to_paths(small_tree):
            assert len(path.conditions) <= small_tree.depth

    def test_path_conditions_route_to_their_leaf(self, small_tree):
        """Any sample satisfying a path's conditions is predicted that path's class."""
        rng = np.random.default_rng(0)
        paths = tree_to_paths(small_tree)
        X = rng.integers(0, 16, size=(300, small_tree.n_features))
        predictions = small_tree.predict_levels(X)
        for path in paths:
            mask = np.ones(len(X), dtype=bool)
            for condition in path.conditions:
                column = X[:, condition.feature]
                if condition.is_ge:
                    mask &= column >= condition.level
                else:
                    mask &= column < condition.level
            if mask.any():
                assert set(predictions[mask]) == {path.prediction}

    def test_paths_partition_sample_space(self, small_tree):
        """Every sample satisfies exactly one path."""
        rng = np.random.default_rng(1)
        paths = tree_to_paths(small_tree)
        X = rng.integers(0, 16, size=(100, small_tree.n_features))
        for row in X:
            matches = 0
            for path in paths:
                ok = all(
                    (row[c.feature] >= c.level) == c.is_ge for c in path.conditions
                )
                matches += ok
            assert matches == 1

    def test_single_leaf_tree(self):
        X_levels = np.array([[1], [2]])
        y = np.array([1, 1])
        tree = CARTTrainer(max_depth=2).fit(X_levels, y, n_classes=2)
        paths = tree_to_paths(tree)
        assert len(paths) == 1
        assert paths[0].conditions == ()
        assert paths[0].prediction == 1

    def test_condition_string_rendering(self, small_tree):
        path = tree_to_paths(small_tree)[0]
        if path.conditions:
            text = str(path.conditions[0])
            assert "I" in text and (">=" in text or "<" in text)


class TestComparisonsSummary:
    def test_summary_consistent_with_tree(self, small_tree):
        summary = comparisons_summary(small_tree)
        assert summary.n_decision_nodes == small_tree.n_decision_nodes
        assert summary.n_unique_pairs <= summary.n_decision_nodes
        assert summary.used_features == tuple(small_tree.used_features())
        assert summary.required_levels == small_tree.required_levels()

    def test_required_levels_cover_all_comparisons(self, small_tree):
        summary = comparisons_summary(small_tree)
        for feature, level in small_tree.unique_comparisons():
            assert level in summary.required_levels[feature]
