"""Unit tests for the columnar candidate-split enumeration."""

import numpy as np
import pytest

from repro.mltrees.gini import weighted_gini
from repro.mltrees.split_search import (
    CandidateTable,
    SplitCandidate,
    best_gini,
    class_histogram,
    enumerate_split_candidates,
)


def _brute_force_gini(X_levels, y, indices, feature, threshold, n_classes):
    values = X_levels[indices, feature]
    labels = y[indices]
    left = labels[values < threshold]
    right = labels[values >= threshold]
    left_counts = np.bincount(left, minlength=n_classes)
    right_counts = np.bincount(right, minlength=n_classes)
    return weighted_gini(left_counts, right_counts)


class TestClassHistogram:
    def test_counts(self):
        y = np.array([0, 2, 2, 1, 0, 0])
        np.testing.assert_array_equal(class_histogram(y, 4), [3, 1, 2, 0])


class TestEnumerateSplitCandidates:
    def test_empty_node(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        assert enumerate_split_candidates(
            X_levels, y, np.array([], dtype=int), 2, 16
        ) == []

    def test_only_separating_thresholds_reported(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        for candidate in candidates:
            assert candidate.n_left > 0
            assert candidate.n_right > 0
            assert candidate.n_left + candidate.n_right == len(y)

    def test_gini_matches_brute_force(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        assert candidates, "the tiny dataset must produce candidates"
        for candidate in candidates:
            expected = _brute_force_gini(
                X_levels, y, indices, candidate.feature, candidate.threshold_level, 2
            )
            assert candidate.gini == pytest.approx(expected)

    def test_perfectly_separable_feature_reaches_zero_gini(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        assert best_gini(candidates) == pytest.approx(0.0)

    def test_min_samples_leaf_filters_candidates(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        all_candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16, 1)
        strict = enumerate_split_candidates(X_levels, y, indices, 2, 16, 3)
        assert len(strict) < len(all_candidates)
        for candidate in strict:
            assert candidate.n_left >= 3
            assert candidate.n_right >= 3

    def test_subset_of_node_indices_respected(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        subset = np.array([0, 1, 4, 5])
        candidates = enumerate_split_candidates(X_levels, y, subset, 2, 16)
        for candidate in candidates:
            assert candidate.n_left + candidate.n_right == len(subset)

    def test_candidates_on_random_data_match_brute_force(self):
        rng = np.random.default_rng(5)
        X_levels = rng.integers(0, 16, size=(60, 3))
        y = rng.integers(0, 3, size=60)
        indices = np.arange(60)
        candidates = enumerate_split_candidates(X_levels, y, indices, 3, 16)
        for candidate in candidates[::7]:
            expected = _brute_force_gini(
                X_levels, y, indices, candidate.feature, candidate.threshold_level, 3
            )
            assert candidate.gini == pytest.approx(expected)

    def test_best_gini_of_empty_list_is_infinite(self):
        assert best_gini([]) == float("inf")

    def test_out_of_range_levels_rejected(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        with pytest.raises(ValueError, match="quantized levels"):
            # levels up to 14 do not fit 8 quantization levels
            enumerate_split_candidates(X_levels, y, np.arange(len(y)), 2, 8)


class TestCandidateTable:
    @pytest.fixture(scope="class")
    def table(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        return enumerate_split_candidates(X_levels, y, np.arange(len(y)), 2, 16)

    def test_enumeration_returns_columnar_table(self, table):
        assert isinstance(table, CandidateTable)
        n = len(table)
        assert n > 0
        for column in (
            table.feature, table.threshold_level, table.gini,
            table.n_left, table.n_right,
        ):
            assert column.shape == (n,)
        assert table.gini.dtype == np.float64

    def test_rows_ordered_feature_major_threshold_ascending(self, table):
        order = np.lexsort((table.threshold_level, table.feature))
        np.testing.assert_array_equal(order, np.arange(len(table)))

    def test_compat_view_materializes_candidates(self, table):
        first = table[0]
        assert isinstance(first, SplitCandidate)
        assert isinstance(first.gini, float)
        assert isinstance(first.threshold_level, int)
        assert table.to_list()[0] == first
        assert list(table)[:3] == table[:3]

    def test_equality_against_candidate_lists(self, table):
        assert table == table.to_list()
        assert table == CandidateTable.from_candidates(table.to_list())
        assert not (table == table.to_list()[:-1])

    def test_select_by_mask(self, table):
        feature_zero = table.select(table.feature == 0)
        assert isinstance(feature_zero, CandidateTable)
        assert len(feature_zero) == int(np.sum(table.feature == 0))
        assert all(candidate.feature == 0 for candidate in feature_zero)

    def test_best_gini_routed_through_table(self, table):
        assert best_gini(table) == table.best_gini
        assert table.best_gini == min(c.gini for c in table)
        assert CandidateTable.empty().best_gini == float("inf")
        assert best_gini(CandidateTable.empty()) == float("inf")

    def test_empty_table_behaves_like_empty_sequence(self):
        empty = CandidateTable.empty()
        assert len(empty) == 0
        assert not empty
        assert empty == []
        assert empty.to_list() == []
