"""Unit tests for the columnar candidate-split enumeration."""

import numpy as np
import pytest

from repro.mltrees.gini import weighted_gini
from repro.mltrees.split_search import (
    CandidateTable,
    SplitCandidate,
    best_gini,
    class_histogram,
    enumerate_split_candidates,
    level_flip_matrix,
)


def _brute_force_gini(X_levels, y, indices, feature, threshold, n_classes):
    values = X_levels[indices, feature]
    labels = y[indices]
    left = labels[values < threshold]
    right = labels[values >= threshold]
    left_counts = np.bincount(left, minlength=n_classes)
    right_counts = np.bincount(right, minlength=n_classes)
    return weighted_gini(left_counts, right_counts)


class TestClassHistogram:
    def test_counts(self):
        y = np.array([0, 2, 2, 1, 0, 0])
        np.testing.assert_array_equal(class_histogram(y, 4), [3, 1, 2, 0])


class TestEnumerateSplitCandidates:
    def test_empty_node(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        assert enumerate_split_candidates(
            X_levels, y, np.array([], dtype=int), 2, 16
        ) == []

    def test_only_separating_thresholds_reported(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        for candidate in candidates:
            assert candidate.n_left > 0
            assert candidate.n_right > 0
            assert candidate.n_left + candidate.n_right == len(y)

    def test_gini_matches_brute_force(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        assert candidates, "the tiny dataset must produce candidates"
        for candidate in candidates:
            expected = _brute_force_gini(
                X_levels, y, indices, candidate.feature, candidate.threshold_level, 2
            )
            assert candidate.gini == pytest.approx(expected)

    def test_perfectly_separable_feature_reaches_zero_gini(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        assert best_gini(candidates) == pytest.approx(0.0)

    def test_min_samples_leaf_filters_candidates(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        all_candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16, 1)
        strict = enumerate_split_candidates(X_levels, y, indices, 2, 16, 3)
        assert len(strict) < len(all_candidates)
        for candidate in strict:
            assert candidate.n_left >= 3
            assert candidate.n_right >= 3

    def test_subset_of_node_indices_respected(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        subset = np.array([0, 1, 4, 5])
        candidates = enumerate_split_candidates(X_levels, y, subset, 2, 16)
        for candidate in candidates:
            assert candidate.n_left + candidate.n_right == len(subset)

    def test_candidates_on_random_data_match_brute_force(self):
        rng = np.random.default_rng(5)
        X_levels = rng.integers(0, 16, size=(60, 3))
        y = rng.integers(0, 3, size=60)
        indices = np.arange(60)
        candidates = enumerate_split_candidates(X_levels, y, indices, 3, 16)
        for candidate in candidates[::7]:
            expected = _brute_force_gini(
                X_levels, y, indices, candidate.feature, candidate.threshold_level, 3
            )
            assert candidate.gini == pytest.approx(expected)

    def test_best_gini_of_empty_list_is_infinite(self):
        assert best_gini([]) == float("inf")

    def test_out_of_range_levels_rejected(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        with pytest.raises(ValueError, match="quantized levels"):
            # levels up to 14 do not fit 8 quantization levels
            enumerate_split_candidates(X_levels, y, np.arange(len(y)), 2, 8)


class TestCandidateTable:
    @pytest.fixture(scope="class")
    def table(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        return enumerate_split_candidates(X_levels, y, np.arange(len(y)), 2, 16)

    def test_enumeration_returns_columnar_table(self, table):
        assert isinstance(table, CandidateTable)
        n = len(table)
        assert n > 0
        for column in (
            table.feature, table.threshold_level, table.gini,
            table.n_left, table.n_right,
        ):
            assert column.shape == (n,)
        assert table.gini.dtype == np.float64

    def test_rows_ordered_feature_major_threshold_ascending(self, table):
        order = np.lexsort((table.threshold_level, table.feature))
        np.testing.assert_array_equal(order, np.arange(len(table)))

    def test_compat_view_materializes_candidates(self, table):
        first = table[0]
        assert isinstance(first, SplitCandidate)
        assert isinstance(first.gini, float)
        assert isinstance(first.threshold_level, int)
        assert table.to_list()[0] == first
        assert list(table)[:3] == table[:3]

    def test_equality_against_candidate_lists(self, table):
        assert table == table.to_list()
        assert table == CandidateTable.from_candidates(table.to_list())
        assert not (table == table.to_list()[:-1])

    def test_select_by_mask(self, table):
        feature_zero = table.select(table.feature == 0)
        assert isinstance(feature_zero, CandidateTable)
        assert len(feature_zero) == int(np.sum(table.feature == 0))
        assert all(candidate.feature == 0 for candidate in feature_zero)

    def test_best_gini_routed_through_table(self, table):
        assert best_gini(table) == table.best_gini
        assert table.best_gini == min(c.gini for c in table)
        assert CandidateTable.empty().best_gini == float("inf")
        assert best_gini(CandidateTable.empty()) == float("inf")

    def test_empty_table_behaves_like_empty_sequence(self):
        empty = CandidateTable.empty()
        assert len(empty) == 0
        assert not empty
        assert empty == []
        assert empty.to_list() == []


class TestRobustnessColumns:
    """The margin / expected-flip columns behind offset-aware training."""

    SIGMA = 0.04

    @pytest.fixture(scope="class")
    def table(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        return enumerate_split_candidates(
            X_levels, y, np.arange(len(y)), 2, 16, flip_sigma=self.SIGMA
        )

    def test_columns_absent_unless_requested(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        nominal = enumerate_split_candidates(X_levels, y, np.arange(len(y)), 2, 16)
        assert nominal.margin is None
        assert nominal.expected_flips is None

    def test_columns_present_and_aligned(self, table):
        assert table.margin is not None and table.expected_flips is not None
        assert table.margin.shape == table.expected_flips.shape == (len(table),)
        assert np.all(np.isfinite(table.margin))
        assert np.all(table.margin > 0)
        assert np.all((table.expected_flips >= 0) & (table.expected_flips <= 0.5))

    def test_margin_is_distance_to_nearest_occupied_level(
        self, table, tiny_levels_dataset
    ):
        X_levels, y = tiny_levels_dataset
        for candidate, margin in zip(table, table.margin):
            values = X_levels[:, candidate.feature]
            centers = (values + 0.5) / 16.0
            expected = np.min(np.abs(centers - candidate.threshold_level / 16.0))
            assert margin == pytest.approx(expected)

    def test_expected_flips_match_per_sample_sum(self, table, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        matrix = level_flip_matrix(16, self.SIGMA)
        for candidate, flips in zip(table, table.expected_flips):
            values = X_levels[:, candidate.feature]
            expected = matrix[values, candidate.threshold_level - 1].mean()
            assert flips == pytest.approx(expected, rel=1e-12)

    def test_zero_sigma_zeroes_the_flips_but_keeps_margins(
        self, tiny_levels_dataset, table
    ):
        X_levels, y = tiny_levels_dataset
        frozen = enumerate_split_candidates(
            X_levels, y, np.arange(len(y)), 2, 16, flip_sigma=0.0
        )
        assert not frozen.expected_flips.any()
        np.testing.assert_allclose(frozen.margin, table.margin)

    def test_larger_sigma_means_more_expected_flips(self, tiny_levels_dataset, table):
        X_levels, y = tiny_levels_dataset
        wider = enumerate_split_candidates(
            X_levels, y, np.arange(len(y)), 2, 16, flip_sigma=2 * self.SIGMA
        )
        assert np.all(wider.expected_flips >= table.expected_flips)
        assert wider.expected_flips.sum() > table.expected_flips.sum()

    def test_thresholds_far_from_samples_flip_less(self, table):
        """expected_flips falls as the margin grows (per feature, same node).

        Thresholds sharing a nearest-sample margin may differ in how *many*
        samples sit nearby, so the comparison is between distinct margin
        groups: every strictly-larger-margin group flips less than the
        worst of the group below it.
        """
        for feature in np.unique(table.feature):
            sub = table.select(table.feature == feature)
            margins = np.unique(sub.margin)
            worst_by_margin = [
                sub.expected_flips[sub.margin == margin].max() for margin in margins
            ]
            assert np.all(np.diff(worst_by_margin) <= 1e-12)

    def test_select_carries_the_columns(self, table):
        sub = table.select(table.margin >= np.median(table.margin))
        assert sub.margin is not None and sub.expected_flips is not None
        assert len(sub) > 0
        assert np.all(sub.margin >= np.median(table.margin))

    def test_equality_ignores_robustness_columns(self, table, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        nominal = enumerate_split_candidates(X_levels, y, np.arange(len(y)), 2, 16)
        assert table == nominal  # same split geometry, columns or not
        assert table == nominal.to_list()
