"""Unit tests for the vectorized candidate-split enumeration."""

import numpy as np
import pytest

from repro.mltrees.gini import weighted_gini
from repro.mltrees.split_search import (
    best_gini,
    class_histogram,
    enumerate_split_candidates,
)


def _brute_force_gini(X_levels, y, indices, feature, threshold, n_classes):
    values = X_levels[indices, feature]
    labels = y[indices]
    left = labels[values < threshold]
    right = labels[values >= threshold]
    left_counts = np.bincount(left, minlength=n_classes)
    right_counts = np.bincount(right, minlength=n_classes)
    return weighted_gini(left_counts, right_counts)


class TestClassHistogram:
    def test_counts(self):
        y = np.array([0, 2, 2, 1, 0, 0])
        np.testing.assert_array_equal(class_histogram(y, 4), [3, 1, 2, 0])


class TestEnumerateSplitCandidates:
    def test_empty_node(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        assert enumerate_split_candidates(
            X_levels, y, np.array([], dtype=int), 2, 16
        ) == []

    def test_only_separating_thresholds_reported(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        for candidate in candidates:
            assert candidate.n_left > 0
            assert candidate.n_right > 0
            assert candidate.n_left + candidate.n_right == len(y)

    def test_gini_matches_brute_force(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        assert candidates, "the tiny dataset must produce candidates"
        for candidate in candidates:
            expected = _brute_force_gini(
                X_levels, y, indices, candidate.feature, candidate.threshold_level, 2
            )
            assert candidate.gini == pytest.approx(expected)

    def test_perfectly_separable_feature_reaches_zero_gini(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16)
        assert best_gini(candidates) == pytest.approx(0.0)

    def test_min_samples_leaf_filters_candidates(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        indices = np.arange(len(y))
        all_candidates = enumerate_split_candidates(X_levels, y, indices, 2, 16, 1)
        strict = enumerate_split_candidates(X_levels, y, indices, 2, 16, 3)
        assert len(strict) < len(all_candidates)
        for candidate in strict:
            assert candidate.n_left >= 3
            assert candidate.n_right >= 3

    def test_subset_of_node_indices_respected(self, tiny_levels_dataset):
        X_levels, y = tiny_levels_dataset
        subset = np.array([0, 1, 4, 5])
        candidates = enumerate_split_candidates(X_levels, y, subset, 2, 16)
        for candidate in candidates:
            assert candidate.n_left + candidate.n_right == len(subset)

    def test_candidates_on_random_data_match_brute_force(self):
        rng = np.random.default_rng(5)
        X_levels = rng.integers(0, 16, size=(60, 3))
        y = rng.integers(0, 3, size=60)
        indices = np.arange(60)
        candidates = enumerate_split_candidates(X_levels, y, indices, 3, 16)
        for candidate in candidates[::7]:
            expected = _brute_force_gini(
                X_levels, y, indices, candidate.feature, candidate.threshold_level, 3
            )
            assert candidate.gini == pytest.approx(expected)

    def test_best_gini_of_empty_list_is_infinite(self):
        assert best_gini([]) == float("inf")
