"""Unit tests for the decision-tree data structures."""

import numpy as np
import pytest

from repro.mltrees.tree import DecisionTree, TreeNode


def _manual_tree() -> DecisionTree:
    """Hand-built tree: root on feature 0 >= 8, right child on feature 1 >= 4."""
    leaf_left = TreeNode(node_id=1, prediction=0, n_samples=4, class_counts=(4, 0, 0), depth=1)
    leaf_rl = TreeNode(node_id=3, prediction=1, n_samples=2, class_counts=(0, 2, 0), depth=2)
    leaf_rr = TreeNode(node_id=4, prediction=2, n_samples=2, class_counts=(0, 0, 2), depth=2)
    right = TreeNode(
        node_id=2, prediction=1, n_samples=4, class_counts=(0, 2, 2),
        feature=1, threshold_level=4, left=leaf_rl, right=leaf_rr, depth=1,
    )
    root = TreeNode(
        node_id=0, prediction=0, n_samples=8, class_counts=(4, 2, 2),
        feature=0, threshold_level=8, left=leaf_left, right=right, depth=0,
    )
    return DecisionTree(root=root, n_features=3, n_classes=3, resolution_bits=4)


class TestTreeNode:
    def test_leaf_detection(self):
        leaf = TreeNode(node_id=0, prediction=1, n_samples=3, class_counts=(0, 3))
        assert leaf.is_leaf
        assert not _manual_tree().root.is_leaf

    def test_threshold_value(self):
        tree = _manual_tree()
        assert tree.root.threshold_value(4) == pytest.approx(0.5)

    def test_threshold_value_on_leaf_raises(self):
        leaf = TreeNode(node_id=0, prediction=0, n_samples=1, class_counts=(1,))
        with pytest.raises(ValueError):
            leaf.threshold_value(4)


class TestDecisionTreeStructure:
    def test_counts(self):
        tree = _manual_tree()
        assert tree.n_nodes == 5
        assert tree.n_decision_nodes == 2
        assert tree.n_leaves == 3
        assert tree.depth == 2

    def test_comparisons_and_uniqueness(self):
        tree = _manual_tree()
        assert sorted(tree.comparisons()) == [(0, 8), (1, 4)]
        assert tree.unique_comparisons() == [(0, 8), (1, 4)]
        assert tree.used_features() == [0, 1]

    def test_required_levels(self):
        tree = _manual_tree()
        assert tree.required_levels() == {0: (8,), 1: (4,)}

    def test_validation_of_constructor(self):
        root = TreeNode(node_id=0, prediction=0, n_samples=1, class_counts=(1, 0))
        with pytest.raises(ValueError):
            DecisionTree(root, n_features=0, n_classes=2)
        with pytest.raises(ValueError):
            DecisionTree(root, n_features=2, n_classes=1)
        with pytest.raises(ValueError):
            DecisionTree(root, n_features=2, n_classes=2, resolution_bits=0)


class TestDecisionTreePrediction:
    def test_single_sample_routing(self):
        tree = _manual_tree()
        assert tree.predict_one_level([3, 10, 0]) == 0      # left at root
        assert tree.predict_one_level([9, 2, 0]) == 1        # right, then left
        assert tree.predict_one_level([9, 6, 0]) == 2        # right, then right
        assert tree.predict_one_level([8, 4, 0]) == 2        # boundary goes right

    def test_vectorized_matches_scalar(self):
        tree = _manual_tree()
        rng = np.random.default_rng(0)
        X_levels = rng.integers(0, 16, size=(64, 3))
        vectorized = tree.predict_levels(X_levels)
        scalar = np.array([tree.predict_one_level(row) for row in X_levels])
        np.testing.assert_array_equal(vectorized, scalar)

    def test_predict_on_raw_features_quantizes_first(self):
        tree = _manual_tree()
        raw = np.array([[0.49, 0.9, 0.0], [0.51, 0.1, 0.0]])
        np.testing.assert_array_equal(tree.predict(raw), [0, 1])

    def test_predict_levels_requires_matrix(self):
        tree = _manual_tree()
        with pytest.raises(ValueError):
            tree.predict_levels(np.array([1, 2, 3]))

    def test_trained_tree_consistency(self, small_tree, small_split):
        """Raw-feature prediction equals quantized-level prediction."""
        _, X_test_levels, _, _ = small_split
        raw = X_test_levels / 16.0
        np.testing.assert_array_equal(
            small_tree.predict(raw), small_tree.predict_levels(X_test_levels)
        )
