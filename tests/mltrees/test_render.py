"""Unit tests for tree text/DOT rendering."""

import numpy as np

from repro.mltrees.cart import CARTTrainer
from repro.mltrees.render import render_tree_text, tree_to_dot


class TestRenderTreeText:
    def test_contains_every_decision_and_leaf(self, small_tree):
        text = render_tree_text(small_tree)
        assert text.count(">=") == small_tree.n_decision_nodes
        assert text.count("->") == small_tree.n_leaves

    def test_feature_and_class_names_used(self, small_tree):
        feature_names = [f"sensor_{i}" for i in range(small_tree.n_features)]
        class_names = ["alpha", "beta", "gamma"]
        text = render_tree_text(small_tree, feature_names, class_names)
        assert any(name in text for name in feature_names)
        assert any(name in text for name in class_names)

    def test_thresholds_on_quantization_grid(self, small_tree):
        text = render_tree_text(small_tree)
        assert "level" in text

    def test_single_leaf_tree(self):
        tree = CARTTrainer(max_depth=2).fit(
            np.array([[1, 2], [3, 4]]), np.array([0, 0]), n_classes=2
        )
        text = render_tree_text(tree)
        assert "->" in text and ">=" not in text


class TestTreeToDot:
    def test_structure(self, small_tree):
        dot = tree_to_dot(small_tree)
        assert dot.startswith("digraph decision_tree {")
        assert dot.rstrip().endswith("}")
        assert dot.count('[label="no"]') == small_tree.n_decision_nodes
        assert dot.count('[label="yes"]') == small_tree.n_decision_nodes
        # one node statement per tree node
        assert dot.count("n0 [") == 1

    def test_all_nodes_present(self, small_tree):
        dot = tree_to_dot(small_tree)
        for node in small_tree.nodes():
            assert f"n{node.node_id} " in dot or f"n{node.node_id} [" in dot

    def test_custom_graph_name_and_names(self, small_tree):
        dot = tree_to_dot(
            small_tree,
            feature_names=[f"s{i}" for i in range(small_tree.n_features)],
            class_names=["a", "b", "c"],
            graph_name="patch_tree",
        )
        assert "digraph patch_tree {" in dot
