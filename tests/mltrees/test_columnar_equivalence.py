"""Trainer equivalence: columnar split search vs the legacy object path.

The columnar :class:`~repro.mltrees.split_search.CandidateTable` refactor
must not change a single trained tree: same candidate ordering, bit-identical
Gini scores, identical RNG consumption at every tie-break.  These tests pit
the production trainers against the retained pre-refactor reference
(:mod:`repro.mltrees.legacy_split_search`) and require node-for-node
identical trees across every registered benchmark, several seeds, and
multiple tau values (CART and ADC-aware).

The four small benchmarks run in the fast tier-1 gate; the four large ones
are marked slow (the legacy trainer is the expensive side).
"""

import numpy as np
import pytest

from repro.core.adc_aware_training import ADCAwareTrainer
from repro.datasets.registry import dataset_names, load_dataset
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.legacy_split_search import (
    LegacyADCAwareTrainer,
    LegacyCARTTrainer,
    legacy_enumerate_split_candidates,
)
from repro.mltrees.quantize import quantize_dataset
from repro.mltrees.split_search import enumerate_split_candidates

SMALL_DATASETS = ("balance_scale", "vertebral_3c", "vertebral_2c", "seeds")
LARGE_DATASETS = tuple(sorted(set(dataset_names()) - set(SMALL_DATASETS)))
SEEDS = (0, 1)
TAUS = (0.0, 0.01, 0.03)
DEPTH = 5


@pytest.fixture(scope="module")
def quantized_split():
    """Memoized per-dataset quantized 70/30 training splits."""
    cache = {}

    def _get(name: str):
        if name not in cache:
            dataset = load_dataset(name, seed=0)
            X_train, _, y_train, _ = train_test_split(
                dataset.X, dataset.y, test_size=0.3, seed=0
            )
            cache[name] = (quantize_dataset(X_train), y_train, dataset.n_classes)
        return cache[name]

    return _get


#: An offset sigma large enough that a *live* flip penalty would reshape
#: trees; with ``robustness_weight=0`` it must change absolutely nothing.
DISABLED_PENALTY_SIGMA = 0.05


def _assert_trainers_equivalent(name: str, quantized_split) -> None:
    X_levels, y, n_classes = quantized_split(name)
    for seed in SEEDS:
        columnar = CARTTrainer(max_depth=DEPTH, seed=seed).fit(X_levels, y, n_classes)
        legacy = LegacyCARTTrainer(max_depth=DEPTH, seed=seed).fit(X_levels, y, n_classes)
        assert columnar == legacy, f"CART tree differs on {name} (seed {seed})"
        disabled = CARTTrainer(
            max_depth=DEPTH, seed=seed,
            training_sigma=DISABLED_PENALTY_SIGMA, robustness_weight=0.0,
        ).fit(X_levels, y, n_classes)
        assert disabled == legacy, (
            f"robustness_weight=0 CART tree differs on {name} (seed {seed})"
        )
        for tau in TAUS:
            columnar = ADCAwareTrainer(
                max_depth=DEPTH, gini_threshold=tau, seed=seed
            ).fit(X_levels, y, n_classes)
            legacy = LegacyADCAwareTrainer(
                max_depth=DEPTH, gini_threshold=tau, seed=seed
            ).fit(X_levels, y, n_classes)
            assert columnar == legacy, (
                f"ADC-aware tree differs on {name} (seed {seed}, tau {tau})"
            )
            # offset-aware machinery with the penalty disabled: node-for-node
            # identical trees and identical RNG consumption vs the oracle
            disabled = ADCAwareTrainer(
                max_depth=DEPTH, gini_threshold=tau, seed=seed,
                training_sigma=DISABLED_PENALTY_SIGMA, robustness_weight=0.0,
            ).fit(X_levels, y, n_classes)
            assert disabled == legacy, (
                f"robustness_weight=0 ADC-aware tree differs on {name} "
                f"(seed {seed}, tau {tau})"
            )


@pytest.mark.parametrize("name", SMALL_DATASETS)
def test_trees_node_for_node_identical_small(name, quantized_split):
    _assert_trainers_equivalent(name, quantized_split)


@pytest.mark.slow
@pytest.mark.parametrize("name", LARGE_DATASETS)
def test_trees_node_for_node_identical_large(name, quantized_split):
    _assert_trainers_equivalent(name, quantized_split)


@pytest.mark.parametrize("name", SMALL_DATASETS)
def test_candidate_tables_match_legacy_lists(name, quantized_split):
    """Root-node candidates: same order, bit-identical scores and counts."""
    X_levels, y, n_classes = quantized_split(name)
    indices = np.arange(len(y))
    table = enumerate_split_candidates(X_levels, y, indices, n_classes, 16)
    legacy = legacy_enumerate_split_candidates(X_levels, y, indices, n_classes, 16)
    assert len(table) == len(legacy) > 0
    assert table == legacy  # compat-view equality materializes each row
    # bit-identical floats, not approximate equality
    assert [c.gini for c in table] == [c.gini for c in legacy]


def test_offset_penalty_inert_unless_both_knobs_positive(quantized_split):
    """The flip penalty needs sigma > 0 AND weight > 0; otherwise nominal."""
    X_levels, y, n_classes = quantized_split("seeds")
    nominal = ADCAwareTrainer(max_depth=5, gini_threshold=0.01, seed=0).fit(
        X_levels, y, n_classes
    )
    for sigma, weight in ((0.0, 2.0), (0.04, 0.0), (0.0, 0.0)):
        inert = ADCAwareTrainer(
            max_depth=5, gini_threshold=0.01, seed=0,
            training_sigma=sigma, robustness_weight=weight,
        ).fit(X_levels, y, n_classes)
        assert inert == nominal, f"sigma={sigma}, weight={weight} must be inert"
    aware = ADCAwareTrainer(
        max_depth=5, gini_threshold=0.01, seed=0,
        training_sigma=0.04, robustness_weight=1.0,
    ).fit(X_levels, y, n_classes)
    assert aware != nominal  # ... and really participates when both are set


def test_ablation_flag_preserved_under_columnar_path(quantized_split):
    """prefer_low_power_levels=False (the Section III-C ablation) still matches."""
    X_levels, y, n_classes = quantized_split("seeds")
    columnar = ADCAwareTrainer(
        max_depth=4, gini_threshold=0.02, seed=0, prefer_low_power_levels=False
    ).fit(X_levels, y, n_classes)
    legacy = LegacyADCAwareTrainer(
        max_depth=4, gini_threshold=0.02, seed=0, prefer_low_power_levels=False
    ).fit(X_levels, y, n_classes)
    assert columnar == legacy
