"""Unit tests for Gini impurity utilities."""

import pytest

from repro.mltrees.gini import gini_impurity, weighted_gini


class TestGiniImpurity:
    def test_pure_node_is_zero(self):
        assert gini_impurity([10, 0, 0]) == pytest.approx(0.0)
        assert gini_impurity([0, 0, 7]) == pytest.approx(0.0)

    def test_balanced_binary_node(self):
        assert gini_impurity([5, 5]) == pytest.approx(0.5)

    def test_balanced_multiclass_node(self):
        assert gini_impurity([3, 3, 3]) == pytest.approx(2 / 3)

    def test_empty_node_is_zero_by_convention(self):
        assert gini_impurity([0, 0]) == pytest.approx(0.0)

    def test_bounds(self):
        assert 0.0 <= gini_impurity([7, 2, 1]) < 1.0

    def test_scale_invariance(self):
        assert gini_impurity([2, 6]) == pytest.approx(gini_impurity([20, 60]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            gini_impurity([-1, 3])

    def test_known_value(self):
        # p = (0.25, 0.75) -> 1 - (0.0625 + 0.5625) = 0.375
        assert gini_impurity([1, 3]) == pytest.approx(0.375)


class TestWeightedGini:
    def test_perfect_split_is_zero(self):
        assert weighted_gini([5, 0], [0, 5]) == pytest.approx(0.0)

    def test_useless_split_keeps_parent_impurity(self):
        assert weighted_gini([2, 2], [3, 3]) == pytest.approx(0.5)

    def test_weighting_by_child_sizes(self):
        # left: 8 samples pure, right: 2 samples balanced
        expected = (8 * 0.0 + 2 * 0.5) / 10
        assert weighted_gini([8, 0], [1, 1]) == pytest.approx(expected)

    def test_empty_split_is_zero(self):
        assert weighted_gini([0, 0], [0, 0]) == pytest.approx(0.0)

    def test_weighted_gini_bounded_by_worst_child(self):
        value = weighted_gini([3, 1], [1, 4])
        assert 0.0 <= value <= max(
            gini_impurity([3, 1]), gini_impurity([1, 4])
        )
