"""Unit tests for quantization and evaluation helpers."""

import numpy as np
import pytest

from repro.mltrees.evaluation import accuracy_score, confusion_matrix, train_test_split
from repro.mltrees.quantize import level_to_value, quantization_error, quantize_dataset


class TestQuantizeDataset:
    def test_levels_in_range(self):
        X = np.random.default_rng(0).random((50, 4))
        levels = quantize_dataset(X, 4)
        assert levels.min() >= 0
        assert levels.max() <= 15
        assert levels.dtype.kind == "i"

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            quantize_dataset(np.array([0.1, 0.2]), 4)

    def test_grid_points_exact(self):
        X = np.array([[0.0, 0.5, 1.0]])
        np.testing.assert_array_equal(quantize_dataset(X, 4), [[0, 8, 15]])

    def test_level_to_value(self):
        assert level_to_value(8, 4) == pytest.approx(0.5)
        assert level_to_value(1, 2) == pytest.approx(0.25)

    def test_quantization_error_decreases_with_resolution(self):
        X = np.random.default_rng(1).random((200, 3))
        errors = [quantization_error(X, bits) for bits in (1, 2, 4, 6)]
        assert all(b < a for a, b in zip(errors, errors[1:]))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0])) == 0.75

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([0, 1]), np.array([0]))

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 2]), np.array([0, 1, 1, 2]), 3)
        expected = np.array([[1, 1, 0], [0, 1, 0], [0, 0, 1]])
        np.testing.assert_array_equal(matrix, expected)
        assert matrix.sum() == 4


class TestTrainTestSplit:
    @pytest.fixture
    def data(self):
        rng = np.random.default_rng(2)
        X = rng.random((200, 3))
        y = np.repeat(np.arange(4), 50)
        return X, y

    def test_sizes(self, data):
        X, y = data
        X_train, X_test, y_train, y_test = train_test_split(X, y, 0.3, seed=0)
        assert len(X_train) + len(X_test) == 200
        assert len(X_train) == len(y_train)
        assert abs(len(X_test) - 60) <= 4

    def test_stratification_preserves_class_balance(self, data):
        X, y = data
        _, _, y_train, y_test = train_test_split(X, y, 0.3, seed=0)
        for label in range(4):
            assert abs(np.sum(y_test == label) - 15) <= 2
            assert abs(np.sum(y_train == label) - 35) <= 2

    def test_reproducible(self, data):
        X, y = data
        first = train_test_split(X, y, 0.3, seed=42)
        second = train_test_split(X, y, 0.3, seed=42)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[3], second[3])

    def test_different_seeds_differ(self, data):
        X, y = data
        first = train_test_split(X, y, 0.3, seed=1)
        second = train_test_split(X, y, 0.3, seed=2)
        assert not np.array_equal(first[0], second[0])

    def test_no_sample_duplicated_or_lost(self, data):
        X, y = data
        X_train, X_test, _, _ = train_test_split(X, y, 0.3, seed=5)
        combined = np.vstack([X_train, X_test])
        assert combined.shape == X.shape
        # every original row appears exactly once
        original = {tuple(row) for row in np.round(X, 12)}
        recovered = {tuple(row) for row in np.round(combined, 12)}
        assert original == recovered

    def test_unstratified_split(self, data):
        X, y = data
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, 0.25, seed=0, stratify=False
        )
        assert len(X_test) == 50
        assert len(y_train) == 150

    def test_invalid_test_size(self, data):
        X, y = data
        with pytest.raises(ValueError):
            train_test_split(X, y, 0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y, 1.0)

    def test_length_mismatch(self, data):
        X, y = data
        with pytest.raises(ValueError):
            train_test_split(X, y[:-1], 0.3)
