"""Tests for the ``cosim`` CLI command and the ``--ppa-backend`` flag."""

import json

import pytest

import repro.circuits.cosim as cosim_module
from repro.circuits.cosim import CosimReport
from repro.cli import build_parser, main


def _no_simulator(monkeypatch):
    monkeypatch.setattr(cosim_module.shutil, "which", lambda name: None)


def _report_file(tmp_path, area=7.5, power=321.0):
    payload = {
        "schema_version": 1,
        "kind": "ppa_report",
        "source": "cli-test",
        "modules": {"*": {"area_mm2": area, "power_uw": power}},
    }
    path = tmp_path / "report.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestCosimParser:
    def test_defaults(self):
        args = build_parser().parse_args(["cosim", "--dataset", "seeds"])
        assert args.simulator == "auto"
        assert args.depth == 4 and args.tau == 0.01 and args.seed == 0
        assert args.vectors is None and args.emit is None and args.json is None

    def test_simulator_choices(self):
        parser = build_parser()
        for name in ("auto", "iverilog", "verilator"):
            assert parser.parse_args(
                ["cosim", "--dataset", "seeds", "--simulator", name]
            ).simulator == name
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["cosim", "--dataset", "seeds", "--simulator", "modelsim"]
            )


class TestCosimCommand:
    def test_generation_only_without_simulator(self, capsys, monkeypatch, tmp_path):
        _no_simulator(monkeypatch)
        json_path = tmp_path / "cosim.json"
        code = main([
            "cosim", "--dataset", "seeds", "--depth", "2",
            "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "generation-only" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["skipped"] is True
        assert payload["kind"] == "cosim_report"

    def test_explicit_missing_simulator_fails(self, capsys, monkeypatch):
        _no_simulator(monkeypatch)
        code = main([
            "cosim", "--dataset", "seeds", "--depth", "2",
            "--simulator", "iverilog",
        ])
        assert code == 2
        assert "not installed" in capsys.readouterr().err

    def test_emit_writes_sources(self, capsys, monkeypatch, tmp_path):
        _no_simulator(monkeypatch)
        code = main([
            "cosim", "--dataset", "seeds", "--depth", "2",
            "--emit", str(tmp_path / "rtl"),
        ])
        assert code == 0
        dut = (tmp_path / "rtl" / "dut.v").read_text(encoding="utf-8")
        tb = (tmp_path / "rtl" / "tb.v").read_text(encoding="utf-8")
        assert "module seeds_label_logic(" in dut
        assert "$fatal(1);" in tb

    def test_passing_simulation_exits_zero(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setattr(
            cosim_module, "find_simulator", lambda preference: "iverilog"
        )
        monkeypatch.setattr(
            cosim_module,
            "run_cosim",
            lambda netlist, **kwargs: CosimReport(
                module=netlist.name, simulator="iverilog", n_vectors=64,
                n_mismatches=0, exhaustive=True, returncode=0, passed=True,
            ),
        )
        json_path = tmp_path / "cosim.json"
        code = main([
            "cosim", "--dataset", "seeds", "--depth", "2",
            "--json", str(json_path),
        ])
        assert code == 0
        assert "PASSED: 64 exhaustive vectors" in capsys.readouterr().out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["passed"] is True and payload["skipped"] is False

    def test_mismatches_exit_one(self, capsys, monkeypatch):
        monkeypatch.setattr(
            cosim_module, "find_simulator", lambda preference: "iverilog"
        )
        monkeypatch.setattr(
            cosim_module,
            "run_cosim",
            lambda netlist, **kwargs: CosimReport(
                module=netlist.name, simulator="iverilog", n_vectors=64,
                n_mismatches=2, exhaustive=True, returncode=1, passed=False,
                log="vector 3: class_0 expected 1'b0, got 1",
            ),
        )
        code = main(["cosim", "--dataset", "seeds", "--depth", "2"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "vector 3" in captured.err


class TestPPABackendFlag:
    def test_flag_present_on_costing_commands(self):
        parser = build_parser()
        for command in ("table1", "table2", "fig4", "fig5", "surface",
                        "explore", "search", "datasheet"):
            extra = []
            if command in ("explore", "search", "datasheet"):
                extra += ["--dataset", "seeds"]
            if command == "search":
                extra += ["--budget", "4"]
            if command == "surface":
                extra += ["--sigma", "0.02"]
            args = parser.parse_args([command] + extra)
            assert args.ppa_backend is None

    def test_datasheet_quotes_report_numbers(self, capsys, tmp_path):
        report = _report_file(tmp_path, area=7.5, power=321.0)
        code = main([
            "datasheet", "--dataset", "seeds", "--depth", "2",
            "--ppa-backend", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DATASHEET" in out
        assert "7.5" in out  # the report's digital area, not the analytic one

    def test_datasheet_analytic_spelling_matches_default(self, capsys):
        main(["datasheet", "--dataset", "seeds", "--depth", "2"])
        default = capsys.readouterr().out
        main([
            "datasheet", "--dataset", "seeds", "--depth", "2",
            "--ppa-backend", "analytic",
        ])
        explicit = capsys.readouterr().out
        assert default == explicit
