"""Unit tests for the CSV/JSON export helpers and the multi-seed statistics."""

import csv
import json

import pytest

from repro.analysis.export import results_to_json, rows_to_csv
from repro.analysis.stats import MetricStatistics, run_multi_seed
from repro.analysis.tables import table1_rows
from repro.core.codesign import CoDesignFramework
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def single_result(technology):
    framework = CoDesignFramework(
        technology=technology, max_baseline_depth=4, depths=(2, 3, 4),
        taus=(0.0, 0.01), seed=0, include_approximate_baseline=False,
    )
    return framework.run(load_dataset("vertebral_2c", seed=0))


class TestRowsToCsv:
    def test_roundtrip(self, tmp_path, single_result):
        rows = table1_rows([single_result])
        path = rows_to_csv(rows, tmp_path / "table1.csv")
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == len(rows)
        assert loaded[0]["dataset"] == "vertebral_2c"
        assert float(loaded[0]["total_power_mw"]) == pytest.approx(
            rows[0]["total_power_mw"]
        )

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv([], tmp_path / "empty.csv")

    def test_inconsistent_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv([{"a": 1}, {"b": 2}], tmp_path / "bad.csv")


class TestResultsToJson:
    def test_json_payload_structure(self, tmp_path, single_result):
        path = results_to_json([single_result], tmp_path / "results.json")
        payload = json.loads(path.read_text())
        assert len(payload) == 1
        entry = payload[0]
        assert entry["dataset"] == "vertebral_2c"
        assert entry["baseline"]["hardware"]["total_power_mw"] > 0
        assert "selected" in entry
        assert entry["approximate_baseline"] is None
        assert "exploration" not in entry

    def test_exploration_included_on_request(self, tmp_path, single_result):
        path = results_to_json(
            [single_result], tmp_path / "full.json", include_exploration=True
        )
        payload = json.loads(path.read_text())
        exploration = payload[0]["exploration"]
        assert len(exploration) == len(single_result.exploration)
        assert {"depth", "tau", "accuracy"} <= set(exploration[0])


class TestMetricStatistics:
    def test_from_values(self):
        stats = MetricStatistics.from_values("metric", [1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.values == (1.0, 2.0, 3.0)


class TestRunMultiSeed:
    def test_two_seed_summary(self):
        summary = run_multi_seed(
            "vertebral_2c",
            seeds=(0, 1),
            accuracy_loss=0.01,
            depths=(2, 3),
            taus=(0.0, 0.01),
        )
        assert summary.dataset == "vertebral_2c"
        assert summary.seeds == (0, 1)
        assert len(summary.codesign_power_mw.values) == 2
        assert summary.area_reduction_x.mean > 1.0
        assert summary.power_reduction_x.mean > 1.0
        assert 0.0 <= summary.self_powered_fraction <= 1.0
        # co-design must use (on average) far less power than the baseline
        assert summary.codesign_power_mw.mean < summary.baseline_power_mw.mean

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            run_multi_seed("seeds", seeds=())
