"""Unit tests for rendering, figure series and table rows."""

import pytest

from repro.analysis.figures import fig3_series, fig4_series, fig5_series
from repro.analysis.render import render_table
from repro.analysis.tables import table1_rows, table1_summary, table2_rows, table2_summary
from repro.core.codesign import CoDesignFramework
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs


@pytest.fixture(scope="module")
def suite_results(technology):
    """Two tiny co-design runs standing in for the benchmark suite."""
    framework = CoDesignFramework(
        technology=technology, max_baseline_depth=3, depths=(2, 3), taus=(0.0, 0.02),
        seed=0, include_approximate_baseline=True,
    )
    results = []
    for index, name in enumerate(["alpha", "beta"]):
        X, y = make_classification_blobs(
            260, 5, 3, class_sep=2.0, noise_scale=1.0, label_noise=0.05,
            clusters_per_class=2, seed=30 + index,
        )
        dataset = Dataset(
            name=name, X=X, y=y,
            feature_names=[f"f{i}" for i in range(5)],
            class_names=["x", "y", "z"],
            metadata={"abbreviation": name[:2].upper()},
        )
        results.append(framework.run(dataset))
    return results


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "value"], [["a", 1.2345], ["long_name", 42]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.23" in text
        assert "long_name" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only_one"]])

    def test_boolean_and_inf_formatting(self):
        text = render_table(["flag", "x"], [[True, float("inf")]])
        assert "yes" in text
        assert "inf" in text


class TestFig3Series:
    def test_covers_every_window(self, technology):
        series = fig3_series(technology, resolution_bits=4)
        # sum over n of (15 - n + 1) windows = 120 points for 4 bits
        assert len(series["points"]) == 120
        assert series["conventional_area_mm2"] > 10.0

    def test_area_constant_within_digit_count(self, technology):
        series = fig3_series(technology)
        by_count = {}
        for point in series["points"]:
            by_count.setdefault(point["n_unary_digits"], set()).add(
                round(point["area_mm2"], 9)
            )
        assert all(len(areas) == 1 for areas in by_count.values())

    def test_power_grows_with_start_level(self, technology):
        series = fig3_series(technology)
        four_ud = [p for p in series["points"] if p["n_unary_digits"] == 4]
        four_ud.sort(key=lambda p: p["start_level"])
        powers = [p["power_uw"] for p in four_ud]
        assert powers == sorted(powers)
        assert powers[-1] > 2.5 * powers[0]

    def test_every_bespoke_point_cheaper_than_conventional(self, technology):
        series = fig3_series(technology)
        for point in series["points"]:
            assert point["area_mm2"] < series["conventional_area_mm2"]
            assert point["power_uw"] < series["conventional_power_uw"]


class TestFig4Fig5Series:
    def test_fig4_rows_and_averages(self, suite_results):
        series = fig4_series(suite_results)
        assert len(series["rows"]) == 2
        for row in series["rows"]:
            assert row["area_reduction_x"] > 1.0
            assert row["power_reduction_x"] > 1.0
        assert series["average_area_reduction_x"] > 1.0

    def test_fig5_panels(self, suite_results):
        panels = fig5_series(suite_results, accuracy_losses=(0.0, 0.05))
        assert set(panels) == {0.0, 0.05}
        for panel in panels.values():
            assert len(panel["rows"]) <= 2
            for row in panel["rows"]:
                assert row["area_reduction_pct"] <= 100.0

    def test_fig4_empty_input(self):
        series = fig4_series([])
        assert series["rows"] == []
        assert series["average_area_reduction_x"] == 0.0


class TestTables:
    def test_table1_rows_fields(self, suite_results):
        rows = table1_rows(suite_results)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["accuracy_pct"] <= 100.0
            assert row["total_area_mm2"] >= row["adc_area_mm2"]
            assert row["total_power_mw"] >= row["adc_power_mw"]
            assert 0.0 <= row["adc_power_fraction"] <= 1.0

    def test_table1_summary(self, suite_results):
        summary = table1_summary(table1_rows(suite_results))
        assert summary["average_total_area_mm2"] > 0
        assert 0.0 < summary["average_adc_power_fraction"] <= 1.0

    def test_table1_summary_empty(self):
        summary = table1_summary([])
        assert summary["average_total_power_mw"] == 0.0

    def test_table2_rows_fields(self, suite_results):
        rows = table2_rows(suite_results, accuracy_loss=0.01)
        assert rows, "at least one selected design expected"
        for row in rows:
            assert row["area_reduction_vs_baseline_x"] > 1.0
            assert row["power_reduction_vs_baseline_x"] > 1.0
            assert isinstance(row["self_powered"], bool)

    def test_table2_summary(self, suite_results):
        summary = table2_summary(table2_rows(suite_results))
        assert summary["average_power_reduction_vs_baseline_x"] > 1.0

    def test_table2_summary_empty(self):
        summary = table2_summary([])
        assert summary["average_area_mm2"] == 0.0


class TestRobustTables:
    @pytest.fixture(scope="class")
    def exploration(self):
        from repro.analysis.experiments import RobustExploration, run_robust_exploration

        result = run_robust_exploration(
            "vertebral_2c", sigma_v=0.02, n_trials=5, seed=0,
            depths=(2, 3), taus=(0.0, 0.01), use_cache=False,
        )
        assert isinstance(result, RobustExploration)
        return result

    def test_exploration_rows_carry_drop_columns(self, exploration):
        from repro.analysis.tables import exploration_rows

        rows = exploration_rows(exploration.points)
        assert len(rows) == 4
        for row, point in zip(rows, exploration.points):
            assert row["depth"] == point.depth
            assert row["mean_accuracy_drop_pct"] == pytest.approx(
                point.mean_accuracy_drop * 100.0
            )
            assert row["worst_case_drop_pct"] == pytest.approx(
                point.worst_case_drop * 100.0
            )

    def test_exploration_rows_none_before_the_pass(self, exploration):
        import dataclasses

        from repro.analysis.tables import exploration_rows

        nominal = [
            dataclasses.replace(point, robustness=None)
            for point in exploration.points
        ]
        rows = exploration_rows(nominal)
        assert all(row["mean_accuracy_drop_pct"] is None for row in rows)
        assert all(row["worst_case_drop_pct"] is None for row in rows)

    def test_table2_robust_rows_select_under_joint_constraint(self, exploration):
        from repro.analysis.tables import table2_robust_rows, table2_robust_summary

        rows = table2_robust_rows(
            [exploration], accuracy_loss=0.05, max_accuracy_drop=1.0
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["feasible"] is True
        assert row["dataset"] == "vertebral_2c"
        assert row["sigma_mv"] == pytest.approx(20.0)
        assert row["mean_accuracy_drop_pct"] is not None
        summary = table2_robust_summary(rows)
        assert summary["n_feasible"] == 1
        assert summary["average_power_mw"] == pytest.approx(row["power_mw"])

    def test_table2_robust_rows_report_infeasible_benchmarks(self, exploration):
        from repro.analysis.tables import table2_robust_rows, table2_robust_summary

        rows = table2_robust_rows(
            [exploration], accuracy_loss=0.05, max_accuracy_drop=-1.0
        )
        assert rows[0]["feasible"] is False
        assert rows[0]["power_mw"] is None
        summary = table2_robust_summary(rows)
        assert summary["n_feasible"] == 0
        # Regression: zero feasible rows used to report 0.0 "averages" --
        # averages over nothing are undefined, not zero.
        assert summary["average_power_mw"] is None
        assert summary["average_area_mm2"] is None
        assert summary["average_mean_accuracy_drop_pct"] is None

    def test_table2_robust_render_prints_na_when_nothing_feasible(
        self, exploration
    ):
        from repro.cli import _render_table2_robust

        text = _render_table2_robust(
            [exploration], sigma=0.02, trials=5,
            training_sigma=0.0, max_accuracy_drop=-1.0,
        )
        assert "averages: n/a (no feasible designs)" in text
        assert "0/1 benchmarks feasible" in text

    def test_surface_rows_carry_per_sigma_drop_columns(self, exploration):
        from repro.analysis.experiments import run_robustness_surface
        from repro.analysis.tables import (
            robustness_surface_rows,
            robustness_surface_summary,
        )

        surface = run_robustness_surface(
            "vertebral_2c", (0.01, 0.02), n_trials=5, seed=0,
            depths=(2, 3), taus=(0.0, 0.01), use_cache=False,
        )
        rows = robustness_surface_rows(surface)
        assert len(rows) == 4  # one per (depth, tau)
        for row in rows:
            assert len(row["mean_drop_pct_by_sigma"]) == 2
            assert len(row["worst_drop_pct_by_sigma"]) == 2
        # the 20 mV column agrees with the single-sigma exploration fixture
        lookup = {
            (row["depth"], row["tau"]): row["mean_drop_pct_by_sigma"][1]
            for row in rows
        }
        for point in exploration.points:
            assert lookup[(point.depth, point.tau)] == pytest.approx(
                point.mean_accuracy_drop * 100.0
            )

        summary = robustness_surface_summary(surface)
        assert [entry["sigma_v"] for entry in summary["per_sigma"]] == [0.01, 0.02]
        for entry in summary["per_sigma"]:
            assert (
                entry["max_mean_accuracy_drop_pct"]
                >= entry["average_mean_accuracy_drop_pct"]
            )
