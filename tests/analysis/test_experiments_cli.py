"""Tests for the benchmark-suite orchestration and the CLI."""

import pytest

from repro.analysis.experiments import run_benchmark_suite
from repro.cli import build_parser, main


class TestRunBenchmarkSuite:
    def test_runs_named_small_benchmarks(self):
        results = run_benchmark_suite(
            datasets=("vertebral_2c",),
            seed=0,
            include_approximate_baseline=False,
            depths=(2, 3),
            taus=(0.0, 0.01),
        )
        assert len(results) == 1
        assert results[0].dataset == "vertebral_2c"
        assert results[0].selected

    def test_results_are_cached_per_configuration(self):
        kwargs = dict(
            datasets=("vertebral_2c",),
            seed=0,
            include_approximate_baseline=False,
            depths=(2, 3),
            taus=(0.0, 0.01),
        )
        first = run_benchmark_suite(**kwargs)
        second = run_benchmark_suite(**kwargs)
        assert first[0] is second[0]

    def test_fast_flag_selects_small_benchmarks(self):
        results = run_benchmark_suite(
            fast=True,
            include_approximate_baseline=False,
            depths=(2,),
            taus=(0.0,),
        )
        names = {result.dataset for result in results}
        assert names == {"balance_scale", "vertebral_3c", "vertebral_2c", "seeds"}


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ["fig3", "table1", "fig4", "fig5", "table2"]:
            args = parser.parse_args(
                [command] if command == "fig3" else [command, "--fast"]
            )
            assert callable(args.handler)

    def test_fig3_command_prints_series(self, capsys):
        exit_code = main(["fig3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Conventional 4-bit flash ADC" in captured.out
        assert "#UD" in captured.out

    def test_table1_command_on_named_dataset(self, capsys):
        exit_code = main(["table1", "--datasets", "vertebral_2c", "--seed", "0"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "vertebral_2c" in captured.out
        assert "Averages" in captured.out

    def test_fig4_command_on_named_dataset(self, capsys):
        exit_code = main(["fig4", "--datasets", "vertebral_2c"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "area reduction" in captured.out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--datasets", "not_a_dataset"])

    def test_datasheet_command(self, capsys):
        exit_code = main(
            ["datasheet", "--dataset", "balance_scale", "--depth", "3", "--tau", "0.01"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "DATASHEET" in captured.out
        assert "Bespoke ADC front end" in captured.out
        assert "self-power:" in captured.out

    def test_datasheet_requires_dataset(self):
        with pytest.raises(SystemExit):
            main(["datasheet"])
