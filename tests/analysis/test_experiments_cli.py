"""Tests for the benchmark-suite orchestration and the CLI."""

import subprocess
import sys
import textwrap

import pytest

from repro.analysis.experiments import run_benchmark_suite
from repro.cli import build_parser, main
from repro.core.store import ResultStore

#: Tiny exploration grid keeping orchestration tests in the sub-second range.
SMALL_GRID = dict(depths=(2, 3), taus=(0.0, 0.01))


class TestRunBenchmarkSuite:
    def test_runs_named_small_benchmarks(self):
        results = run_benchmark_suite(
            datasets=("vertebral_2c",),
            seed=0,
            include_approximate_baseline=False,
            depths=(2, 3),
            taus=(0.0, 0.01),
        )
        assert len(results) == 1
        assert results[0].dataset == "vertebral_2c"
        assert results[0].selected

    def test_results_are_cached_per_configuration(self):
        kwargs = dict(
            datasets=("vertebral_2c",),
            seed=0,
            include_approximate_baseline=False,
            depths=(2, 3),
            taus=(0.0, 0.01),
        )
        first = run_benchmark_suite(**kwargs)
        second = run_benchmark_suite(**kwargs)
        assert first[0] is second[0]

    def test_negative_jobs_rejected_even_on_warm_cache(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        kwargs = dict(
            datasets=("vertebral_2c",),
            include_approximate_baseline=False,
            store=store,
            **SMALL_GRID,
        )
        run_benchmark_suite(**kwargs)  # warm the cache
        with pytest.raises(ValueError, match="jobs"):
            run_benchmark_suite(jobs=-3, **kwargs)

    def test_fast_flag_selects_small_benchmarks(self):
        results = run_benchmark_suite(
            fast=True,
            include_approximate_baseline=False,
            depths=(2,),
            taus=(0.0,),
        )
        names = {result.dataset for result in results}
        assert names == {"balance_scale", "vertebral_3c", "vertebral_2c", "seeds"}


class TestCacheKeyNormalization:
    def test_dataset_order_and_container_type_hit_the_same_entries(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        kwargs = dict(seed=0, include_approximate_baseline=False, store=store, **SMALL_GRID)

        first = run_benchmark_suite(datasets=("vertebral_2c", "seeds"), **kwargs)
        assert store.stats.stores == 2

        # Different order, list instead of tuple, and paper abbreviations must
        # all alias the two already-computed entries (memo identity included).
        second = run_benchmark_suite(datasets=["SE", "V2"], **kwargs)
        assert store.stats.stores == 2  # nothing recomputed
        assert second[0] is first[1]
        assert second[1] is first[0]
        assert [r.dataset for r in second] == ["seeds", "vertebral_2c"]

    def test_memo_is_bounded(self, tmp_path, monkeypatch):
        from repro.analysis import experiments

        monkeypatch.setattr(experiments, "_MEMO_MAX_ENTRIES", 2)
        store = ResultStore(cache_dir=tmp_path)
        for seed in range(3):
            run_benchmark_suite(
                datasets=("vertebral_2c",),
                seed=seed,
                include_approximate_baseline=False,
                store=store,
                depths=(2,),
                taus=(0.0,),
            )
        assert len(experiments._MEMO) <= 2
        assert store.stats.stores == 3  # evicted entries remain on disk

    def test_duplicate_requests_share_one_computation(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        results = run_benchmark_suite(
            datasets=("seeds", "seeds"),
            include_approximate_baseline=False,
            store=store,
            **SMALL_GRID,
        )
        assert store.stats.stores == 1
        assert results[0] is results[1]


class TestResultStorePersistence:
    #: Script run in fresh interpreters: one fast suite over the on-disk store,
    #: printing the store's hit/miss counters.
    SCRIPT = textwrap.dedent(
        """
        from repro.analysis.experiments import run_benchmark_suite
        from repro.core.store import ResultStore

        store = ResultStore(cache_dir={cache_dir!r})
        results = run_benchmark_suite(
            fast=True,
            include_approximate_baseline=False,
            depths=(2,),
            taus=(0.0,),
            store=store,
        )
        print("RESULTS", len(results), "HITS", store.stats.hits,
              "MISSES", store.stats.misses, "STORES", store.stats.stores)
        """
    )

    def _run(self, cache_dir) -> str:
        completed = subprocess.run(
            [sys.executable, "-c", self.SCRIPT.format(cache_dir=str(cache_dir))],
            capture_output=True,
            text=True,
            check=True,
        )
        return completed.stdout

    def test_second_process_hits_the_on_disk_store(self, tmp_path):
        first = self._run(tmp_path / "store")
        assert "RESULTS 4 HITS 0 MISSES 4 STORES 4" in first

        second = self._run(tmp_path / "store")
        assert "RESULTS 4 HITS 4 MISSES 0 STORES 0" in second


class TestSerialParallelEquivalence:
    def test_parallel_suite_equals_serial_suite(self):
        kwargs = dict(
            datasets=("vertebral_2c", "seeds"),
            seed=0,
            include_approximate_baseline=True,
            use_cache=False,
            **SMALL_GRID,
        )
        serial = run_benchmark_suite(jobs=None, **kwargs)
        parallel = run_benchmark_suite(jobs=4, **kwargs)

        assert len(serial) == len(parallel) == 2
        for left, right in zip(serial, parallel):
            assert left is not right  # use_cache=False: genuinely recomputed
            assert left == right  # full structural equality, trees included

    def test_single_dataset_parallel_sweep_equals_serial(self):
        kwargs = dict(
            datasets=("seeds",),
            include_approximate_baseline=False,
            use_cache=False,
            **SMALL_GRID,
        )
        (serial,) = run_benchmark_suite(jobs=None, **kwargs)
        (parallel,) = run_benchmark_suite(jobs=2, **kwargs)
        assert serial.exploration == parallel.exploration
        assert serial == parallel


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ["fig3", "table1", "fig4", "fig5", "table2"]:
            args = parser.parse_args(
                [command] if command == "fig3" else [command, "--fast"]
            )
            assert callable(args.handler)

    def test_fig3_command_prints_series(self, capsys):
        exit_code = main(["fig3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Conventional 4-bit flash ADC" in captured.out
        assert "#UD" in captured.out

    def test_table1_command_on_named_dataset(self, capsys):
        exit_code = main(["table1", "--datasets", "vertebral_2c", "--seed", "0"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "vertebral_2c" in captured.out
        assert "Averages" in captured.out

    def test_fig4_command_on_named_dataset(self, capsys):
        exit_code = main(["fig4", "--datasets", "vertebral_2c"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "area reduction" in captured.out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--datasets", "not_a_dataset"])

    def test_suite_commands_accept_jobs_and_cache_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table2", "--fast", "--jobs", "8", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.jobs == 8
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is True

    def test_negative_jobs_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--fast", "--jobs", "-3"])

    def test_table1_with_jobs_and_cache_dir(self, capsys, tmp_path):
        argv = [
            "table1",
            "--datasets",
            "vertebral_2c",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path / "cli-cache"),
        ]
        assert main(argv) == 0
        assert "vertebral_2c" in capsys.readouterr().out
        # the run populated the pointed-at store
        assert len(ResultStore(cache_dir=tmp_path / "cli-cache")) >= 1

    def test_datasheet_command(self, capsys):
        exit_code = main(
            ["datasheet", "--dataset", "balance_scale", "--depth", "3", "--tau", "0.01"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "DATASHEET" in captured.out
        assert "Bespoke ADC front end" in captured.out
        assert "self-power:" in captured.out

    def test_datasheet_requires_dataset(self):
        with pytest.raises(SystemExit):
            main(["datasheet"])


class TestRunVariationAnalysis:
    def test_computes_and_caches_per_seed_summaries(self, tmp_path):
        from repro.analysis.experiments import run_variation_analysis

        store = ResultStore(cache_dir=tmp_path / "var-cache")
        kwargs = dict(
            sigma_v=0.02, n_trials=5, seed=0, depth=3, tau=0.01, store=store
        )
        first = run_variation_analysis("vertebral_2c", **kwargs)
        assert len(first.accuracies) == 5
        assert len(store) == 1
        second = run_variation_analysis("vertebral_2c", **kwargs)
        assert second.accuracies == first.accuracies
        assert store.lifetime_stats()["hits"] >= 1

    def test_no_cache_bypasses_store(self, tmp_path):
        from repro.analysis.experiments import run_variation_analysis

        store = ResultStore(cache_dir=tmp_path / "var-cache")
        analysis = run_variation_analysis(
            "vertebral_2c", sigma_v=0.01, n_trials=3, depth=3,
            store=store, use_cache=False,
        )
        assert len(analysis.accuracies) == 3
        assert len(store) == 0

    def test_dataset_abbreviation_hits_same_entry(self, tmp_path):
        from repro.analysis.experiments import run_variation_analysis

        store = ResultStore(cache_dir=tmp_path / "var-cache")
        kwargs = dict(sigma_v=0.02, n_trials=4, depth=3, store=store)
        run_variation_analysis("vertebral_2c", **kwargs)
        run_variation_analysis("V2", **kwargs)
        assert len(store) == 1


class TestVariationCommand:
    def test_variation_command_renders_table(self, capsys, tmp_path):
        exit_code = main(
            [
                "variation", "--dataset", "vertebral_2c", "--sigmas", "0", "0.02",
                "--trials", "5", "--depth", "3",
                "--cache-dir", str(tmp_path / "cli-var-cache"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sigma (mV)" in captured.out
        assert "mean drop (%)" in captured.out
        assert len(ResultStore(cache_dir=tmp_path / "cli-var-cache")) == 2

    def test_variation_requires_dataset(self):
        with pytest.raises(SystemExit):
            main(["variation"])


class TestCacheCommand:
    def test_cache_stats_clear_prune_round_trip(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache-cli"
        store = ResultStore(cache_dir=cache_dir)
        store.put(store.make_key(n=1), "payload")
        store.get(store.make_key(n=1))
        store.flush_stats()

        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:   1" in out
        assert "1 hits" in out

        assert main(
            ["cache", "prune", "--older-than-days", "30", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "pruned 0 entries" in capsys.readouterr().out
        assert len(store) == 1

        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert len(store) == 0

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestReadOnlyStoreHits:
    def test_cache_hit_does_not_require_write_access(self, tmp_path):
        import os

        from repro.analysis.experiments import run_variation_analysis

        cache_dir = tmp_path / "ro-cache"
        store = ResultStore(cache_dir=cache_dir)
        kwargs = dict(sigma_v=0.02, n_trials=4, depth=3)
        first = run_variation_analysis("vertebral_2c", store=store, **kwargs)
        os.chmod(cache_dir, 0o555)
        try:
            reader = ResultStore(cache_dir=cache_dir)
            second = run_variation_analysis("vertebral_2c", store=reader, **kwargs)
            assert second.accuracies == first.accuracies
        finally:
            os.chmod(cache_dir, 0o755)


class TestRunRobustExploration:
    def test_points_carry_cached_robustness_columns(self, tmp_path):
        from repro.analysis.experiments import run_robust_exploration

        store = ResultStore(cache_dir=tmp_path / "robust-cache")
        kwargs = dict(sigma_v=0.03, n_trials=6, seed=0, store=store, **SMALL_GRID)
        exploration = run_robust_exploration("vertebral_2c", **kwargs)
        assert exploration.dataset == "vertebral_2c"
        assert len(exploration.points) == 4
        for point in exploration.points:
            assert point.robustness is not None
            assert len(point.robustness.accuracies) == 6
        # 1 suite entry + one variation entry per design point
        assert store.stats.stores == 1 + 4

        again = run_robust_exploration("vertebral_2c", **kwargs)
        assert store.stats.stores == 1 + 4  # everything reused
        assert again.points == exploration.points

    def test_serial_equals_parallel(self):
        from repro.analysis.experiments import run_robust_exploration

        kwargs = dict(
            sigma_v=0.03, n_trials=6, seed=0, use_cache=False, **SMALL_GRID
        )
        serial = run_robust_exploration("vertebral_2c", jobs=None, **kwargs)
        parallel = run_robust_exploration("vertebral_2c", jobs=2, **kwargs)
        assert serial.points == parallel.points

    def test_shares_cache_entries_with_variation_cli(self, tmp_path):
        from repro.analysis.experiments import (
            run_robust_exploration,
            run_variation_analysis,
        )

        store = ResultStore(cache_dir=tmp_path / "shared-cache")
        exploration = run_robust_exploration(
            "vertebral_2c", sigma_v=0.02, n_trials=5, seed=0,
            depths=(3,), taus=(0.01,), store=store,
        )
        stores_before = store.stats.stores
        # Same (dataset, seed, sigma, trials, depth, tau) => same entry.
        analysis = run_variation_analysis(
            "vertebral_2c", sigma_v=0.02, n_trials=5, seed=0, depth=3, tau=0.01,
            store=store,
        )
        assert store.stats.stores == stores_before  # hit, not a recomputation
        assert analysis == exploration.points[0].robustness

    def test_selection_under_drop_constraint(self):
        from repro.analysis.experiments import run_robust_exploration

        exploration = run_robust_exploration(
            "vertebral_2c", sigma_v=0.02, n_trials=5, seed=0, **SMALL_GRID
        )
        unconstrained = exploration.select(max_accuracy_loss=0.05)
        assert unconstrained is not None
        constrained = exploration.select(max_accuracy_loss=0.05, max_accuracy_drop=1.0)
        assert constrained is not None  # every drop is <= 100%
        impossible = exploration.select(max_accuracy_loss=0.05, max_accuracy_drop=-1.0)
        assert impossible is None


class TestExploreCommand:
    def test_explore_renders_grid_and_selection(self, capsys, tmp_path):
        exit_code = main(
            [
                "explore", "--dataset", "vertebral_2c", "--sigma", "0.04",
                "--max-accuracy-drop", "0.05", "--trials", "5",
                "--cache-dir", str(tmp_path / "explore-cache"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mean drop (%)" in captured.out
        assert "selected:" in captured.out
        # full paper grid (49 points) cached: suite entry + per-point analyses
        assert len(ResultStore(cache_dir=tmp_path / "explore-cache")) == 1 + 49

    def test_explore_writes_json_export(self, capsys, tmp_path):
        import json

        out = tmp_path / "exploration.json"
        exit_code = main(
            [
                "explore", "--dataset", "vertebral_2c", "--sigma", "0.02",
                "--trials", "4", "--cache-dir", str(tmp_path / "json-cache"),
                "--json", str(out),
            ]
        )
        assert exit_code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["dataset"] == "vertebral_2c"
        assert len(payload["points"]) == 49
        assert all(p["mean_accuracy_drop"] is not None for p in payload["points"])

    def test_explore_json_records_objective(self, capsys, tmp_path):
        import json

        out = tmp_path / "area.json"
        assert main(
            [
                "explore", "--dataset", "vertebral_2c", "--sigma", "0.02",
                "--trials", "4", "--objective", "area",
                "--cache-dir", str(tmp_path / "area-cache"), "--json", str(out),
            ]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["constraints"]["objective"] == "area"
        selected = payload["selected"]
        # the exported point is the area-optimal feasible design
        assert selected["total_area_mm2"] == min(
            p["total_area_mm2"] for p in payload["points"]
            if p["accuracy"] >= payload["baseline_accuracy"] - 0.01 - 1e-12
        )

    def test_table2_offset_aware_variant(self, capsys, tmp_path):
        exit_code = main(
            [
                "table2", "--datasets", "vertebral_2c", "--sigma", "0.02",
                "--trials", "4", "--max-accuracy-drop", "0.05",
                "--cache-dir", str(tmp_path / "t2-cache"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Offset-aware co-design selection" in captured.out
        assert "nominal training" in captured.out
        assert "mean drop (%)" in captured.out


class TestTrainingSigmaCli:
    """Golden tests for the offset-aware-training CLI surface."""

    def test_parsers_accept_training_sigma(self):
        parser = build_parser()
        args = parser.parse_args(
            ["explore", "--dataset", "seeds", "--training-sigma", "0.04"]
        )
        assert args.training_sigma == 0.04
        args = parser.parse_args(
            ["table2", "--fast", "--sigma", "0.04", "--training-sigma", "0.02"]
        )
        assert args.training_sigma == 0.02
        # nominal by default on both commands
        assert build_parser().parse_args(
            ["explore", "--dataset", "seeds"]
        ).training_sigma == 0.0

    def test_negative_training_sigma_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["explore", "--dataset", "seeds", "--training-sigma", "-0.01"]
            )

    def test_table2_training_sigma_without_sigma_is_an_error(self, capsys):
        """No --sigma means no robustness selection: refuse instead of
        silently rendering the nominal table."""
        assert main(["table2", "--fast", "--training-sigma", "0.04"]) == 2
        captured = capsys.readouterr()
        assert "--training-sigma requires --sigma" in captured.err

    def test_explore_header_names_the_training_mode(self, capsys, tmp_path):
        argv = [
            "explore", "--dataset", "vertebral_2c", "--sigma", "0.04",
            "--trials", "4", "--cache-dir", str(tmp_path / "hdr-cache"),
        ]
        assert main(argv) == 0
        assert "nominal training" in capsys.readouterr().out
        assert main(argv + ["--training-sigma", "0.04"]) == 0
        assert "offset-aware training at 40 mV" in capsys.readouterr().out

    def test_explore_json_records_training_parameters(self, capsys, tmp_path):
        import json

        out = tmp_path / "aware.json"
        assert main(
            [
                "explore", "--dataset", "vertebral_2c", "--sigma", "0.02",
                "--trials", "4", "--training-sigma", "0.02",
                "--cache-dir", str(tmp_path / "aware-cache"), "--json", str(out),
            ]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["training_sigma"] == 0.02
        assert payload["robustness_weight"] == 1.0
        assert len(payload["points"]) == 49
        # the nominal export stays nominal
        nominal_out = tmp_path / "nominal.json"
        assert main(
            [
                "explore", "--dataset", "vertebral_2c", "--sigma", "0.02",
                "--trials", "4",
                "--cache-dir", str(tmp_path / "aware-cache"),
                "--json", str(nominal_out),
            ]
        ) == 0
        capsys.readouterr()
        assert json.loads(nominal_out.read_text())["training_sigma"] == 0.0

    def test_nominal_and_offset_aware_runs_cache_separately(self, capsys, tmp_path):
        cache = tmp_path / "sep-cache"
        base = [
            "explore", "--dataset", "vertebral_2c", "--sigma", "0.02",
            "--trials", "4", "--cache-dir", str(cache),
        ]
        assert main(base) == 0
        capsys.readouterr()
        nominal_entries = len(ResultStore(cache_dir=cache))
        assert nominal_entries == 1 + 49
        # the offset-aware run must not alias the nominal entries ...
        assert main(base + ["--training-sigma", "0.02"]) == 0
        capsys.readouterr()
        assert len(ResultStore(cache_dir=cache)) == 2 * nominal_entries
        # ... and a rerun reuses them all
        assert main(base + ["--training-sigma", "0.02"]) == 0
        capsys.readouterr()
        assert len(ResultStore(cache_dir=cache)) == 2 * nominal_entries

    def test_table2_training_sigma_golden_output(self, capsys, tmp_path):
        assert main(
            [
                "table2", "--datasets", "vertebral_2c", "--sigma", "0.04",
                "--training-sigma", "0.04", "--trials", "4",
                "--max-accuracy-drop", "0.05",
                "--cache-dir", str(tmp_path / "t2-aware-cache"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Offset-aware co-design selection" in out
        assert "offset-aware training at 40 mV" in out
        assert "mean drop (%)" in out
        assert "benchmarks feasible" in out

    def test_run_robust_exploration_carries_training_parameters(self):
        from repro.analysis.experiments import run_robust_exploration

        kwargs = dict(
            sigma_v=0.03, n_trials=4, seed=0, use_cache=False, **SMALL_GRID
        )
        nominal = run_robust_exploration("vertebral_2c", **kwargs)
        aware = run_robust_exploration(
            "vertebral_2c", training_sigma=0.03, **kwargs
        )
        assert nominal.training_sigma == 0.0
        assert aware.training_sigma == 0.03
        assert aware.robustness_weight == 1.0
        # both passes see the same nominal baseline
        assert aware.baseline_accuracy == nominal.baseline_accuracy


class TestCachePruneBySize:
    def test_prune_max_bytes_evicts_lru(self, capsys, tmp_path):
        cache_dir = tmp_path / "lru-cli"
        store = ResultStore(cache_dir=cache_dir)
        import os as _os
        import time as _time

        now = _time.time()
        for index in range(3):
            key = store.make_key(n=index)
            store.put(key, b"x" * 2000)
            _os.utime(store.path_for(key), (now - 100 * (3 - index),) * 2)

        budget = store.disk_stats().total_bytes - 1
        assert main(
            ["cache", "prune", "--max-bytes", str(budget), "--cache-dir", str(cache_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 1 least-recently-used entries" in out
        assert len(store) == 2
        assert store.make_key(n=0) not in store  # oldest went first

    def test_prune_accepts_age_and_size_together(self, capsys, tmp_path):
        cache_dir = tmp_path / "both-cli"
        store = ResultStore(cache_dir=cache_dir)
        store.put(store.make_key(n=1), "payload")
        assert main(
            [
                "cache", "prune", "--older-than-days", "30",
                "--max-bytes", "0", "--cache-dir", str(cache_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned 0 entries" in out
        assert "evicted 1 least-recently-used entries" in out
        assert len(store) == 0

    def test_prune_requires_a_criterion(self, capsys, tmp_path):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--older-than-days and/or --max-bytes" in capsys.readouterr().err

    def test_negative_max_bytes_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "prune", "--max-bytes", "-1"])


class TestResolveSuiteDatasets:
    def test_defaults_and_passthrough(self):
        from repro.analysis.experiments import (
            FAST_DATASETS,
            resolve_suite_datasets,
        )
        from repro.datasets.registry import dataset_names

        assert resolve_suite_datasets(None, fast=False) == tuple(dataset_names())
        assert resolve_suite_datasets(None, fast=True) == FAST_DATASETS
        assert resolve_suite_datasets(("SE", "V2"), fast=True) == ("SE", "V2")


class TestShardedSuiteApi:
    def test_shard_filter_partitions_datasets(self, tmp_path):
        from repro.core.sharding import ShardSpec

        store = ResultStore(cache_dir=tmp_path / "cache")
        kwargs = dict(
            datasets=("vertebral_2c", "seeds", "balance_scale"),
            include_approximate_baseline=False,
            store=store,
            **SMALL_GRID,
        )
        full = run_benchmark_suite(**kwargs)
        by_shard = [
            run_benchmark_suite(shard=ShardSpec(index, 3), **kwargs)
            for index in (1, 2, 3)
        ]
        names = [r.dataset for results in by_shard for r in results]
        assert sorted(names) == sorted(r.dataset for r in full)  # disjoint cover
        lookup = {r.dataset: r for r in full}
        for results in by_shard:
            for result in results:
                assert result is lookup[result.dataset]  # memo identity: reused

    def test_cache_only_requires_use_cache(self):
        with pytest.raises(ValueError, match="cache_only"):
            run_benchmark_suite(
                datasets=("seeds",), use_cache=False, cache_only=True, **SMALL_GRID
            )

    def test_cache_only_raises_listing_missing_units(self, tmp_path):
        from repro.core.sharding import MissingResultsError

        store = ResultStore(cache_dir=tmp_path / "empty")
        with pytest.raises(MissingResultsError) as excinfo:
            run_benchmark_suite(
                datasets=("vertebral_2c",),
                include_approximate_baseline=False,
                store=store,
                cache_only=True,
                **SMALL_GRID,
            )
        assert "suite:vertebral_2c" in str(excinfo.value)
        assert len(excinfo.value.missing) == 1

    def test_cache_only_serves_from_store_with_zero_misses(self, tmp_path):
        from repro.analysis.experiments import clear_memo

        store = ResultStore(cache_dir=tmp_path / "warm")
        kwargs = dict(
            datasets=("vertebral_2c",),
            include_approximate_baseline=False,
            **SMALL_GRID,
        )
        first = run_benchmark_suite(store=store, **kwargs)
        clear_memo()
        reader = ResultStore(cache_dir=tmp_path / "warm")
        results = run_benchmark_suite(store=reader, cache_only=True, **kwargs)
        assert results == first
        assert reader.stats.hits == 1
        assert reader.stats.misses == 0   # zero recomputation, zero misses
        assert reader.stats.stores == 0

    def test_cache_only_bypasses_the_memo(self, tmp_path):
        """A warm in-process memo must not mask a missing store entry."""
        from repro.core.sharding import MissingResultsError

        store = ResultStore(cache_dir=tmp_path / "gone")
        kwargs = dict(
            datasets=("vertebral_2c",),
            include_approximate_baseline=False,
            **SMALL_GRID,
        )
        run_benchmark_suite(store=store, **kwargs)  # computes and memoizes
        store.clear()
        with pytest.raises(MissingResultsError):
            run_benchmark_suite(store=store, cache_only=True, **kwargs)


class TestRunPlanShard:
    def test_shards_cover_plan_and_cache_only_render_matches_unsharded(
        self, tmp_path
    ):
        from repro.analysis.experiments import (
            clear_memo,
            run_plan_shard,
            run_robust_exploration,
        )
        from repro.core.sharding import ShardSpec, plan_suite_units

        plan = plan_suite_units(
            datasets=("vertebral_2c", "seeds"), sigma_v=0.02, n_trials=4,
            **SMALL_GRID,
        )
        store = ResultStore(cache_dir=tmp_path / "sharded")
        reports = [
            run_plan_shard(plan, ShardSpec(index, 3), store=store)
            for index in (1, 2, 3)
        ]
        assert sum(report.n_units for report in reports) == len(plan.units)
        assert plan.missing(store) == ()

        # cache-only resolution equals a genuinely unsharded recomputation
        unsharded = run_robust_exploration(
            "seeds", sigma_v=0.02, n_trials=4, use_cache=False, **SMALL_GRID
        )
        clear_memo()
        reader = ResultStore(cache_dir=tmp_path / "sharded")
        assembled = run_robust_exploration(
            "seeds", sigma_v=0.02, n_trials=4, store=reader, cache_only=True,
            **SMALL_GRID,
        )
        assert assembled.points == unsharded.points
        assert assembled.baseline_accuracy == unsharded.baseline_accuracy
        assert reader.stats.misses == 0

    def test_rerun_reuses_everything(self, tmp_path):
        from repro.analysis.experiments import run_plan_shard
        from repro.core.sharding import plan_suite_units

        plan = plan_suite_units(datasets=("vertebral_2c",), **SMALL_GRID)
        store = ResultStore(cache_dir=tmp_path / "rerun")
        first = run_plan_shard(plan, store=store)
        assert first.reused == 0 and first.computed == len(plan.units)
        again = run_plan_shard(plan, store=store)
        assert again.reused == len(plan.units) and again.computed == 0


class TestSuiteCommand:
    def test_list_units_prints_plan_without_computing(self, capsys):
        assert main(["suite", "--datasets", "vertebral_2c", "--list-units"]) == 0
        out = capsys.readouterr().out
        assert "suite:vertebral_2c[table1]" in out
        assert "suite:vertebral_2c[table2]" in out

    def test_shard_argument_rejected_at_parse_time(self):
        for bad in ("0/3", "4/3", "x/y"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["suite", "--shard", bad])

    def test_sharded_cli_assemble_matches_direct_commands(self, capsys, tmp_path):
        cache = tmp_path / "store"
        base = ["--datasets", "vertebral_2c", "--sigma", "0.02", "--trials", "4"]
        for index in (1, 2):
            assert main(
                ["suite", *base, "--shard", f"{index}/2", "--cache-dir", str(cache)]
            ) == 0
        capsys.readouterr()

        out_dir = tmp_path / "artifacts"
        assert main(
            ["assemble", *base, "--cache-dir", str(cache),
             "--output-dir", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "0 misses" in out and "0 recomputed" in out

        # byte-identical to the direct commands rendering from the same store
        assert main(
            ["table1", "--datasets", "vertebral_2c", "--cache-dir", str(cache)]
        ) == 0
        assert (out_dir / "table1.txt").read_text() == capsys.readouterr().out
        assert main(
            ["table2", "--datasets", "vertebral_2c", "--cache-dir", str(cache)]
        ) == 0
        assert (out_dir / "table2.txt").read_text() == capsys.readouterr().out
        assert main(
            ["table2", "--datasets", "vertebral_2c", "--sigma", "0.02",
             "--trials", "4", "--cache-dir", str(cache)]
        ) == 0
        assert (
            out_dir / "table2_offset_aware.txt"
        ).read_text() == capsys.readouterr().out

    def test_assemble_fails_loudly_listing_missing_units(self, capsys, tmp_path):
        from repro.core.sharding import plan_suite_units

        cache = tmp_path / "holey"
        assert main(
            ["suite", "--datasets", "vertebral_2c", "--cache-dir", str(cache)]
        ) == 0
        plan = plan_suite_units(datasets=("vertebral_2c",))
        dropped = plan.units[0]
        ResultStore(cache_dir=cache).invalidate(dropped.store_key)
        capsys.readouterr()

        assert main(
            ["assemble", "--datasets", "vertebral_2c", "--cache-dir", str(cache)]
        ) == 1
        captured = capsys.readouterr()
        assert "missing 1 of 2 planned units" in captured.err
        assert dropped.label in captured.err
        assert dropped.store_key in captured.err

    @pytest.mark.slow
    def test_sharded_equals_unsharded_byte_identical(self, capsys, tmp_path):
        """Acceptance: k/3 shards into one store + assemble render the exact
        bytes an unsharded single-process (``--no-cache``) run prints."""
        datasets = ["vertebral_2c", "seeds"]
        cache = tmp_path / "sharded"
        for index in (1, 2, 3):
            assert main(
                ["suite", "--datasets", *datasets, "--shard", f"{index}/3",
                 "--cache-dir", str(cache)]
            ) == 0
        capsys.readouterr()
        out_dir = tmp_path / "artifacts"
        assert main(
            ["assemble", "--datasets", *datasets, "--cache-dir", str(cache),
             "--output-dir", str(out_dir)]
        ) == 0
        assert "0 misses" in capsys.readouterr().out

        assert main(["table1", "--datasets", *datasets, "--no-cache"]) == 0
        assert (out_dir / "table1.txt").read_text() == capsys.readouterr().out
        assert main(["table2", "--datasets", *datasets, "--no-cache"]) == 0
        assert (out_dir / "table2.txt").read_text() == capsys.readouterr().out


class TestCacheStatsJson:
    def test_json_flag_emits_machine_readable_counts(self, capsys, tmp_path):
        import json

        cache_dir = tmp_path / "json-cache"
        store = ResultStore(cache_dir=cache_dir)
        store.put(store.make_key(n=1), "payload")
        store.get(store.make_key(n=1))
        store.get(store.make_key(n=2))  # miss
        store.flush_stats()

        assert main(["cache", "stats", "--json", "--cache-dir", str(cache_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"]["n_entries"] == 1
        assert payload["lifetime"] == {"hits": 1, "misses": 1, "stores": 1}
        assert payload["hit_rate"] == 0.5
        assert payload["store"] == str(cache_dir)

    def test_json_hit_rate_null_on_fresh_store(self, capsys, tmp_path):
        import json

        assert main(
            ["cache", "stats", "--json", "--cache-dir", str(tmp_path / "fresh")]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hit_rate"] is None
        assert payload["lifetime"] == {"hits": 0, "misses": 0, "stores": 0}


class TestCacheExportImportCli:
    def test_export_import_round_trip(self, capsys, tmp_path):
        source_dir = tmp_path / "source"
        source = ResultStore(cache_dir=source_dir)
        for index in range(2):
            source.put(source.make_key(n=index), index)
        archive = tmp_path / "store.tar.gz"

        assert main(
            ["cache", "export", "--cache-dir", str(source_dir),
             "--output", str(archive)]
        ) == 0
        assert "exported 2 entries" in capsys.readouterr().out

        target_dir = tmp_path / "target"
        assert main(
            ["cache", "import", str(archive), "--cache-dir", str(target_dir)]
        ) == 0
        assert "2 new entries" in capsys.readouterr().out
        target = ResultStore(cache_dir=target_dir)
        assert len(target) == 2
        # idempotent re-import
        assert main(
            ["cache", "import", str(archive), "--cache-dir", str(target_dir)]
        ) == 0
        assert "0 new entries" in capsys.readouterr().out

    def test_import_rejects_garbage(self, capsys, tmp_path):
        junk = tmp_path / "junk.tar.gz"
        junk.write_text("nope")
        assert main(
            ["cache", "import", str(junk), "--cache-dir", str(tmp_path / "s")]
        ) == 2
        assert "not a result-store archive" in capsys.readouterr().err


class TestAssembleArchiveErrors:
    def test_missing_archive_diagnosed_not_traceback(self, capsys, tmp_path):
        assert main(
            ["assemble", "--datasets", "seeds",
             "--cache-dir", str(tmp_path / "store"),
             "--from-archive", str(tmp_path / "never-uploaded.tar.gz")]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("assemble: ")
        assert "never-uploaded.tar.gz" in err


class TestVariationCacheKeyBugfix:
    """Regression: ``run_variation_analysis`` used to hard-default the
    training knobs in its cache key and always train the nominal tree."""

    def test_nominal_defaults_keep_the_legacy_key(self, tmp_path):
        from repro.analysis.experiments import run_variation_analysis
        from repro.core.variation import variation_result_key

        store = ResultStore(cache_dir=tmp_path / "nominal")
        analysis = run_variation_analysis(
            "vertebral_2c", sigma_v=0.02, n_trials=4, seed=0, depth=3,
            tau=0.01, store=store,
        )
        legacy_key = variation_result_key("vertebral_2c", 0, 0.02, 4, 3, 0.01)
        assert store.get(legacy_key) == analysis

    def test_training_knobs_address_separate_entries(self, tmp_path):
        from repro.analysis.experiments import run_variation_analysis

        store = ResultStore(cache_dir=tmp_path / "knobs")
        kwargs = dict(sigma_v=0.02, n_trials=4, seed=0, depth=3, tau=0.01,
                      store=store)
        nominal = run_variation_analysis("vertebral_2c", **kwargs)
        assert len(store) == 1
        aware = run_variation_analysis(
            "vertebral_2c", training_sigma=0.02, **kwargs
        )
        assert len(store) == 2  # no aliasing of the nominal entry
        assert aware != nominal
        # a rerun with the same knobs is a pure hit
        again = run_variation_analysis(
            "vertebral_2c", training_sigma=0.02, **kwargs
        )
        assert len(store) == 2
        assert again == aware

    def test_offset_aware_entries_shared_with_exploration(self, tmp_path):
        from repro.analysis.experiments import (
            run_robust_exploration,
            run_variation_analysis,
        )

        store = ResultStore(cache_dir=tmp_path / "shared")
        exploration = run_robust_exploration(
            "vertebral_2c", sigma_v=0.02, n_trials=4, seed=0,
            depths=(3,), taus=(0.01,), training_sigma=0.02, store=store,
        )
        stores_before = store.stats.stores
        analysis = run_variation_analysis(
            "vertebral_2c", sigma_v=0.02, n_trials=4, seed=0, depth=3,
            tau=0.01, training_sigma=0.02, store=store,
        )
        assert store.stats.stores == stores_before  # hit, not recomputed
        assert analysis == exploration.points[0].robustness

    def test_offset_aware_training_changes_the_classifier_under_test(self):
        from repro.analysis.experiments import run_variation_analysis

        kwargs = dict(sigma_v=0.04, n_trials=4, seed=0, depth=3, tau=0.01,
                      use_cache=False)
        nominal = run_variation_analysis("vertebral_2c", **kwargs)
        aware = run_variation_analysis(
            "vertebral_2c", training_sigma=0.04, **kwargs
        )
        # different trained tree => different Monte-Carlo trajectory
        assert aware.accuracies != nominal.accuracies


class TestVariationCommandKnobs:
    def test_sigma_and_sigmas_are_aliases(self):
        parser = build_parser()
        for flag in ("--sigma", "--sigmas"):
            args = parser.parse_args(
                ["variation", "--dataset", "seeds", flag, "0.01", "0.02"]
            )
            assert args.sigmas == [0.01, 0.02]

    def test_training_knob_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["variation", "--dataset", "seeds"])
        assert args.training_sigma == 0.0
        assert args.robustness_weight == 1.0
        assert args.resolution_bits == 4
        assert args.test_size == 0.3

    def test_nominal_header_is_unchanged(self, capsys, tmp_path):
        assert main(
            ["variation", "--dataset", "vertebral_2c", "--sigma", "0.02",
             "--trials", "3", "--depth", "3",
             "--cache-dir", str(tmp_path / "hdr")]
        ) == 0
        out = capsys.readouterr().out
        assert "seed 0)" in out  # no training-mode suffix on nominal runs
        assert "offset-aware" not in out

    def test_offset_aware_header_names_the_training_mode(self, capsys, tmp_path):
        assert main(
            ["variation", "--dataset", "vertebral_2c", "--sigma", "0.02",
             "--trials", "3", "--depth", "3", "--training-sigma", "0.04",
             "--cache-dir", str(tmp_path / "hdr-aware")]
        ) == 0
        assert "offset-aware training at 40 mV" in capsys.readouterr().out


class TestRunRobustnessSurface:
    def test_cache_only_on_cold_store_lists_every_missing_unit(self, tmp_path):
        from repro.analysis.experiments import run_robustness_surface
        from repro.core.sharding import MissingResultsError

        store = ResultStore(cache_dir=tmp_path / "cold")
        with pytest.raises(MissingResultsError) as excinfo:
            run_robustness_surface(
                "vertebral_2c", (0.01, 0.02), n_trials=3, store=store,
                cache_only=True, **SMALL_GRID,
            )
        assert "suite:vertebral_2c" in str(excinfo.value)

    def test_cache_only_requires_use_cache(self):
        from repro.analysis.experiments import run_robustness_surface

        with pytest.raises(ValueError, match="cache_only"):
            run_robustness_surface(
                "vertebral_2c", (0.02,), use_cache=False, cache_only=True,
                **SMALL_GRID,
            )

    def test_at_least_one_sigma_required(self):
        from repro.analysis.experiments import run_robustness_surface

        with pytest.raises(ValueError, match="sigma"):
            run_robustness_surface("vertebral_2c", (), **SMALL_GRID)

    def test_sigma_order_and_duplicates_canonicalized(self, tmp_path):
        from repro.analysis.experiments import run_robustness_surface

        store = ResultStore(cache_dir=tmp_path / "canon")
        kwargs = dict(n_trials=3, seed=0, store=store, **SMALL_GRID)
        first = run_robustness_surface("vertebral_2c", (0.01, 0.02), **kwargs)
        second = run_robustness_surface(
            "vertebral_2c", (0.02, 0.01, 0.02), **kwargs
        )
        assert first.sigmas == second.sigmas == (0.01, 0.02)
        assert first == second
        assert len(first.cells) == 2 * 4  # one per (sigma, grid point)

    def test_cells_alias_the_variation_pool(self, tmp_path):
        from repro.analysis.experiments import (
            run_robustness_surface,
            run_variation_analysis,
        )

        store = ResultStore(cache_dir=tmp_path / "pool")
        surface = run_robustness_surface(
            "vertebral_2c", (0.02,), n_trials=3, seed=0, store=store,
            **SMALL_GRID,
        )
        stores_before = store.stats.stores
        analysis = run_variation_analysis(
            "vertebral_2c", sigma_v=0.02, n_trials=3, seed=0, depth=2,
            tau=0.0, store=store,
        )
        assert store.stats.stores == stores_before  # same entries, pure hits
        cell = surface.cell(0.02, 2, 0.0)
        assert cell.mean_accuracy_drop == pytest.approx(
            analysis.mean_accuracy_drop
        )
        assert cell.nominal_accuracy == pytest.approx(analysis.nominal_accuracy)

    def test_multi_sigma_shard_run_resolves_surface_cache_only(self, tmp_path):
        from repro.analysis.experiments import (
            clear_memo,
            run_plan_shard,
            run_robustness_surface,
        )
        from repro.core.sharding import ShardSpec, plan_suite_units

        plan = plan_suite_units(
            datasets=("vertebral_2c",), sigmas=(0.01, 0.02), n_trials=3,
            **SMALL_GRID,
        )
        store = ResultStore(cache_dir=tmp_path / "sharded")
        for index in (1, 2, 3):
            run_plan_shard(plan, ShardSpec(index, 3), store=store)
        assert plan.missing(store) == ()

        clear_memo()
        reader = ResultStore(cache_dir=tmp_path / "sharded")
        surface = run_robustness_surface(
            "vertebral_2c", (0.01, 0.02), n_trials=3, store=reader,
            cache_only=True, **SMALL_GRID,
        )
        assert reader.stats.misses == 0
        assert reader.stats.stores == 0
        # equal to a genuinely recomputed surface
        fresh = run_robustness_surface(
            "vertebral_2c", (0.01, 0.02), n_trials=3, use_cache=False,
            **SMALL_GRID,
        )
        assert surface == fresh


class TestSurfaceCommand:
    def test_sigma_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["surface", "--datasets", "seeds"])

    def test_cache_only_against_cold_store_fails_loudly(self, capsys, tmp_path):
        assert main(
            ["surface", "--datasets", "vertebral_2c", "--sigma", "0.02",
             "--trials", "3", "--cache-only",
             "--cache-dir", str(tmp_path / "cold")]
        ) == 1
        captured = capsys.readouterr()
        assert "missing" in captured.err
        assert "run the missing shards" in captured.err
        assert captured.out == ""

    def test_surface_renders_table_json_and_html(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "surface.json"
        html_path = tmp_path / "surface.html"
        assert main(
            ["surface", "--datasets", "vertebral_2c", "--sigma", "0.02",
             "--trials", "2", "--cache-dir", str(tmp_path / "store"),
             "--json", str(json_path), "--html", str(html_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Robustness surface of vertebral_2c" in out
        assert "drop@20mV (%)" in out
        assert "per-sigma summary:" in out

        payload = json.loads(json_path.read_text())
        assert payload["kind"] == "robustness_surface_report"
        [record] = payload["surfaces"]
        assert record["dataset"] == "vertebral_2c"
        assert record["sigmas"] == [0.02]
        assert len(record["cells"]) == 49
        assert record["summary"]["per_sigma"][0]["sigma_v"] == 0.02

        html = html_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "script" not in html


class TestMultiSigmaSuiteCli:
    def test_list_units_enumerates_every_sigma(self, capsys):
        assert main(
            ["suite", "--datasets", "vertebral_2c",
             "--sigma", "0.01", "0.02", "--trials", "3", "--list-units"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("sigma=0.01]") == 49
        assert out.count("sigma=0.02]") == 49

    def test_table2_accepts_multiple_sigmas(self):
        args = build_parser().parse_args(
            ["table2", "--fast", "--sigma", "0.01", "0.02"]
        )
        assert args.sigma == [0.01, 0.02]

    @pytest.mark.slow
    def test_sharded_multi_sigma_assembles_byte_identical(self, capsys, tmp_path):
        """Acceptance: a 3-way sharded multi-sigma run + assemble renders
        each per-sigma offset-aware table byte-identically to the direct
        single-sigma ``table2`` command, and the surface resolves from the
        assembled store without a single miss."""
        cache = tmp_path / "store"
        base = ["--datasets", "vertebral_2c", "--sigma", "0.01", "0.02",
                "--trials", "3"]
        for index in (1, 2, 3):
            assert main(
                ["suite", *base, "--shard", f"{index}/3", "--jobs", "2",
                 "--cache-dir", str(cache)]
            ) == 0
        capsys.readouterr()

        out_dir = tmp_path / "artifacts"
        assert main(
            ["assemble", *base, "--cache-dir", str(cache),
             "--output-dir", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "0 misses" in out and "0 recomputed" in out

        for sigma, suffix in ((0.01, "10mV"), (0.02, "20mV")):
            assert main(
                ["table2", "--datasets", "vertebral_2c",
                 "--sigma", f"{sigma}", "--trials", "3",
                 "--cache-dir", str(cache)]
            ) == 0
            rendered = capsys.readouterr().out
            artifact = out_dir / f"table2_offset_aware_{suffix}.txt"
            assert artifact.read_text() == rendered

        assert main(
            ["surface", "--datasets", "vertebral_2c", "--sigma", "0.01",
             "0.02", "--trials", "3", "--cache-only",
             "--cache-dir", str(cache)]
        ) == 0
        assert "Robustness surface of vertebral_2c" in capsys.readouterr().out
