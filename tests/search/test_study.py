"""Tests for the budgeted study: caching layers, determinism, parallelism.

The expensive guarantees (hypervolume vs. the exhaustive grid, >= 5x fewer
trained trees) live in ``benchmarks/bench_search_efficiency.py``; here the
studies are kept tiny (small budgets on the smallest benchmark) and assert
the *structural* contracts: bit-reproducible records, serial == parallel,
warm-starts through every cache layer, and the store's search accounting.
"""

import json
from types import SimpleNamespace

import pytest

from repro.analysis.experiments import run_search_study
from repro.core.exploration import DEFAULT_DEPTHS, DEFAULT_TAUS, grid_points
from repro.core.metrics import HardwareReport
from repro.core.sharding import suite_result_key
from repro.core.store import ResultStore
from repro.search import Study, parse_objectives
from repro.search.space import (
    CategoricalDimension,
    FloatDimension,
    IntDimension,
    SearchSpace,
)

#: Small space on the suite grid: shallow depths keep training sub-second.
SMALL_SPACE_DIMS = (
    IntDimension("depth", 2, 3),
    FloatDimension("tau", 0.0, 0.01, step=0.005),
    CategoricalDimension("resolution_bits", (4,)),
    CategoricalDimension("technology", ("default",)),
    CategoricalDimension("training_sigma", (0.0,)),
    CategoricalDimension("robustness_weight", (1.0,)),
)


def small_space() -> SearchSpace:
    return SearchSpace(SMALL_SPACE_DIMS)


class TestParseObjectives:
    def test_leading_minus_maximizes(self):
        acc, power = parse_objectives(("-accuracy", "power"))
        assert (acc.metric, acc.sign, acc.spec) == ("accuracy", -1.0, "-accuracy")
        assert (power.metric, power.sign) == ("power", 1.0)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            parse_objectives(("-accuracy", "latency"))

    def test_single_objective_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            parse_objectives(("power",))

    def test_duplicate_metrics_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            parse_objectives(("-accuracy", "accuracy"))


class TestStudyValidation:
    def test_mean_accuracy_drop_requires_sigma(self, tmp_path):
        with pytest.raises(ValueError, match="sigma_v"):
            Study(
                "seeds",
                objectives=("-accuracy", "mean_accuracy_drop"),
                store=ResultStore(tmp_path),
            )

    def test_negative_budget_rejected(self, tmp_path):
        study = Study("seeds", space=small_space(), store=ResultStore(tmp_path))
        with pytest.raises(ValueError, match="budget"):
            study.run(budget=-1)

    def test_zero_batch_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="batch_size"):
            Study("seeds", batch_size=0, store=ResultStore(tmp_path))

    def test_zero_budget_yields_empty_study(self, tmp_path):
        study = Study("seeds", space=small_space(), store=ResultStore(tmp_path))
        result = study.run(budget=0)
        assert result.trials == ()
        assert result.front_numbers == ()


class TestStudyDeterminism:
    def test_same_seed_is_bit_reproducible(self, tmp_path):
        results = [
            run_search_study(
                "seeds",
                budget=4,
                seed=3,
                space=small_space(),
                store=ResultStore(tmp_path / f"store{i}"),
                batch_size=2,
            )
            for i in range(2)
        ]
        assert results[0].to_json() == results[1].to_json()

    def test_different_seeds_differ(self, tmp_path):
        records = [
            run_search_study(
                "seeds",
                budget=4,
                seed=seed,
                space=small_space(),
                store=ResultStore(tmp_path / f"seed{seed}"),
                batch_size=2,
            ).to_json_dict()
            for seed in (0, 1)
        ]
        assert [t["config"] for t in records[0]["trials"]] != [
            t["config"] for t in records[1]["trials"]
        ]

    def test_serial_and_parallel_records_are_identical(self, tmp_path):
        kwargs = dict(budget=4, seed=0, batch_size=2)
        serial = run_search_study(
            "seeds", space=small_space(),
            store=ResultStore(tmp_path / "serial"), jobs=None, **kwargs,
        )
        parallel = run_search_study(
            "seeds", space=small_space(),
            store=ResultStore(tmp_path / "parallel"), jobs=2, **kwargs,
        )
        assert serial.to_json() == parallel.to_json()


class TestCacheLayers:
    def test_second_study_warm_starts_from_trial_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        kwargs = dict(budget=4, seed=0, space=small_space(), batch_size=2)
        cold = run_search_study("seeds", store=store, **kwargs)
        assert cold.n_trained == 4 and cold.n_from_cache == 0
        warm = run_search_study("seeds", store=store, **kwargs)
        assert warm.n_trained == 0 and warm.n_from_cache == 4
        # Identical measurements through either path.
        for a, b in zip(cold.trials, warm.trials):
            assert a.config == b.config
            assert a.objectives == b.objectives
            assert a.store_key == b.store_key

    def test_search_stats_recorded_on_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        kwargs = dict(budget=3, seed=0, space=small_space(), batch_size=3)
        run_search_study("seeds", store=store, **kwargs)
        run_search_study("seeds", store=store, **kwargs)
        # Counters persist: a fresh instance reads them from _stats.json.
        stats = ResultStore(tmp_path).lifetime_search_stats()
        assert stats == {"from_cache": 3, "trained": 3}

    def test_no_cache_study_trains_everything_and_stores_nothing(self, tmp_path):
        result = run_search_study(
            "seeds",
            budget=3,
            seed=0,
            space=small_space(),
            use_cache=False,
            cache_dir=tmp_path,  # must be ignored entirely
            batch_size=3,
        )
        assert result.n_trained == 3
        assert len(ResultStore(tmp_path)) == 0

    def test_on_grid_trials_extract_from_a_cached_suite_sweep(self, tmp_path):
        store = ResultStore(tmp_path)
        grid = grid_points(DEFAULT_DEPTHS, DEFAULT_TAUS)
        sentinel_accuracy = 0.4242
        hardware = HardwareReport(
            name="sentinel", adc_area_mm2=1.0, adc_power_uw=2.0,
            digital_area_mm2=3.0, digital_power_uw=4.0,
            n_inputs=2, n_tree_comparators=1, n_adc_comparators=3,
        )
        fake_suite = SimpleNamespace(
            exploration=[
                SimpleNamespace(accuracy=sentinel_accuracy + i * 1e-4, hardware=hardware)
                for i in range(len(grid))
            ]
        )
        store.put(
            suite_result_key(
                "seeds", 0, False, DEFAULT_DEPTHS, DEFAULT_TAUS,
                training_sigma=0.0, robustness_weight=0.0,
            ),
            fake_suite,
        )

        class StubSampler:
            """Asks exactly one fixed on-grid configuration."""

            def __init__(self, config):
                self.config = config
                self.asked = False

            def ask(self, n):
                if self.asked:
                    return []
                self.asked = True
                return [dict(self.config)]

            def tell(self, config, objectives):
                pass

        config = {
            "depth": 5, "tau": 0.01, "resolution_bits": 4,
            "technology": "default", "training_sigma": 0.0,
            "robustness_weight": 1.0,
        }
        study = Study("seeds", store=store, sampler=StubSampler(config))
        result = study.run(budget=1)
        [trial] = result.trials
        index = grid.index((5, 0.01))
        assert trial.from_cache
        assert trial.accuracy == pytest.approx(sentinel_accuracy + index * 1e-4)
        assert trial.power_uw == pytest.approx(hardware.total_power_uw)
        # The extraction was written through under the trial key, so the
        # next study hits layer 1 without touching the suite entry.
        assert store.get(study.trial_key(config))["accuracy"] == trial.accuracy


class TestCacheOnly:
    """The strict assemble discipline: a --cache-only study never trains."""

    def test_cache_only_requires_use_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache_only"):
            Study(
                "seeds", space=small_space(), use_cache=False, cache_only=True,
                store=ResultStore(tmp_path),
            )

    def test_cold_store_raises_listing_trial_keys(self, tmp_path):
        from repro.core.sharding import MissingResultsError

        study = Study(
            "seeds", space=small_space(), cache_only=True,
            store=ResultStore(tmp_path),
        )
        with pytest.raises(MissingResultsError) as excinfo:
            study.run(budget=3)
        assert all(label.startswith("trial:seeds") for label, _ in
                   excinfo.value.missing)

    def test_warm_store_replays_without_training(self, tmp_path):
        store = ResultStore(tmp_path)
        kwargs = dict(budget=4, seed=0, space=small_space(), batch_size=2)
        cold = run_search_study("seeds", store=store, **kwargs)
        warm = run_search_study("seeds", store=store, cache_only=True, **kwargs)
        assert warm.n_trained == 0 and warm.n_from_cache == 4
        for a, b in zip(cold.trials, warm.trials):
            assert a.config == b.config
            assert a.objectives == b.objectives

    def test_missing_variation_entries_also_listed(self, tmp_path):
        """With a sigma the drop objective needs the per-sigma variation
        entries; a store warm on trials but cold on variation must fail
        naming the variation keys."""
        from repro.core.sharding import MissingResultsError

        store = ResultStore(tmp_path)
        kwargs = dict(budget=3, seed=0, space=small_space(), batch_size=3)
        run_search_study("seeds", store=store, **kwargs)  # trials only
        study = Study(
            "seeds",
            objectives=("-accuracy", "mean_accuracy_drop"),
            sigma_v=0.02,
            variation_trials=4,
            space=small_space(),
            cache_only=True,
            store=store,
            seed=0,
        )
        with pytest.raises(MissingResultsError) as excinfo:
            study.run(budget=3)
        labels = [label for label, _ in excinfo.value.missing]
        assert any(label.startswith("variation:seeds") for label in labels)


class TestStudyResultShape:
    def test_record_fields_and_front_property(self, tmp_path):
        result = run_search_study(
            "seeds",
            budget=4,
            seed=0,
            space=small_space(),
            store=ResultStore(tmp_path),
            batch_size=2,
        )
        record = json.loads(result.to_json())
        assert record["schema_version"] == 1
        assert record["kind"] == "search_study"
        assert record["n_trials"] == len(record["trials"]) == 4
        assert set(record["front"]) <= {t["number"] for t in record["trials"]}
        front = result.front
        assert [t.number for t in front] == list(result.front_numbers)
        # Front is sorted by objective tuple and mutually non-dominating.
        objectives = [t.objectives for t in front]
        assert objectives == sorted(objectives)
