"""Unit tests for the typed search-space dimensions and canonical identities."""

import numpy as np
import pytest

from repro.search.space import (
    CategoricalDimension,
    FloatDimension,
    IntDimension,
    SearchSpace,
    get_space,
    paper_space,
    space_names,
    wide_space,
)


class TestIntDimension:
    def test_grid_and_choices(self):
        dim = IntDimension("depth", 2, 5)
        assert dim.grid() == (2, 3, 4, 5)
        assert dim.n_choices == 4

    def test_encode_decode_roundtrip_every_value(self):
        dim = IntDimension("depth", 2, 8)
        for value in dim.grid():
            assert dim.decode(dim.encode(value)) == value

    def test_canonical_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            IntDimension("depth", 2, 8).canonical(9)

    def test_degenerate_single_value_encodes_to_center(self):
        dim = IntDimension("d", 3, 3)
        assert dim.encode(3) == 0.5
        assert dim.decode(0.9) == 3

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError, match="low"):
            IntDimension("d", 5, 2)


class TestFloatDimension:
    def test_step_grid_snaps_fuzzy_spellings(self):
        dim = FloatDimension("tau", 0.0, 0.03, step=0.005)
        assert dim.canonical(0.005000000000001) == 0.005
        assert dim.canonical(0.0049999999999) == 0.005
        assert dim.canonical(-0.0) == 0.0

    def test_step_grid_roundtrip(self):
        dim = FloatDimension("tau", 0.0, 0.03, step=0.005)
        assert dim.n_choices == 7
        for value in dim.grid():
            assert dim.decode(dim.encode(value)) == value

    def test_continuous_dimension_has_no_grid(self):
        dim = FloatDimension("x", 0.0, 1.0)
        assert dim.n_choices is None
        with pytest.raises(ValueError, match="grid"):
            dim.grid()

    def test_log_dimension_roundtrips_endpoints(self):
        dim = FloatDimension("lr", 1e-3, 1.0, log=True)
        assert dim.decode(0.0) == pytest.approx(1e-3)
        assert dim.decode(1.0) == pytest.approx(1.0)
        assert dim.encode(1e-3) == pytest.approx(0.0)

    def test_log_requires_positive_low(self):
        with pytest.raises(ValueError, match="log"):
            FloatDimension("x", 0.0, 1.0, log=True)

    def test_log_and_step_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            FloatDimension("x", 0.1, 1.0, log=True, step=0.1)

    def test_nonpositive_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            FloatDimension("x", 0.0, 1.0, step=0.0)

    def test_canonical_rejects_far_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            FloatDimension("tau", 0.0, 0.03, step=0.005).canonical(0.2)


class TestCategoricalDimension:
    def test_roundtrip_every_choice(self):
        dim = CategoricalDimension("bits", (3, 4, 5))
        for choice in dim.choices:
            assert dim.decode(dim.encode(choice)) == choice

    def test_decode_bins_cover_the_unit_interval(self):
        dim = CategoricalDimension("bits", (3, 4, 5))
        assert dim.decode(0.0) == 3
        assert dim.decode(0.999) == 5
        assert dim.decode(1.0) == 5  # clamp, not IndexError

    def test_unknown_choice_rejected(self):
        with pytest.raises(ValueError, match="choices"):
            CategoricalDimension("tech", ("default",)).canonical("exotic")

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CategoricalDimension("bits", (4, 4))

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CategoricalDimension("bits", ())


class TestSearchSpace:
    def space(self):
        return SearchSpace(
            (
                IntDimension("depth", 2, 3),
                FloatDimension("tau", 0.0, 0.01, step=0.005),
                CategoricalDimension("bits", (4, 5)),
            )
        )

    def test_unknown_and_missing_keys_rejected(self):
        space = self.space()
        with pytest.raises(ValueError, match="unknown"):
            space.canonical({"depth": 2, "tau": 0.0, "bits": 4, "extra": 1})
        with pytest.raises(ValueError, match="missing"):
            space.canonical({"depth": 2, "tau": 0.0})

    def test_config_id_is_spelling_invariant(self):
        space = self.space()
        a = space.config_id({"depth": 2, "tau": 0.005, "bits": 4})
        b = space.config_id({"bits": 4, "tau": 0.005000000000001, "depth": 2.0})
        assert a == b

    def test_encode_decode_roundtrip_on_the_full_grid(self):
        space = self.space()
        for config in space.enumerate():
            assert space.decode(space.encode(config)) == config

    def test_cardinality_and_enumeration_agree(self):
        space = self.space()
        configs = list(space.enumerate())
        assert space.cardinality == 2 * 3 * 2 == len(configs)
        assert len({space.config_id(c) for c in configs}) == len(configs)

    def test_enumerate_is_last_dimension_fastest(self):
        first, second = list(self.space().enumerate())[:2]
        assert first["depth"] == second["depth"]
        assert first["tau"] == second["tau"]
        assert (first["bits"], second["bits"]) == (4, 5)

    def test_continuous_space_has_no_cardinality_or_enumeration(self):
        space = SearchSpace((FloatDimension("x", 0.0, 1.0),))
        assert space.cardinality is None
        with pytest.raises(ValueError, match="continuous"):
            list(space.enumerate())

    def test_sample_lands_on_the_canonical_grid(self):
        space = self.space()
        rng = np.random.default_rng(0)
        ids = {space.config_id(c) for c in space.enumerate()}
        for _ in range(20):
            config = space.sample(rng)
            assert space.config_id(config) in ids

    def test_decode_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="components"):
            self.space().decode((0.5,))

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SearchSpace((IntDimension("d", 1, 2), IntDimension("d", 1, 3)))

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            SearchSpace(())

    def test_describe_is_json_ready(self):
        import json

        description = self.space().describe()
        assert json.loads(json.dumps(description)) == description
        assert description["cardinality"] == 12


class TestCoDesignSpaces:
    def test_paper_space_matches_the_exhaustive_grid(self):
        from repro.core.exploration import DEFAULT_DEPTHS, DEFAULT_TAUS, grid_points

        space = paper_space()
        assert space.cardinality == 49
        grid = {
            (config["depth"], config["tau"]) for config in space.enumerate()
        }
        assert grid == set(grid_points(DEFAULT_DEPTHS, DEFAULT_TAUS))

    def test_wide_space_is_finite_but_large(self):
        space = wide_space()
        assert space.cardinality == 10044
        assert space.cardinality > 100 * paper_space().cardinality

    def test_named_lookup(self):
        assert space_names() == ("paper", "wide")
        assert get_space("paper").cardinality == 49
        with pytest.raises(ValueError, match="unknown search space"):
            get_space("bogus")
