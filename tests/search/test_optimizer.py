"""Unit tests for the NSGA-II primitives and the Pareto-TPE sampler."""

import math

import pytest

from repro.search.optimizer import (
    ParetoTPESampler,
    crowding_distance,
    hypervolume,
    non_dominated_sort,
    pareto_rank_order,
)
from repro.search.space import (
    CategoricalDimension,
    FloatDimension,
    IntDimension,
    SearchSpace,
)


def tiny_space() -> SearchSpace:
    """A 12-configuration space the sampler can exhaust within a test."""
    return SearchSpace(
        (
            IntDimension("depth", 2, 4),
            FloatDimension("tau", 0.0, 0.01, step=0.01),
            CategoricalDimension("bits", (4, 5)),
        )
    )


class TestNonDominatedSort:
    def test_peels_three_staircase_fronts(self):
        points = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (0.0, 1.0), (1.0, 0.0)]
        assert non_dominated_sort(points) == [[0], [3, 4], [1], [2]]

    def test_all_tradeoffs_form_one_front(self):
        points = [(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]
        assert non_dominated_sort(points) == [[0, 1, 2]]

    def test_empty_input(self):
        assert non_dominated_sort([]) == []


class TestCrowdingDistance:
    def test_boundaries_infinite_interior_normalized(self):
        distances = crowding_distance([(0.0, 4.0), (1.0, 2.0), (4.0, 0.0)])
        assert distances[0] == math.inf
        assert distances[2] == math.inf
        # interior point: its neighbors span the whole range on both axes,
        # so each normalized side length is 1.
        assert distances[1] == pytest.approx(2.0)

    def test_degenerate_identical_points(self):
        # Stable sort makes the first and last input the boundary points;
        # the zero span leaves the interior duplicate at distance 0.
        distances = crowding_distance([(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)])
        assert distances == [math.inf, 0.0, math.inf]

    def test_empty_front(self):
        assert crowding_distance([]) == []


class TestHypervolume:
    def test_exact_two_dimensional_staircase(self):
        points = [(1.0, 2.0), (2.0, 1.0)]
        # (3-1)*(3-2) + (3-2)*(3-1) = 2 + 2, minus double-counted (2,2)
        # corner box 1x1 -> the sweep yields exactly 3.
        assert hypervolume(points, (3.0, 3.0)) == pytest.approx(3.0)

    def test_exact_three_dimensional_unit_cube(self):
        assert hypervolume([(0.0, 0.0, 0.0)], (1.0, 1.0, 1.0)) == pytest.approx(1.0)

    def test_points_at_or_beyond_the_reference_contribute_nothing(self):
        assert hypervolume([(3.0, 0.0), (0.0, 3.0)], (3.0, 3.0)) == 0.0
        assert hypervolume([], (3.0, 3.0)) == 0.0

    def test_duplicates_do_not_double_count(self):
        single = hypervolume([(1.0, 1.0)], (3.0, 3.0))
        assert hypervolume([(1.0, 1.0), (1.0, 1.0)], (3.0, 3.0)) == single

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="objectives"):
            hypervolume([(1.0, 1.0, 1.0)], (3.0, 3.0))


class TestParetoRankOrder:
    def test_front_rank_dominates_crowding(self):
        points = [(2.0, 2.0), (0.0, 1.0), (1.0, 0.0)]
        order = pareto_rank_order(points)
        assert set(order[:2]) == {1, 2}
        assert order[2] == 0

    def test_deterministic_on_ties(self):
        points = [(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]
        assert pareto_rank_order(points) == pareto_rank_order(points)


class TestParetoTPESampler:
    def test_same_seed_same_trajectory(self):
        def run():
            sampler = ParetoTPESampler(tiny_space(), seed=7, n_startup_trials=2)
            history = []
            for objectives in [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1), (0.2, 0.8)]:
                batch = sampler.ask(1)
                history.append(batch)
                sampler.tell(batch[0], objectives)
            return history

        assert run() == run()

    def test_never_suggests_a_configuration_twice(self):
        space = tiny_space()
        sampler = ParetoTPESampler(space, seed=0, n_startup_trials=2)
        seen = set()
        for round_number in range(12):
            for config in sampler.ask(1):
                config_id = space.config_id(config)
                assert config_id not in seen
                seen.add(config_id)
                sampler.tell(config, (float(round_number), -float(round_number)))

    def test_exhausts_a_finite_space_then_returns_empty(self):
        space = tiny_space()
        sampler = ParetoTPESampler(space, seed=3, n_startup_trials=2)
        suggested = sampler.ask(space.cardinality + 5)
        assert len(suggested) == space.cardinality
        ids = {space.config_id(c) for c in suggested}
        assert len(ids) == space.cardinality
        assert sampler.ask(1) == []

    def test_model_proposals_stay_on_the_canonical_grid(self):
        space = tiny_space()
        sampler = ParetoTPESampler(space, seed=1, n_startup_trials=2)
        valid = {space.config_id(c) for c in space.enumerate()}
        for objectives in [(0.0, 1.0), (1.0, 0.0), (0.5, 0.5)]:
            [config] = sampler.ask(1)
            sampler.tell(config, objectives)
        # Startup is over: these asks go through the TPE model.
        assert sampler.n_observed == 3
        for config in sampler.ask(4):
            assert space.config_id(config) in valid

    def test_tell_accepts_untold_external_trials(self):
        # Warm-starting: a study may tell results the sampler never asked.
        space = tiny_space()
        sampler = ParetoTPESampler(space, seed=0)
        config = {"depth": 2, "tau": 0.0, "bits": 4}
        sampler.tell(config, (0.5, 0.5))
        assert sampler.n_observed == 1
        # The told configuration is also deduped out of later asks.
        ids = {space.config_id(c) for c in sampler.ask(space.cardinality)}
        assert space.config_id(config) not in ids

    def test_ask_zero_and_negative(self):
        sampler = ParetoTPESampler(tiny_space(), seed=0)
        assert sampler.ask(0) == []
        with pytest.raises(ValueError):
            sampler.ask(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_startup_trials": 0},
            {"n_candidates": 0},
            {"gamma": 0.0},
            {"gamma": 1.0},
            {"bandwidth": 0.0},
        ],
    )
    def test_invalid_hyperparameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ParetoTPESampler(tiny_space(), seed=0, **kwargs)
