"""Golden-path and usage-error tests for ``repro.cli search``.

The budget is tiny and the space is the paper grid, so the command trains a
handful of shallow-to-medium trees; everything else (JSON record, HTML
dashboard, the cache-stats ``search`` section) is asserted on the artifacts
the command writes.
"""

import json

import pytest

from repro.cli import main
from repro.search import render_dashboard, render_surface


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "search-cache")


def run_search(cache_dir, *extra):
    return main(
        [
            "search", "--dataset", "seeds", "--budget", "3",
            "--batch-size", "3", "--cache-dir", cache_dir, *extra,
        ]
    )


class TestSearchCommand:
    def test_renders_table_and_writes_artifacts(self, capsys, tmp_path, cache_dir):
        json_path = tmp_path / "study.json"
        html_path = tmp_path / "pareto.html"
        exit_code = run_search(
            cache_dir, "--json", str(json_path), "--html", str(html_path)
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Budgeted search of seeds" in out
        assert "3 trials" in out

        record = json.loads(json_path.read_text())
        assert record["kind"] == "search_study"
        assert record["dataset"] == "seeds"
        assert record["n_trials"] == 3
        assert record["n_trained"] == 3

        html = html_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "seeds" in html
        # The dashboard is a pure function of the record.
        assert html == render_dashboard(record)

    def test_second_run_warm_starts_and_cache_stats_report_it(
        self, capsys, cache_dir
    ):
        assert run_search(cache_dir) == 0
        assert run_search(cache_dir) == 0
        assert "3 from cache / 0 trained" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["search"] == {
            "from_cache": 3,
            "trained": 3,
            "warm_start_rate": 0.5,
        }

    def test_human_cache_stats_mention_search_trials(self, capsys, cache_dir):
        assert run_search(cache_dir) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0 trials from cache / 3 trained" in capsys.readouterr().out

    def test_unknown_objective_is_a_usage_error(self, capsys, cache_dir):
        exit_code = run_search(
            cache_dir, "--objective=-accuracy", "--objective", "latency"
        )
        assert exit_code == 2
        assert "unknown objective" in capsys.readouterr().err

    def test_mean_accuracy_drop_without_sigma_is_a_usage_error(
        self, capsys, cache_dir
    ):
        exit_code = run_search(
            cache_dir, "--objective=-accuracy", "--objective", "mean_accuracy_drop"
        )
        assert exit_code == 2
        assert "sigma" in capsys.readouterr().err

    def test_budget_and_dataset_required(self):
        with pytest.raises(SystemExit):
            main(["search", "--dataset", "seeds"])
        with pytest.raises(SystemExit):
            main(["search", "--budget", "3"])


class TestDashboardRendering:
    def record(self):
        return {
            "dataset": "toy",
            "seed": 0,
            "objectives": ["-accuracy", "power"],
            "n_trials": 2,
            "n_from_cache": 1,
            "n_trained": 1,
            "front": [1],
            "trials": [
                {
                    "number": 0,
                    "config": {"depth": 2, "tau": 0.0},
                    "from_cache": True,
                    "accuracy": 0.8,
                    "power_uw": 120.0,
                    "area_mm2": 2.0,
                    "mean_accuracy_drop": None,
                    "objectives": [-0.8, 120.0],
                },
                {
                    "number": 1,
                    "config": {"depth": 3, "tau": 0.005},
                    "from_cache": False,
                    "accuracy": 0.9,
                    "power_uw": 100.0,
                    "area_mm2": 3.0,
                    "mean_accuracy_drop": 0.01,
                    "objectives": [-0.9, 100.0],
                },
            ],
        }

    def test_deterministic_bytes(self):
        assert render_dashboard(self.record()) == render_dashboard(self.record())

    def test_front_trial_is_highlighted(self):
        html = render_dashboard(self.record())
        assert 'class="pt front"' in html
        assert 'class="on-front"' in html

    def test_missing_fields_rejected(self):
        record = self.record()
        del record["front"]
        with pytest.raises(ValueError, match="front"):
            render_dashboard(record)

    def test_empty_study_renders_placeholder(self):
        record = self.record()
        record["trials"] = []
        record["front"] = []
        assert "no trials" in render_dashboard(record)

    def test_config_values_are_escaped(self):
        record = self.record()
        record["dataset"] = "<script>alert(1)</script>"
        html = render_dashboard(record)
        assert "<script>" not in html


class TestSearchCacheOnly:
    def test_cold_store_fails_listing_missing_keys(self, capsys, cache_dir):
        exit_code = run_search(cache_dir, "--cache-only")
        assert exit_code == 1
        err = capsys.readouterr().err
        assert "missing" in err
        assert "trial:seeds" in err

    def test_warm_store_passes_with_full_warm_start(self, capsys, cache_dir):
        assert run_search(cache_dir) == 0
        capsys.readouterr()
        assert run_search(cache_dir, "--cache-only") == 0
        assert "3 from cache / 0 trained" in capsys.readouterr().out


class TestSurfaceRendering:
    def record(self):
        return {
            "dataset": "toy",
            "seed": 0,
            "n_trials": 5,
            "training_sigma": 0.0,
            "robustness_weight": 1.0,
            "baseline_accuracy": 0.9,
            "sigmas": [0.01, 0.02],
            "depths": [2, 3],
            "taus": [0.0, 0.01],
            "cells": [
                {
                    "sigma_v": sigma,
                    "depth": depth,
                    "tau": tau,
                    "nominal_accuracy": 0.9,
                    "mean_accuracy": 0.9 - sigma,
                    "std_accuracy": 0.01,
                    "min_accuracy": 0.85,
                    "mean_accuracy_drop": sigma,
                    "worst_case_drop": 2 * sigma,
                }
                for sigma in (0.01, 0.02)
                for depth in (2, 3)
                for tau in (0.0, 0.01)
            ],
        }

    def test_deterministic_bytes(self):
        assert render_surface(self.record()) == render_surface(self.record())

    def test_single_record_equals_singleton_sequence(self):
        assert render_surface(self.record()) == render_surface([self.record()])

    def test_heatmap_cells_and_tooltips_present(self):
        html = render_surface(self.record())
        assert html.count('class="cell"') == 8
        assert "<title>" in html
        assert "10 mV" in html or "sigma 10" in html or "0.01" in html

    def test_missing_fields_rejected(self):
        record = self.record()
        del record["cells"]
        with pytest.raises(ValueError, match="cells"):
            render_surface(record)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            render_surface([])

    def test_dataset_name_is_escaped(self):
        record = self.record()
        record["dataset"] = "<script>alert(1)</script>"
        html = render_surface(record)
        assert "<script>" not in html
