"""Unit tests for the priority encoder model."""

import pytest

from repro.adc.encoder import PriorityEncoder
from repro.adc.thermometer import to_thermometer


class TestPriorityEncoder:
    def test_input_count(self, technology):
        assert PriorityEncoder(4, technology).n_inputs == 15
        assert PriorityEncoder(3, technology).n_inputs == 7

    def test_invalid_resolution(self, technology):
        with pytest.raises(ValueError):
            PriorityEncoder(0, technology)

    def test_cost_positive_and_growing_with_resolution(self, technology):
        enc3 = PriorityEncoder(3, technology)
        enc4 = PriorityEncoder(4, technology)
        assert 0 < enc3.area_mm2 < enc4.area_mm2
        assert 0 < enc3.power_uw < enc4.power_uw

    def test_calibration_encoder_is_most_of_conventional_adc(self, technology):
        """The 15-to-4 encoder accounts for ~10 of the 11 mm2 of the 4-bit ADC."""
        encoder = PriorityEncoder(4, technology)
        assert 9.0 <= encoder.area_mm2 <= 11.5
        assert 0.3 <= encoder.power_mw <= 0.5

    def test_encoding_all_levels(self, technology):
        encoder = PriorityEncoder(4, technology)
        for level in range(16):
            binary = encoder.encode(to_thermometer(level, 15))
            assert len(binary) == 4
            value = int("".join(str(b) for b in binary), 2)
            assert value == level

    def test_encode_rejects_wrong_width(self, technology):
        encoder = PriorityEncoder(4, technology)
        with pytest.raises(ValueError):
            encoder.encode((1, 0, 0))

    def test_encode_rejects_invalid_thermometer(self, technology):
        encoder = PriorityEncoder(4, technology)
        with pytest.raises(ValueError):
            encoder.encode((0, 1) + (0,) * 13)
