"""Unit tests for the conventional and bespoke analog front ends."""

import numpy as np
import pytest

from repro.adc.bespoke import BespokeADC
from repro.adc.frontend import BespokeFrontEnd, ConventionalFrontEnd


class TestConventionalFrontEnd:
    def test_channel_count_and_comparators(self, technology):
        frontend = ConventionalFrontEnd([0, 2, 5], 4, technology)
        assert frontend.n_channels == 3
        assert frontend.n_comparators == 3 * 15
        assert frontend.feature_indices == (0, 2, 5)

    def test_duplicate_features_collapse(self, technology):
        frontend = ConventionalFrontEnd([1, 1, 1], 4, technology)
        assert frontend.n_channels == 1

    def test_single_shared_encoder(self, technology):
        one = ConventionalFrontEnd([0], 4, technology)
        many = ConventionalFrontEnd(list(range(10)), 4, technology)
        assert one.encoder_area_mm2 == pytest.approx(many.encoder_area_mm2)
        # Area grows linearly with channels on top of the shared encoder.
        per_channel = (many.area_mm2 - many.encoder_area_mm2) / 10
        assert per_channel == pytest.approx(
            one.area_mm2 - one.encoder_area_mm2, rel=1e-6
        )

    def test_table1_adc_power_scale(self, technology):
        """Table I: the baseline ADC power is roughly 0.4-0.55 mW per input."""
        frontend = ConventionalFrontEnd(list(range(11)), 4, technology)
        per_input = (frontend.power_mw - frontend.encoder_power_uw / 1000.0) / 11
        assert 0.35 <= per_input <= 0.55

    def test_per_input_resolution_override(self, technology):
        uniform = ConventionalFrontEnd([0, 1], 4, technology)
        scaled = ConventionalFrontEnd([0, 1], 4, technology, per_input_resolution={1: 2})
        assert scaled.n_comparators == 15 + 3
        assert scaled.area_mm2 < uniform.area_mm2
        assert scaled.power_uw < uniform.power_uw

    def test_invalid_resolution_rejected(self, technology):
        with pytest.raises(ValueError):
            ConventionalFrontEnd([0], 0, technology)
        with pytest.raises(ValueError):
            ConventionalFrontEnd([0], 4, technology, per_input_resolution={0: 0})

    def test_convert_returns_levels_for_each_channel(self, technology):
        frontend = ConventionalFrontEnd([0, 2], 4, technology)
        levels = frontend.convert([0.5, 0.9, 0.25])
        assert levels == {0: 8, 2: 4}

    def test_report_fields(self, technology):
        frontend = ConventionalFrontEnd([0, 1], 4, technology)
        report = frontend.report()
        assert report.n_channels == 2
        assert report.area_mm2 == pytest.approx(frontend.area_mm2)
        assert report.power_mw == pytest.approx(frontend.power_uw / 1000.0)


class TestBespokeFrontEnd:
    @pytest.fixture
    def frontend(self, technology):
        return BespokeFrontEnd(
            {
                0: BespokeADC((3,), technology=technology),
                2: BespokeADC((1, 2, 6), technology=technology),
            }
        )

    def test_requires_at_least_one_channel(self):
        with pytest.raises(ValueError):
            BespokeFrontEnd({})

    def test_counts(self, frontend):
        assert frontend.n_channels == 2
        assert frontend.n_comparators == 4
        assert frontend.feature_indices == (0, 2)

    def test_totals_are_sums_of_channels(self, frontend):
        assert frontend.area_mm2 == pytest.approx(
            sum(adc.area_mm2 for adc in frontend.adcs.values())
        )
        assert frontend.power_uw == pytest.approx(
            sum(adc.power_uw for adc in frontend.adcs.values())
        )

    def test_much_cheaper_than_conventional(self, frontend, technology):
        conventional = ConventionalFrontEnd([0, 2], 4, technology)
        assert frontend.area_mm2 < conventional.area_mm2 / 10
        assert frontend.power_uw < conventional.power_uw / 3

    def test_convert_exposes_only_retained_digits(self, frontend):
        digits = frontend.convert([0.5, 0.0, 0.30])
        assert digits == {0: {3: 1}, 2: {1: 1, 2: 1, 6: 0}}

    def test_report(self, frontend):
        report = frontend.report()
        assert report.n_channels == 2
        assert report.n_comparators == 4


class TestBatchConversion:
    def test_conventional_convert_batch_matches_scalar(self, technology):
        frontend = ConventionalFrontEnd([0, 2, 3], 4, technology)
        rng = np.random.default_rng(21)
        X = rng.random((50, 5))
        batch = frontend.convert_batch(X)
        assert set(batch) == set(frontend.feature_indices)
        for row_index, sample in enumerate(X):
            scalar = frontend.convert(sample)
            for feature, level in scalar.items():
                assert batch[feature][row_index] == level

    def test_conventional_convert_batch_respects_per_input_resolution(self, technology):
        frontend = ConventionalFrontEnd(
            [0, 1], 4, technology, per_input_resolution={1: 2}
        )
        X = np.array([[0.99, 0.99]])
        batch = frontend.convert_batch(X)
        assert batch[0][0] == 15
        assert batch[1][0] == 3

    def test_conventional_convert_batch_rejects_vectors(self, technology):
        frontend = ConventionalFrontEnd([0], 4, technology)
        with pytest.raises(ValueError, match="2-D"):
            frontend.convert_batch(np.array([0.5, 0.2]))

    def test_bespoke_convert_batch_matches_scalar(self, technology):
        frontend = BespokeFrontEnd(
            {
                0: BespokeADC((3,), technology=technology),
                2: BespokeADC((1, 2, 6), technology=technology),
            }
        )
        rng = np.random.default_rng(23)
        X = rng.random((40, 3))
        batch = frontend.convert_batch(X)
        for row_index, sample in enumerate(X):
            scalar = frontend.convert(sample)
            for feature, per_level in scalar.items():
                for level, digit in per_level.items():
                    assert batch[feature][level][row_index] == digit

    def test_bespoke_batch_feeds_unary_tree_prediction(self, small_tree):
        from repro.core.bespoke_adc import build_bespoke_frontend
        from repro.core.unary_tree import UnaryDecisionTree

        unary = UnaryDecisionTree(small_tree)
        bespoke = build_bespoke_frontend(small_tree)
        rng = np.random.default_rng(29)
        X = rng.random((30, small_tree.n_features))
        digits = bespoke.convert_batch(X)
        batch = unary.predict_from_digits_batch(digits)
        scalar = np.array(
            [unary.predict_from_digits(bespoke.convert(sample)) for sample in X]
        )
        np.testing.assert_array_equal(batch, scalar)
