"""Unit tests for the conventional flash ADC model."""

import pytest

from repro.adc.flash import FlashADC


class TestFlashADCStructure:
    def test_comparator_count(self, technology):
        assert FlashADC(4, technology).n_comparators == 15
        assert FlashADC(3, technology).n_comparators == 7
        assert FlashADC(1, technology).n_comparators == 1

    def test_comparator_levels(self, technology):
        assert FlashADC(3, technology).comparator_levels == tuple(range(1, 8))

    def test_encoder_presence(self, technology):
        assert FlashADC(4, technology).encoder is not None
        assert FlashADC(4, technology, include_encoder=False).encoder is None

    def test_invalid_resolution(self, technology):
        with pytest.raises(ValueError):
            FlashADC(0, technology)


class TestFlashADCCost:
    def test_paper_calibration_4bit(self, technology):
        """Section III-B: the conventional 4-bit ADC is ~11 mm2 and ~0.83 mW."""
        adc = FlashADC(4, technology)
        assert adc.area_mm2 == pytest.approx(11.0, rel=0.10)
        assert adc.power_mw == pytest.approx(0.83, rel=0.05)

    def test_encoder_dominates_area(self, technology):
        """Removing the encoder is what makes bespoke ADCs tiny."""
        adc = FlashADC(4, technology)
        assert adc.encoder_area_mm2 > 0.8 * adc.area_mm2

    def test_total_is_sum_of_parts(self, technology):
        adc = FlashADC(4, technology)
        assert adc.area_mm2 == pytest.approx(
            adc.ladder_area_mm2 + adc.comparator_area_mm2 + adc.encoder_area_mm2
        )
        assert adc.power_uw == pytest.approx(
            adc.ladder_power_uw + adc.comparator_power_uw + adc.encoder_power_uw
        )

    def test_no_encoder_variant_is_cheaper(self, technology):
        with_encoder = FlashADC(4, technology)
        without_encoder = FlashADC(4, technology, include_encoder=False)
        assert without_encoder.area_mm2 < with_encoder.area_mm2
        assert without_encoder.power_uw < with_encoder.power_uw
        assert without_encoder.encoder_area_mm2 == 0.0

    def test_cost_grows_with_resolution(self, technology):
        areas = [FlashADC(bits, technology).area_mm2 for bits in (2, 3, 4)]
        powers = [FlashADC(bits, technology).power_uw for bits in (2, 3, 4)]
        assert areas == sorted(areas)
        assert powers == sorted(powers)


class TestFlashADCConversion:
    def test_conversion_fields_consistent(self, technology):
        adc = FlashADC(4, technology)
        conversion = adc.convert(0.40)
        assert conversion.level == 6
        assert sum(conversion.thermometer) == 6
        assert conversion.binary == (0, 1, 1, 0)

    def test_extremes(self, technology):
        adc = FlashADC(4, technology)
        assert adc.convert(0.0).level == 0
        assert adc.convert(1.0).level == 15
        assert adc.convert(-2.0).level == 0
        assert adc.convert(5.0).level == 15

    def test_no_encoder_returns_empty_binary(self, technology):
        adc = FlashADC(4, technology, include_encoder=False)
        conversion = adc.convert(0.5)
        assert conversion.binary == ()
        assert sum(conversion.thermometer) == conversion.level

    def test_conversion_monotone_in_input(self, technology):
        adc = FlashADC(4, technology)
        levels = [adc.convert(v / 100).level for v in range(101)]
        assert levels == sorted(levels)
