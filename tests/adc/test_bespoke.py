"""Unit tests for the bespoke ADC model (Fig. 1b / Fig. 3 of the paper)."""

import pytest

from repro.adc.bespoke import BespokeADC
from repro.adc.flash import FlashADC


class TestBespokeADCStructure:
    def test_levels_are_sorted_and_deduplicated(self, technology):
        adc = BespokeADC((7, 1, 4, 2, 4), technology=technology)
        assert adc.retained_levels == (1, 2, 4, 7)
        assert adc.n_unary_digits == 4
        assert adc.label == "4-UD"

    def test_at_least_one_level_required(self, technology):
        with pytest.raises(ValueError):
            BespokeADC((), technology=technology)

    def test_out_of_range_level_rejected(self, technology):
        with pytest.raises(ValueError):
            BespokeADC((16,), technology=technology)
        with pytest.raises(ValueError):
            BespokeADC((0,), technology=technology)

    def test_feature_name_is_preserved(self, technology):
        adc = BespokeADC((3,), technology=technology, feature_name="alcohol")
        assert adc.feature_name == "alcohol"


class TestBespokeADCCost:
    def test_area_depends_only_on_digit_count(self, technology):
        low = BespokeADC((1, 2, 3, 4), technology=technology)
        high = BespokeADC((12, 13, 14, 15), technology=technology)
        assert low.area_mm2 == pytest.approx(high.area_mm2)

    def test_area_scales_linearly_with_digit_count(self, technology):
        one = BespokeADC((1,), technology=technology)
        two = BespokeADC((1, 2), technology=technology)
        three = BespokeADC((1, 2, 3), technology=technology)
        step_one = two.area_mm2 - one.area_mm2
        step_two = three.area_mm2 - two.area_mm2
        assert step_one == pytest.approx(step_two)
        assert step_one == pytest.approx(technology.comparator.area_mm2)

    def test_power_depends_on_which_levels_are_retained(self, technology):
        """Fig. 3: a 4-UD ADC spans roughly a 4x power range."""
        low = BespokeADC((1, 2, 3, 4), technology=technology)
        high = BespokeADC((12, 13, 14, 15), technology=technology)
        assert high.power_uw > 2.5 * low.power_uw

    def test_fig3_power_range_for_4ud(self, technology):
        """Paper: 4-UD bespoke ADC power ranges roughly from 47 uW to 205 uW."""
        low = BespokeADC((1, 2, 3, 4), technology=technology)
        high = BespokeADC((12, 13, 14, 15), technology=technology)
        assert 35.0 <= low.power_uw <= 70.0
        assert 170.0 <= high.power_uw <= 240.0

    def test_fig3_area_range(self, technology):
        """Paper: bespoke ADC area spans roughly 0.2 to 0.6 mm2."""
        smallest = BespokeADC((1,), technology=technology)
        largest = BespokeADC(tuple(range(1, 16)), technology=technology)
        assert 0.15 <= smallest.area_mm2 <= 0.30
        assert 0.45 <= largest.area_mm2 <= 0.75

    def test_always_cheaper_than_conventional(self, technology):
        conventional = FlashADC(4, technology)
        full_bespoke = BespokeADC(tuple(range(1, 16)), technology=technology)
        assert full_bespoke.area_mm2 < conventional.area_mm2 / 10
        assert full_bespoke.power_uw < conventional.power_uw

    def test_subset_of_levels_never_costs_more(self, technology):
        full = BespokeADC(tuple(range(1, 16)), technology=technology)
        subset = BespokeADC((2, 5, 9), technology=technology)
        assert subset.area_mm2 < full.area_mm2
        assert subset.power_uw < full.power_uw


class TestBespokeADCConversion:
    def test_digits_match_thermometer_semantics(self, technology):
        adc = BespokeADC((1, 2, 4, 7), technology=technology)
        digits = adc.convert(0.30)  # level 4
        assert digits == {1: 1, 2: 1, 4: 1, 7: 0}

    def test_extreme_inputs(self, technology):
        adc = BespokeADC((3, 9), technology=technology)
        assert adc.convert(0.0) == {3: 0, 9: 0}
        assert adc.convert(1.0) == {3: 1, 9: 1}

    def test_convert_to_level_matches_flash(self, technology):
        bespoke = BespokeADC((5,), technology=technology)
        flash = FlashADC(4, technology)
        for value in [0.0, 0.1, 0.37, 0.5, 0.99, 1.0]:
            assert bespoke.convert_to_level(value) == flash.convert(value).level

    def test_digits_consistent_with_each_other(self, technology):
        """If a higher digit fires, every lower retained digit must fire too."""
        adc = BespokeADC((2, 6, 11), technology=technology)
        for value in [0.05, 0.2, 0.45, 0.8, 1.0]:
            digits = adc.convert(value)
            assert digits[2] >= digits[6] >= digits[11]
