"""Unit tests for thermometer/unary coding utilities."""

import numpy as np
import pytest

from repro.adc.thermometer import (
    binary_to_level,
    from_thermometer,
    is_valid_thermometer,
    level_to_binary,
    quantize_array_to_levels,
    quantize_to_level,
    threshold_to_digit,
    to_thermometer,
    unary_digit,
)


class TestQuantization:
    def test_zero_and_full_scale(self):
        assert quantize_to_level(0.0, 4) == 0
        assert quantize_to_level(1.0, 4) == 15

    def test_grid_points_map_to_their_level(self):
        for level in range(16):
            assert quantize_to_level(level / 16, 4) == level

    def test_values_between_grid_points_round_down(self):
        assert quantize_to_level(0.49, 4) == 7
        assert quantize_to_level(0.51, 4) == 8

    def test_out_of_range_values_are_clipped(self):
        assert quantize_to_level(-0.3, 4) == 0
        assert quantize_to_level(1.7, 4) == 15

    def test_other_resolutions(self):
        assert quantize_to_level(0.5, 1) == 1
        assert quantize_to_level(0.49, 1) == 0
        assert quantize_to_level(0.5, 3) == 4

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            quantize_to_level(0.5, 0)

    def test_array_quantization_matches_scalar(self):
        values = np.array([[0.0, 0.3, 0.5], [0.9, 1.0, 0.0625]])
        levels = quantize_array_to_levels(values, 4)
        expected = np.array(
            [[quantize_to_level(v, 4) for v in row] for row in values]
        )
        np.testing.assert_array_equal(levels, expected)


class TestThermometerCodes:
    def test_roundtrip_all_levels(self):
        for level in range(16):
            code = to_thermometer(level, 15)
            assert from_thermometer(code) == level

    def test_digit_semantics(self):
        code = to_thermometer(5, 15)
        assert code[:5] == (1, 1, 1, 1, 1)
        assert code[5:] == (0,) * 10

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            to_thermometer(16, 15)
        with pytest.raises(ValueError):
            to_thermometer(-1, 15)

    def test_validity_check(self):
        assert is_valid_thermometer((1, 1, 0, 0))
        assert is_valid_thermometer((0, 0, 0))
        assert is_valid_thermometer((1, 1, 1))
        assert not is_valid_thermometer((1, 0, 1))
        assert not is_valid_thermometer((0, 1))
        assert not is_valid_thermometer((2, 1))

    def test_from_thermometer_rejects_invalid(self):
        with pytest.raises(ValueError):
            from_thermometer((0, 1, 0))

    def test_unary_digit(self):
        assert unary_digit(5, 5) == 1
        assert unary_digit(5, 6) == 0
        assert unary_digit(0, 1) == 0
        with pytest.raises(ValueError):
            unary_digit(5, 0)


class TestBinaryConversion:
    def test_roundtrip(self):
        for level in range(16):
            assert binary_to_level(level_to_binary(level, 4)) == level

    def test_msb_first(self):
        assert level_to_binary(8, 4) == (1, 0, 0, 0)
        assert level_to_binary(1, 4) == (0, 0, 0, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            level_to_binary(16, 4)


class TestThresholdToDigit:
    def test_grid_thresholds(self):
        assert threshold_to_digit(0.375, 4) == 6
        assert threshold_to_digit(0.75, 4) == 12

    def test_clamping(self):
        assert threshold_to_digit(0.0, 4) == 1
        assert threshold_to_digit(1.0, 4) == 15

    def test_paper_equation_2_example(self):
        """I >= .1011b  ==  I[11]  (Eq. (2) of the paper)."""
        assert threshold_to_digit(0b1011 / 16, 4) == 11

    def test_digit_implements_comparison(self):
        """x >= threshold  <=>  level(x) >= digit(threshold) on the grid."""
        for threshold_level in range(1, 16):
            threshold = threshold_level / 16
            digit = threshold_to_digit(threshold, 4)
            for value_level in range(16):
                value = value_level / 16
                assert (value >= threshold) == (
                    quantize_to_level(value, 4) >= digit
                )
