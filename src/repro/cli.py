"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Regenerate Table I on the small benchmarks only::

    python -m repro.cli table1 --fast

Regenerate Fig. 3 (bespoke ADC scaling)::

    python -m repro.cli fig3

Run the full Table II comparison on two named benchmarks::

    python -m repro.cli table2 --datasets seeds vertebral_2c

Monte-Carlo comparator-offset robustness of a co-designed classifier
(vectorized across trials; ``--jobs`` fans trial batches over worker
processes with bit-identical results)::

    python -m repro.cli variation --dataset seeds --trials 1000 --jobs 4
    python -m repro.cli variation --dataset V3 --sigmas 0 0.01 0.02 0.04

Variation-aware design-space exploration: Monte-Carlo every (depth, tau)
point at an offset sigma and select the most power-efficient design under a
joint accuracy-loss / mean-accuracy-drop constraint (per-point robustness
summaries are cached in the result store under the same keys ``variation``
uses)::

    python -m repro.cli explore --sigma 0.04 --max-accuracy-drop 0.01
    python -m repro.cli explore --dataset cardio --sigma 0.02 --trials 500 --jobs 4

The offset-aware Table II variant re-selects every benchmark's co-design
under the robustness budget::

    python -m repro.cli table2 --sigma 0.04 --max-accuracy-drop 0.01

Offset-aware *training* (``--training-sigma``): the exploration trees are
trained with the analytic expected digit-flip penalty in their split scores,
so robustness comes from threshold placement instead of hardware margin::

    python -m repro.cli explore --sigma 0.04 --training-sigma 0.04
    python -m repro.cli table2 --sigma 0.04 --training-sigma 0.04 \
        --max-accuracy-drop 0.01

Budgeted multi-objective search: instead of sweeping the exhaustive
depth x tau grid, a seeded Pareto-TPE sampler spends a fixed trial budget,
warm-starting every trial it can from cached suite sweeps (see
``docs/SEARCH.md``)::

    python -m repro.cli search --dataset seeds --budget 12
    python -m repro.cli search --dataset cardio --budget 16 \
        --objective=-accuracy --objective area \
        --json study.json --html pareto.html
    python -m repro.cli search --dataset seeds --budget 12 --space wide \
        --sigma 0.02 --objective=-accuracy --objective power \
        --objective mean_accuracy_drop

Sharded suite execution: the work-unit planner splits the suite's
(dataset, variant) and per-(depth, tau) Monte-Carlo units across N shards
by stable hashing, each shard computes only its units into its own store,
and ``assemble`` merges the shard stores and renders every table from cache
hits *only* (non-zero exit listing the missing keys when a shard never
ran).  Local three-way example::

    python -m repro.cli suite --shard 1/3 --cache-dir shard1 --sigma 0.04
    python -m repro.cli suite --shard 2/3 --cache-dir shard2 --sigma 0.04
    python -m repro.cli suite --shard 3/3 --cache-dir shard3 --sigma 0.04
    python -m repro.cli assemble --cache-dir merged --sigma 0.04 \
        --from-store shard1 --from-store shard2 --from-store shard3 \
        --output-dir artifacts

On CI the shard stores travel as artifacts instead (``cache export`` /
``assemble --from-archive``); see ``docs/SHARDING.md``.

Multi-sigma robustness surface: ``--sigma`` takes one or more values on
``suite``/``assemble``/``table2``/``surface`` (one variation unit per
(dataset, depth, tau, sigma); unit identities are unchanged, so a multi-
sigma plan is the union of the per-sigma plans), and ``surface`` maps the
full (sigma x depth x tau) cube from the variation pool -- strictly from
cache hits with ``--cache-only``::

    python -m repro.cli suite --shard 1/3 --cache-dir shard1 \
        --sigma 0.01 0.02 0.04 --trials 200
    python -m repro.cli assemble --cache-dir merged \
        --sigma 0.01 0.02 0.04 --trials 200 --from-store shard1 ...
    python -m repro.cli surface --sigma 0.01 0.02 0.04 --trials 200 \
        --cache-dir merged --cache-only \
        --json surface.json --html surface.html

RTL co-simulation and pluggable PPA (see ``docs/HARDWARE.md``): ``cosim``
trains a classifier, exports its label logic plus a self-checking testbench
whose expected outputs come from the Python golden model, and runs the pair
under an installed open-source Verilog simulator (iverilog or Verilator;
generation-only on machines without one).  ``--ppa-backend`` on the suite,
``explore``, ``search`` and ``datasheet`` commands swaps the analytic
area/power estimators for an external flow's measured PPA report (such runs
bypass the result cache)::

    python -m repro.cli cosim --dataset seeds --depth 4 --json cosim.json
    python -m repro.cli cosim --dataset cardio --emit rtl/ --simulator iverilog
    python -m repro.cli explore --dataset seeds --sigma 0.02 \
        --ppa-backend reports/seeds_ppa.json
    python -m repro.cli datasheet --dataset seeds --ppa-backend report.json

Inspect or maintain the on-disk result store::

    python -m repro.cli cache stats
    python -m repro.cli cache stats --json     # machine-readable (CI)
    python -m repro.cli cache prune --older-than-days 14
    python -m repro.cli cache prune --max-bytes 500000000
    python -m repro.cli cache export --output store.tar.gz
    python -m repro.cli cache import store.tar.gz
    python -m repro.cli cache clear

Parallelism and caching
-----------------------
The suite commands (``table1``, ``fig4``, ``fig5``, ``table2``) accept
``--jobs`` and ``--cache-dir``:

* ``--jobs N`` fans the independent work units -- the per-benchmark runs
  and, for a single benchmark, the depth x tau design points -- out over
  ``N`` worker processes (``0`` = one per CPU).  Results are bit-identical
  to a serial run::

      python -m repro.cli table2 --jobs 8

* ``--cache-dir DIR`` points the content-addressed on-disk result store at
  ``DIR`` (default: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``).
  Results are keyed by dataset, seed, grid, technology and code version, so
  any later invocation -- same process or not -- reuses them::

      python -m repro.cli table1 --cache-dir .repro-cache
      python -m repro.cli table2 --cache-dir .repro-cache   # reuses the sweep

  ``--no-cache`` forces a full recomputation.

Running the CI checks locally
-----------------------------
The GitHub Actions pipeline (``.github/workflows/ci.yml``) runs, on every
push/PR::

    ruff check src tests benchmarks examples      # lint job
    PYTHONPATH=src python -m pytest -q -m "not slow" \
        --cov=repro --cov-fail-under=80           # tier-1 gate (coverage floor)

and nightly a matrix of shard jobs feeding an assemble job via artifacts,
plus the nightly-marked Monte-Carlo validation tests::

    PYTHONPATH=src python -m repro.cli suite --shard K/3 --jobs 4 \
        --sigma 0.04 --trials 200 --cache-dir .repro-cache   # per shard job
    PYTHONPATH=src python -m repro.cli cache export \
        --cache-dir .repro-cache --output shard-K.tar.gz
    PYTHONPATH=src python -m repro.cli assemble --sigma 0.04 --trials 200 \
        --cache-dir .repro-assembled --from-archive shard-1.tar.gz ... \
        --output-dir artifacts                               # assemble job
    PYTHONPATH=src python -m pytest -q -m nightly --run-nightly

See ``docs/TESTING.md`` for the test-layer taxonomy (unit / property /
oracle-equivalence / golden CLI) and the marker conventions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.figures import fig3_series, fig4_series, fig5_series
from repro.analysis.render import render_table
from repro.analysis.experiments import (
    run_benchmark_suite,
    run_plan_shard,
    run_robust_exploration,
    run_variation_analysis,
)
from repro.analysis.tables import (
    exploration_rows,
    table1_rows,
    table1_summary,
    table2_robust_rows,
    table2_robust_summary,
    table2_rows,
    table2_summary,
)
from repro.core.sharding import (
    MissingResultsError,
    ShardSpec,
    normalize_sigmas,
    plan_suite_units,
)
from repro.circuits.cosim import SIMULATORS
from repro.core.store import ResultStore
from repro.datasets.registry import dataset_names, load_dataset
from repro.mltrees.evaluation import ENGINES
from repro.search.space import space_names


def _jobs_argument(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = one worker per CPU)")
    return jobs


def _age_days_argument(value: str) -> float:
    days = float(value)
    if days < 0:
        raise argparse.ArgumentTypeError("must be a non-negative number of days")
    return days


def _bytes_argument(value: str) -> int:
    size = int(value)
    if size < 0:
        raise argparse.ArgumentTypeError("must be a non-negative byte count")
    return size


def _sigma_argument(value: str) -> float:
    sigma = float(value)
    if sigma < 0:
        raise argparse.ArgumentTypeError("must be a non-negative sigma in volts")
    return sigma


def _shard_argument(value: str) -> ShardSpec:
    try:
        return ShardSpec.parse(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _training_label(training_sigma: float) -> str:
    """Header fragment naming the training mode (shared by explore/table2)."""
    if training_sigma == 0:
        return "nominal training"
    return f"offset-aware training at {training_sigma * 1000:g} mV"


def _add_suite_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        choices=dataset_names(),
        help="benchmarks to run (default: all eight)",
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed")
    parser.add_argument(
        "--fast",
        action="store_true",
        help="restrict the default dataset list to the four small benchmarks",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes for the suite / design-space sweep "
        "(default: serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result store "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result store and recompute everything",
    )
    _add_engine_argument(parser)
    _add_ppa_backend_argument(parser)


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="batch",
        help="inference engine scoring the exploration's test sets "
        "(bit-identical; 'bitparallel' = packed-uint64 cube kernel)",
    )


def _add_ppa_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ppa-backend",
        default=None,
        metavar="analytic|REPORT.json",
        help="source of the digital area/power numbers: 'analytic' (default, "
        "the behavioral cell-count model) or the path of an external-flow "
        "PPA report JSON (see docs/HARDWARE.md); report-backed runs bypass "
        "the result cache",
    )


def _suite(args: argparse.Namespace, include_approximate: bool):
    datasets = tuple(args.datasets) if args.datasets else None
    return run_benchmark_suite(
        datasets=datasets,
        seed=args.seed,
        include_approximate_baseline=include_approximate,
        fast=args.fast,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        engine=args.engine,
        ppa_backend=args.ppa_backend,
    )


def _cmd_fig3(args: argparse.Namespace) -> int:
    series = fig3_series()
    rows = [
        (p["n_unary_digits"], p["start_level"], p["area_mm2"], p["power_uw"])
        for p in series["points"]
    ]
    print(render_table(["#UD", "first level", "area (mm2)", "power (uW)"], rows))
    print(
        f"\nConventional 4-bit flash ADC: "
        f"{series['conventional_area_mm2']:.2f} mm2, "
        f"{series['conventional_power_uw'] / 1000.0:.2f} mW"
    )
    return 0


def _render_table1(results) -> str:
    """Table I as printed by ``table1`` (shared verbatim with ``assemble``)."""
    rows = table1_rows(results)
    summary = table1_summary(rows)
    return "\n".join(
        [
            render_table(
                ["dataset", "acc (%)", "#comp", "#inputs", "ADC area", "total area",
                 "ADC power (mW)", "total power (mW)"],
                [
                    (r["dataset"], r["accuracy_pct"], r["n_comparators"], r["n_inputs"],
                     r["adc_area_mm2"], r["total_area_mm2"], r["adc_power_mw"],
                     r["total_power_mw"])
                    for r in rows
                ],
            ),
            f"\nAverages: total area {summary['average_total_area_mm2']:.1f} mm2, "
            f"total power {summary['average_total_power_mw']:.2f} mW, "
            f"ADC share {summary['average_adc_area_fraction'] * 100:.0f}% of area / "
            f"{summary['average_adc_power_fraction'] * 100:.0f}% of power",
        ]
    )


def _render_fig4(results) -> str:
    """Fig. 4 as printed by ``fig4`` (shared verbatim with ``assemble``)."""
    series = fig4_series(results)
    return "\n".join(
        [
            render_table(
                ["dataset", "area reduction (x)", "power reduction (x)"],
                [
                    (r["abbreviation"], r["area_reduction_x"], r["power_reduction_x"])
                    for r in series["rows"]
                ],
            ),
            f"\nAverages: {series['average_area_reduction_x']:.1f}x area, "
            f"{series['average_power_reduction_x']:.1f}x power",
        ]
    )


def _render_fig5(results) -> str:
    """Fig. 5 as printed by ``fig5`` (shared verbatim with ``assemble``)."""
    parts: list[str] = []
    for loss, panel in fig5_series(results).items():
        parts.append(f"\n=== accuracy loss <= {loss:.0%} ===")
        parts.append(
            render_table(
                ["dataset", "area reduction (%)", "power reduction (%)"],
                [
                    (r["abbreviation"], r["area_reduction_pct"], r["power_reduction_pct"])
                    for r in panel["rows"]
                ],
            )
        )
        parts.append(
            f"Averages: {panel['average_area_reduction_pct']:.1f}% area, "
            f"{panel['average_power_reduction_pct']:.1f}% power"
        )
    return "\n".join(parts)


def _cmd_table1(args: argparse.Namespace) -> int:
    print(_render_table1(_suite(args, include_approximate=False)))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    print(_render_fig4(_suite(args, include_approximate=False)))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    print(_render_fig5(_suite(args, include_approximate=False)))
    return 0


def _render_table2_robust(
    explorations,
    sigma: float,
    trials: int,
    training_sigma: float,
    max_accuracy_drop: float | None,
) -> str:
    """Offset-aware Table II as printed by ``table2 --sigma`` / ``assemble``."""
    rows = table2_robust_rows(
        explorations, accuracy_loss=0.01, max_accuracy_drop=max_accuracy_drop
    )
    drop_label = (
        "unconstrained" if max_accuracy_drop is None
        else f"<= {max_accuracy_drop:.1%}"
    )
    summary = table2_robust_summary(rows)
    return "\n".join(
        [
            f"Offset-aware co-design selection (sigma {sigma * 1000:g} mV, "
            f"{trials} trials, {_training_label(training_sigma)}, "
            f"<= 1% accuracy loss, mean drop {drop_label})\n",
            render_table(
                ["dataset", "depth", "tau", "acc (%)", "mean drop (%)",
                 "worst drop (%)", "area (mm2)", "power (mW)"],
                [
                    (r["dataset"], r["depth"], r["tau"], r["accuracy_pct"],
                     r["mean_accuracy_drop_pct"], r["worst_case_drop_pct"],
                     r["area_mm2"], r["power_mw"])
                    if r["feasible"]
                    else (r["dataset"], "-", "-", "infeasible", "-", "-", "-", "-")
                    for r in rows
                ],
            ),
            f"\n{summary['n_feasible']}/{len(rows)} benchmarks feasible; "
            + (
                # Zero feasible rows: there is nothing to average -- say so
                # instead of printing a misleading 0.0.
                "averages: n/a (no feasible designs)"
                if summary["n_feasible"] == 0
                else f"averages: {summary['average_area_mm2']:.1f} mm2, "
                f"{summary['average_power_mw']:.2f} mW, "
                f"mean drop {summary['average_mean_accuracy_drop_pct']:.2f}%"
            ),
        ]
    )


def _cmd_table2_robust(args: argparse.Namespace) -> int:
    """Offset-aware Table II: per-benchmark selection under a robustness budget."""
    from repro.analysis.experiments import resolve_suite_datasets

    names = resolve_suite_datasets(
        tuple(args.datasets) if args.datasets else None, args.fast
    )
    # Warm the per-dataset suite cache in one call so the nominal sweeps fan
    # out across datasets on the shared pool; the per-dataset robust passes
    # below then only pay the (cached-on-rerun) Monte-Carlo fan-out.  With
    # --no-cache there is nothing to warm, so skip the extra sweep.
    if not args.no_cache:
        run_benchmark_suite(
            datasets=names,
            seed=args.seed,
            include_approximate_baseline=False,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            training_sigma=args.training_sigma,
            engine=args.engine,
            ppa_backend=args.ppa_backend,
        )
    renders = []
    for sigma in normalize_sigmas(tuple(args.sigma)):
        explorations = [
            run_robust_exploration(
                name,
                sigma_v=sigma,
                n_trials=args.trials,
                seed=args.seed,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                training_sigma=args.training_sigma,
                engine=args.engine,
                ppa_backend=args.ppa_backend,
            )
            for name in names
        ]
        renders.append(
            _render_table2_robust(
                explorations, sigma, args.trials, args.training_sigma,
                args.max_accuracy_drop,
            )
        )
    print("\n\n".join(renders))
    return 0


def _render_table2(results) -> str:
    """Table II as printed by ``table2`` (shared verbatim with ``assemble``)."""
    rows = table2_rows(results)
    summary = table2_summary(rows)
    return "\n".join(
        [
            render_table(
                ["dataset", "acc (%)", "area (mm2)", "power (mW)",
                 "vs[2] area", "vs[2] power", "vs[7] area", "vs[7] power",
                 "self-powered"],
                [
                    (r["dataset"], r["accuracy_pct"], r["area_mm2"], r["power_mw"],
                     r["area_reduction_vs_baseline_x"],
                     r["power_reduction_vs_baseline_x"],
                     r["area_reduction_vs_approx_x"],
                     r["power_reduction_vs_approx_x"],
                     r["self_powered"])
                    for r in rows
                ],
            ),
            f"\nAverages: {summary['average_area_mm2']:.1f} mm2, "
            f"{summary['average_power_mw']:.2f} mW, "
            f"{summary['average_area_reduction_vs_baseline_x']:.1f}x area / "
            f"{summary['average_power_reduction_vs_baseline_x']:.1f}x power vs [2]",
        ]
    )


def _cmd_table2(args: argparse.Namespace) -> int:
    if args.sigma is not None:
        return _cmd_table2_robust(args)
    if args.training_sigma > 0:
        # Without --sigma there is no robustness pass to select against, so
        # offset-aware training would silently render the nominal table.
        print(
            "table2: --training-sigma requires --sigma (the offset-aware "
            "selection it trains for)",
            file=sys.stderr,
        )
        return 2
    print(_render_table2(_suite(args, include_approximate=True)))
    return 0


def _plan_from_args(args: argparse.Namespace):
    """The deterministic work-unit plan of a ``suite``/``assemble`` request.

    Both commands must agree on the plan for the same flags, so shard
    runners and the assemble step can never disagree about which units
    exist -- this is their single constructor.
    """
    return plan_suite_units(
        datasets=tuple(args.datasets) if args.datasets else None,
        seed=args.seed,
        fast=args.fast,
        sigmas=tuple(args.sigma) if args.sigma else None,
        n_trials=args.trials,
        training_sigma=args.training_sigma,
    )


def _cmd_suite(args: argparse.Namespace) -> int:
    """Compute one shard of the suite's work units into the result store."""
    plan = _plan_from_args(args)
    units = plan.shard(args.shard)
    n_suite = sum(1 for unit in units if unit.kind == "suite")
    n_variation = len(units) - n_suite
    print(
        f"plan: {len(plan.units)} work units over {len(plan.datasets)} "
        f"benchmarks; shard {args.shard}: {len(units)} units "
        f"({n_suite} suite, {n_variation} variation)"
    )
    if args.list_units:
        for unit in units:
            print(f"  {unit.label}  {unit.store_key[:16]}")
        return 0
    store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore()
    report = run_plan_shard(plan, args.shard, jobs=args.jobs, store=store)
    print(
        f"shard {args.shard}: computed {report.computed}, reused "
        f"{report.reused} of {report.n_units} units -> {store.cache_dir}"
    )
    return 0


def _cmd_assemble(args: argparse.Namespace) -> int:
    """Merge shard stores and render every table from cache hits only."""
    store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore()
    try:
        for archive in args.from_archive or []:
            report = store.import_archive(archive)
            print(
                f"imported {archive}: {report.merged} new entries, "
                f"{report.skipped} already present"
            )
        for directory in args.from_store or []:
            report = store.merge_from(ResultStore(directory))
            print(
                f"merged {directory}: {report.merged} new entries, "
                f"{report.skipped} already present"
            )
    except (OSError, ValueError) as exc:
        # A missing/unreadable shard artifact is a first-class assemble
        # failure: diagnose on stderr instead of crashing with a traceback.
        print(f"assemble: {exc}", file=sys.stderr)
        return 2

    plan = _plan_from_args(args)
    missing = plan.missing(store)
    if missing:
        print(
            f"assemble: store {store.cache_dir} is missing {len(missing)} of "
            f"{len(plan.units)} planned units:",
            file=sys.stderr,
        )
        for unit in missing:
            print(f"  {unit.label}  {unit.store_key}", file=sys.stderr)
        print(
            "run the missing shards (repro.cli suite --shard K/N) and retry",
            file=sys.stderr,
        )
        return 1

    names = plan.datasets
    try:
        table1_results = run_benchmark_suite(
            datasets=names, seed=args.seed, include_approximate_baseline=False,
            store=store, cache_only=True, training_sigma=args.training_sigma,
        )
        table2_results = run_benchmark_suite(
            datasets=names, seed=args.seed, include_approximate_baseline=True,
            store=store, cache_only=True, training_sigma=args.training_sigma,
        )
    except MissingResultsError as exc:
        print(f"assemble: {exc}", file=sys.stderr)
        return 1

    sections = [
        ("table1.txt", _render_table1(table1_results)),
        ("fig4.txt", _render_fig4(table1_results)),
        ("fig5.txt", _render_fig5(table1_results)),
        ("table2.txt", _render_table2(table2_results)),
    ]
    for sigma in plan.sigmas:
        explorations = [
            run_robust_exploration(
                name, sigma_v=sigma, n_trials=args.trials, seed=args.seed,
                store=store, cache_only=True, training_sigma=args.training_sigma,
            )
            for name in names
        ]
        filename = (
            "table2_offset_aware.txt"
            if len(plan.sigmas) == 1
            else f"table2_offset_aware_{sigma * 1000:g}mV.txt"
        )
        sections.append(
            (
                filename,
                _render_table2_robust(
                    explorations, sigma, args.trials, args.training_sigma,
                    args.max_accuracy_drop,
                ),
            )
        )

    output_dir = Path(args.output_dir) if args.output_dir else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    for filename, text in sections:
        print(f"==== {filename[:-4]} ====")
        print(text)
        if output_dir is not None:
            (output_dir / filename).write_text(text + "\n", encoding="utf-8")
    print(
        f"assembled {len(plan.units)} planned units from cache only: "
        f"{store.stats.hits} hits, {store.stats.misses} misses, 0 recomputed"
    )
    store.flush_stats()
    return 0


def _cmd_datasheet(args: argparse.Namespace) -> int:
    from repro.core.adc_aware_training import ADCAwareTrainer
    from repro.core.datasheet import generate_datasheet
    from repro.mltrees.evaluation import train_test_split
    from repro.mltrees.quantize import quantize_dataset

    dataset = load_dataset(args.dataset, seed=args.seed)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=args.seed
    )
    tree = ADCAwareTrainer(
        max_depth=args.depth, gini_threshold=args.tau, seed=args.seed
    ).fit(quantize_dataset(X_train), y_train, dataset.n_classes)
    print(
        generate_datasheet(
            tree,
            name=f"{dataset.name} classifier (depth {args.depth}, tau {args.tau:g})",
            feature_names=dataset.feature_names,
            class_names=dataset.class_names,
            X_test=X_test,
            y_test=y_test,
            ppa_backend=args.ppa_backend,
        )
    )
    return 0


def _cosim_netlist(args: argparse.Namespace):
    """Train the requested classifier and compile its label-logic netlist."""
    from repro.core.adc_aware_training import ADCAwareTrainer
    from repro.core.unary_tree import UnaryDecisionTree
    from repro.mltrees.evaluation import train_test_split
    from repro.mltrees.quantize import quantize_dataset

    dataset = load_dataset(args.dataset, seed=args.seed)
    X_train, _, y_train, _ = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=args.seed
    )
    tree = ADCAwareTrainer(
        max_depth=args.depth, gini_threshold=args.tau, seed=args.seed
    ).fit(quantize_dataset(X_train), y_train, dataset.n_classes)
    return UnaryDecisionTree(tree).to_netlist(
        f"{args.dataset}_label_logic"
    )


def _cmd_cosim(args: argparse.Namespace) -> int:
    """RTL co-simulation of the exported label logic vs the golden model."""
    from repro.circuits.cosim import (
        DEFAULT_RANDOM_VECTORS,
        CosimError,
        find_simulator,
        run_cosim,
        write_cosim_sources,
    )

    netlist = _cosim_netlist(args)
    n_random = args.vectors if args.vectors is not None else DEFAULT_RANDOM_VECTORS
    print(
        f"cosim: {args.dataset} (depth {args.depth}, tau {args.tau:g}, "
        f"seed {args.seed}) -> module {netlist.name!r}, "
        f"{len(netlist.inputs)} inputs, {len(netlist.outputs)} outputs"
    )
    if args.emit:
        dut_path, tb_path, n_vectors, exhaustive = write_cosim_sources(
            netlist, args.emit, seed=args.seed, n_random=n_random
        )
        drive = "exhaustive" if exhaustive else "random"
        print(
            f"wrote {dut_path} and {tb_path} ({n_vectors} {drive} vectors)"
        )
    simulator = find_simulator(args.simulator)
    if simulator is None:
        if args.simulator != "auto":
            print(
                f"cosim: simulator {args.simulator!r} is not installed",
                file=sys.stderr,
            )
            return 2
        # Generation-only degradation: bare containers can still produce and
        # inspect the sources; CI's nightly job installs iverilog to run them.
        message = (
            "no Verilog simulator installed (looked for: "
            + ", ".join(SIMULATORS)
            + "); generation-only run, no simulation performed"
        )
        print(f"cosim: {message}")
        if args.json:
            payload = {
                "schema_version": 1,
                "kind": "cosim_report",
                "module": netlist.name,
                "skipped": True,
                "reason": message,
            }
            Path(args.json).write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote {args.json}")
        return 0
    try:
        report = run_cosim(
            netlist, simulator=simulator, seed=args.seed, n_random=n_random
        )
    except CosimError as exc:
        print(f"cosim: {exc}", file=sys.stderr)
        return 2
    drive = "exhaustive" if report.exhaustive else "random"
    verdict = "PASSED" if report.passed else "FAILED"
    print(
        f"{verdict}: {report.n_vectors} {drive} vectors under "
        f"{report.simulator}, {report.n_mismatches} mismatches "
        f"(exit {report.returncode})"
    )
    if not report.passed and report.log:
        print(report.log, file=sys.stderr)
    if args.json:
        payload = report.to_json_dict()
        payload["skipped"] = False
        Path(args.json).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    exploration = run_robust_exploration(
        args.dataset,
        sigma_v=args.sigma,
        n_trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        training_sigma=args.training_sigma,
        engine=args.engine,
        ppa_backend=args.ppa_backend,
    )
    rows = exploration_rows(exploration.points)
    print(
        f"Variation-aware design-space exploration of {exploration.dataset} "
        f"(sigma {exploration.sigma_v * 1000:g} mV, {exploration.n_trials} "
        f"trials/point, {_training_label(exploration.training_sigma)}, "
        f"seed {args.seed}; baseline accuracy "
        f"{exploration.baseline_accuracy * 100:.2f}%)\n"
    )
    print(
        render_table(
            ["depth", "tau", "acc (%)", "mean drop (%)", "worst drop (%)",
             "area (mm2)", "power (mW)"],
            [
                (r["depth"], r["tau"], r["accuracy_pct"],
                 r["mean_accuracy_drop_pct"], r["worst_case_drop_pct"],
                 r["area_mm2"], r["power_mw"])
                for r in rows
            ],
        )
    )
    selected = exploration.select(
        max_accuracy_loss=args.max_accuracy_loss,
        max_accuracy_drop=args.max_accuracy_drop,
        objective=args.objective,
    )
    drop_label = (
        "unconstrained" if args.max_accuracy_drop is None
        else f"<= {args.max_accuracy_drop:.1%}"
    )
    print(
        f"\nconstraints: accuracy loss <= {args.max_accuracy_loss:.1%}, "
        f"mean accuracy drop {drop_label}, objective {args.objective}"
    )
    if selected is None:
        print("selected: none (no design point satisfies the constraints)")
    else:
        print(
            f"selected: depth {selected.depth}, tau {selected.tau:g} -- "
            f"accuracy {selected.accuracy * 100:.2f}%, "
            f"mean drop {selected.mean_accuracy_drop * 100:.2f}%, "
            f"worst drop {selected.worst_case_drop * 100:.2f}%, "
            f"{selected.hardware.total_power_mw:.3f} mW, "
            f"{selected.hardware.total_area_mm2:.1f} mm2"
        )
    if args.json:
        from repro.analysis.export import robust_exploration_to_json

        path = robust_exploration_to_json(
            exploration, args.json, max_accuracy_loss=args.max_accuracy_loss,
            max_accuracy_drop=args.max_accuracy_drop, objective=args.objective,
        )
        print(f"wrote {path}")
    return 0


def _cmd_variation(args: argparse.Namespace) -> int:
    sigmas = tuple(args.sigmas) if args.sigmas else (0.0, 0.005, 0.01, 0.02, 0.04)
    rows = []
    for sigma_v in sigmas:
        analysis = run_variation_analysis(
            args.dataset,
            sigma_v=sigma_v,
            n_trials=args.trials,
            seed=args.seed,
            depth=args.depth,
            tau=args.tau,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            resolution_bits=args.resolution_bits,
            test_size=args.test_size,
            training_sigma=args.training_sigma,
            robustness_weight=args.robustness_weight,
        )
        rows.append(
            (
                analysis.sigma_v * 1000.0,
                analysis.nominal_accuracy * 100.0,
                analysis.mean_accuracy * 100.0,
                analysis.std_accuracy * 100.0,
                analysis.min_accuracy * 100.0,
                analysis.mean_accuracy_drop * 100.0,
            )
        )
    training = (
        "" if args.training_sigma == 0
        else f", {_training_label(args.training_sigma)}"
    )
    print(
        f"Monte-Carlo comparator-offset robustness of {args.dataset} "
        f"(depth {args.depth}, tau {args.tau:g}, {args.trials} trials, "
        f"seed {args.seed}{training})\n"
    )
    print(
        render_table(
            ["sigma (mV)", "nominal acc (%)", "mean acc (%)", "std (%)",
             "worst acc (%)", "mean drop (%)"],
            rows,
        )
    )
    return 0


def _render_surface_text(surface) -> str:
    """One surface as printed by ``surface`` (text heatmap + per-sigma summary)."""
    from repro.analysis.tables import (
        robustness_surface_rows,
        robustness_surface_summary,
    )

    rows = robustness_surface_rows(surface)
    summary = robustness_surface_summary(surface)
    headers = ["depth", "tau", "nominal acc (%)"] + [
        f"drop@{sigma * 1000:g}mV (%)" for sigma in surface.sigmas
    ]
    summary_lines = "\n".join(
        f"  sigma {entry['sigma_v'] * 1000:g} mV: "
        f"avg mean drop {entry['average_mean_accuracy_drop_pct']:.2f}%, "
        f"max mean drop {entry['max_mean_accuracy_drop_pct']:.2f}%, "
        f"max worst-case drop {entry['max_worst_case_drop_pct']:.2f}%"
        for entry in summary["per_sigma"]
    )
    return "\n".join(
        [
            f"Robustness surface of {surface.dataset} "
            f"({len(surface.sigmas)} sigmas x {len(surface.depths)} depths x "
            f"{len(surface.taus)} taus, {surface.n_trials} trials/point, "
            f"{_training_label(surface.training_sigma)}, seed {surface.seed}; "
            f"baseline accuracy {surface.baseline_accuracy * 100:.2f}%)\n",
            render_table(
                headers,
                [
                    (r["depth"], r["tau"], r["nominal_accuracy_pct"],
                     *r["mean_drop_pct_by_sigma"])
                    for r in rows
                ],
            ),
            "\nper-sigma summary:",
            summary_lines,
        ]
    )


def _cmd_surface(args: argparse.Namespace) -> int:
    """Render the (sigma x depth x tau) robustness surface per benchmark."""
    from repro.analysis.experiments import (
        resolve_suite_datasets,
        run_robustness_surface,
    )

    names = resolve_suite_datasets(
        tuple(args.datasets) if args.datasets else None, args.fast
    )
    surfaces = []
    try:
        for name in names:
            surfaces.append(
                run_robustness_surface(
                    name,
                    tuple(args.sigma),
                    n_trials=args.trials,
                    seed=args.seed,
                    jobs=args.jobs,
                    cache_dir=args.cache_dir,
                    use_cache=not args.no_cache,
                    training_sigma=args.training_sigma,
                    cache_only=args.cache_only,
                    engine=args.engine,
                    ppa_backend=args.ppa_backend,
                )
            )
    except MissingResultsError as exc:
        print(f"surface: {exc}", file=sys.stderr)
        print(
            "run the missing shards (repro.cli suite --shard K/N --sigma ...) "
            "and retry",
            file=sys.stderr,
        )
        return 1
    except ValueError as exc:
        # Incompatible flags (e.g. --cache-only with a report PPA backend).
        print(f"surface: {exc}", file=sys.stderr)
        return 2
    print("\n\n".join(_render_surface_text(surface) for surface in surfaces))
    if args.json:
        from repro.analysis.export import robustness_surface_to_json

        path = robustness_surface_to_json(surfaces, args.json)
        print(f"wrote {path}")
    if args.html:
        from repro.search import render_surface

        Path(args.html).write_text(
            render_surface([surface.to_json_dict() for surface in surfaces]),
            encoding="utf-8",
        )
        print(f"wrote {args.html}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """Budgeted multi-objective search (see ``docs/SEARCH.md``)."""
    from repro.analysis.experiments import run_search_study
    from repro.search import render_dashboard

    objectives = tuple(args.objective) if args.objective else ("-accuracy", "power")
    try:
        result = run_search_study(
            args.dataset,
            budget=args.budget,
            objectives=objectives,
            seed=args.seed,
            space=args.space,
            sigma_v=args.sigma,
            variation_trials=args.trials,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            batch_size=args.batch_size,
            cache_only=args.cache_only,
            ppa_backend=args.ppa_backend,
        )
    except MissingResultsError as exc:
        # --cache-only: a trial would have had to train.  Same discipline
        # (and exit code) as an assemble over an incomplete store.
        print(f"search: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # Bad objective spellings / incompatible flags (e.g. the
        # mean_accuracy_drop objective without --sigma) are usage errors.
        print(f"search: {exc}", file=sys.stderr)
        return 2
    front_numbers = set(result.front_numbers)
    print(
        f"Budgeted search of {result.dataset} ({args.space} space, budget "
        f"{result.budget}, seed {result.seed}, objectives "
        f"{', '.join(result.objectives)}): {len(result.trials)} trials, "
        f"{result.n_from_cache} from cache / {result.n_trained} trained, "
        f"{len(result.front_numbers)} on the front\n"
    )
    print(
        render_table(
            ["#", "depth", "tau", "acc (%)", "power (uW)", "area (mm2)",
             "mean drop (%)", "source", "front"],
            [
                (
                    trial.number,
                    trial.config["depth"],
                    trial.config["tau"],
                    trial.accuracy * 100.0,
                    trial.power_uw,
                    trial.area_mm2,
                    "-" if trial.mean_accuracy_drop is None
                    else trial.mean_accuracy_drop * 100.0,
                    "cache" if trial.from_cache else "trained",
                    "*" if trial.number in front_numbers else "",
                )
                for trial in result.trials
            ],
        )
    )
    if args.json:
        Path(args.json).write_text(result.to_json() + "\n", encoding="utf-8")
        print(f"wrote {args.json}")
    if args.html:
        Path(args.html).write_text(
            render_dashboard(result.to_json_dict()), encoding="utf-8"
        )
        print(f"wrote {args.html}")
    return 0


def _cache_store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(args.cache_dir) if args.cache_dir else ResultStore()


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    disk = store.disk_stats()
    lifetime = store.lifetime_stats()
    search = store.lifetime_search_stats()
    requests = lifetime["hits"] + lifetime["misses"]
    hit_rate = (lifetime["hits"] / requests * 100.0) if requests else 0.0
    n_search_trials = search["from_cache"] + search["trained"]
    if args.json:
        # Machine-readable variant: CI steps assert on hit/miss counts by
        # parsing this instead of grepping the human rendering.  The
        # "search" section carries the study trial accounting the nightly
        # search job asserts its warm-start rate on.
        print(
            json.dumps(
                {
                    "store": str(store.cache_dir),
                    "entries": {
                        "n_entries": disk.n_entries,
                        "total_bytes": disk.total_bytes,
                        "oldest_age_s": disk.oldest_age_s,
                        "newest_age_s": disk.newest_age_s,
                    },
                    "lifetime": lifetime,
                    "hit_rate": (lifetime["hits"] / requests) if requests else None,
                    "search": {
                        "from_cache": search["from_cache"],
                        "trained": search["trained"],
                        "warm_start_rate": (
                            search["from_cache"] / n_search_trials
                            if n_search_trials
                            else None
                        ),
                    },
                },
                sort_keys=True,
            )
        )
        return 0
    print(f"store:     {store.cache_dir}")
    print(f"entries:   {disk.n_entries}  ({disk.total_bytes / 1e6:.2f} MB)")
    if disk.oldest_age_s is not None:
        print(
            f"age:       oldest {disk.oldest_age_s / 86400.0:.1f} d, "
            f"newest {disk.newest_age_s / 86400.0:.1f} d"
        )
    print(
        f"lifetime:  {lifetime['hits']} hits / {lifetime['misses']} misses "
        f"({hit_rate:.0f}% hit rate), {lifetime['stores']} stores"
    )
    if n_search_trials:
        print(
            f"search:    {search['from_cache']} trials from cache / "
            f"{search['trained']} trained "
            f"({search['from_cache'] / n_search_trials * 100.0:.0f}% warm-start)"
        )
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    removed = store.clear()
    print(f"removed {removed} entries from {store.cache_dir}")
    return 0


def _cmd_cache_export(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    path = store.export_archive(args.output)
    disk = store.disk_stats()
    print(
        f"exported {disk.n_entries} entries ({disk.total_bytes / 1e6:.2f} MB) "
        f"from {store.cache_dir} to {path}"
    )
    return 0


def _cmd_cache_import(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    for archive in args.archives:
        try:
            report = store.import_archive(archive)
        except (OSError, ValueError) as exc:
            print(f"cache import: {exc}", file=sys.stderr)
            return 2
        print(
            f"imported {archive}: {report.merged} new entries, "
            f"{report.skipped} already present"
        )
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    if args.older_than_days is None and args.max_bytes is None:
        print("cache prune: pass --older-than-days and/or --max-bytes", file=sys.stderr)
        return 2
    store = _cache_store(args)
    if args.older_than_days is not None:
        removed = store.prune_older_than(args.older_than_days * 86400.0)
        print(
            f"pruned {removed} entries older than {args.older_than_days:g} days "
            f"from {store.cache_dir}"
        )
    if args.max_bytes is not None:
        removed = store.prune_to_size(args.max_bytes)
        total = store.disk_stats().total_bytes
        print(
            f"evicted {removed} least-recently-used entries from {store.cache_dir} "
            f"({total / 1e6:.2f} MB <= {args.max_bytes / 1e6:.2f} MB budget)"
        )
    return 0


def _registry(args: argparse.Namespace):
    from repro.serve.registry import ModelRegistry

    return ModelRegistry(args.registry_dir)


def _cmd_registry_promote(args: argparse.Namespace) -> int:
    from repro.serve.registry import promote_design

    artifact = promote_design(
        _registry(args),
        args.dataset,
        args.depth,
        args.tau,
        name=args.name,
        seed=args.seed,
        training_sigma=args.training_sigma,
        robustness_weight=args.robustness_weight,
        cache_dir=args.cache_dir,
    )
    meta = artifact.kernel_meta
    print(
        f"promoted {artifact.name}/v{artifact.version} "
        f"(digest {artifact.digest[:12]}): {artifact.dataset} depth "
        f"{artifact.depth} tau {artifact.tau:g}, accuracy "
        f"{artifact.accuracy:.4f}, kernel {meta['n_cubes']} cubes / "
        f"{meta['n_literals']} literals over {meta['n_digits']} digits"
    )
    return 0


def _cmd_registry_list(args: argparse.Namespace) -> int:
    registry = _registry(args)
    entries = [registry.manifest(name) for name in registry.list_models()]
    if args.json:
        print(json.dumps(entries, sort_keys=True))
        return 0
    if not entries:
        print(f"no models in {registry.registry_dir}")
        return 0
    for manifest in entries:
        print(
            f"{manifest['name']}/v{manifest['version']}  "
            f"{manifest['dataset']}  depth {manifest['depth']} "
            f"tau {manifest['tau']:g}  accuracy {manifest['accuracy']:.4f}  "
            f"digest {manifest['digest'][:12]}"
        )
    return 0


def _cmd_registry_show(args: argparse.Namespace) -> int:
    registry = _registry(args)
    try:
        if args.datasheet:
            print(registry.load(args.name, args.version).datasheet)
        else:
            print(
                json.dumps(
                    registry.manifest(args.name, args.version),
                    sort_keys=True,
                    indent=2,
                )
            )
    except KeyError as exc:
        print(f"registry show: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def _snapshot_dir(root: Path) -> tuple:
    """Immutable (path, size, mtime_ns) listing of every file under ``root``."""
    if not root.is_dir():
        return ()
    return tuple(
        sorted(
            (str(path.relative_to(root)), stat.st_size, stat.st_mtime_ns)
            for path in root.rglob("*")
            if path.is_file()
            for stat in (path.stat(),)
        )
    )


def _cmd_serve_smoke(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from repro.core.store import default_cache_dir
    from repro.serve.batching import BatchingConfig
    from repro.serve.loadgen import run_open_loop
    from repro.serve.registry import ModelRegistry, promote_design
    from repro.serve.scorer import AsyncScorer

    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    with tempfile.TemporaryDirectory() as scratch:
        registry = ModelRegistry(args.registry_dir if args.registry_dir else scratch)
        # Snapshot before the promote: its cache lookup is the serving stack's
        # only contact with the store and must be read-only too.
        before = _snapshot_dir(cache_dir)
        artifact = promote_design(
            registry,
            args.dataset,
            args.depth,
            args.tau,
            seed=args.seed,
            cache_dir=cache_dir,
        )
        data = load_dataset(args.dataset, seed=args.seed)

        async def drive():
            async with AsyncScorer(
                artifact,
                engine=args.engine,
                config=BatchingConfig(
                    max_batch_size=args.max_batch_size,
                    max_wait_us=args.max_wait_us,
                ),
            ) as scorer:
                return await run_open_loop(
                    scorer, data.X, args.rate, duration_s=args.duration
                )

        report = asyncio.run(drive())
        after = _snapshot_dir(cache_dir)

    print(f"serving {artifact.name}/v{artifact.version} [{args.engine}]:")
    print(report.summary())
    failures = []
    if report.p99_ms > args.p99_slo_ms:
        failures.append(
            f"p99 {report.p99_ms:.3f}ms exceeds the {args.p99_slo_ms:g}ms SLO"
        )
    if report.n_errors:
        failures.append(f"{report.n_errors} requests errored")
    if before != after:
        failures.append(
            f"cache dir {cache_dir} was written during serving "
            f"({len(before)} files before, {len(after)} after)"
        )
    if args.json:
        payload = report.to_dict()
        payload.update(
            {
                "model": f"{artifact.name}/v{artifact.version}",
                "dataset": artifact.dataset,
                "engine": args.engine,
                "p99_slo_ms": args.p99_slo_ms,
                "cache_writes_during_serving": int(before != after),
                "slo_failures": failures,
            }
        )
        Path(args.json).write_text(json.dumps(payload, sort_keys=True, indent=2))
    if failures:
        for failure in failures:
            print(f"serve smoke: {failure}", file=sys.stderr)
        return 1
    print(
        f"SLO ok: p99 {report.p99_ms:.3f}ms <= {args.p99_slo_ms:g}ms, "
        "0 cache writes during serving"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the bespoke ADC / "
        "decision-tree co-design paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig3 = subparsers.add_parser("fig3", help="bespoke ADC area/power scaling (Fig. 3)")
    fig3.set_defaults(handler=_cmd_fig3)

    for name, handler, description in [
        ("table1", _cmd_table1, "baseline bespoke decision trees (Table I)"),
        ("fig4", _cmd_fig4, "gains of unary architecture + bespoke ADCs (Fig. 4)"),
        ("fig5", _cmd_fig5, "gains of ADC-aware training (Fig. 5)"),
        ("table2", _cmd_table2, "co-designed classifiers at <=1% loss (Table II)"),
    ]:
        sub = subparsers.add_parser(name, help=description)
        _add_suite_arguments(sub)
        sub.set_defaults(handler=handler)
        if name == "table2":
            # Offset-aware variant: Monte-Carlo robustness joins the selection.
            sub.add_argument(
                "--sigma",
                type=_sigma_argument,
                nargs="+",
                default=None,
                metavar="SIGMA",
                help="comparator offset sigmas in volts (one or more); when "
                "given, select designs under the robustness budget at each "
                "sigma (offset-aware Table II)",
            )
            sub.add_argument(
                "--trials",
                type=int,
                default=100,
                help="Monte-Carlo trials per design point (with --sigma)",
            )
            sub.add_argument(
                "--max-accuracy-drop",
                type=float,
                default=0.01,
                help="maximum allowed mean accuracy drop under offsets "
                "(with --sigma; default 1%%)",
            )
            sub.add_argument(
                "--training-sigma",
                type=_sigma_argument,
                default=0.0,
                help="comparator offset sigma in volts the *trainer* assumes "
                "(with --sigma): split scores carry the analytic expected "
                "digit-flip penalty, so the selected designs are robust by "
                "training rather than by hardware margin (default: nominal)",
            )

    explore = subparsers.add_parser(
        "explore",
        help="variation-aware design-space exploration with constrained selection",
    )
    explore.add_argument(
        "--dataset",
        default="seeds",
        choices=dataset_names(),
        help="benchmark to explore (default: seeds)",
    )
    explore.add_argument(
        "--sigma",
        type=_sigma_argument,
        default=0.02,
        help="comparator offset sigma in volts (default: 20 mV)",
    )
    explore.add_argument(
        "--trials", type=int, default=100, help="Monte-Carlo trials per design point"
    )
    explore.add_argument(
        "--training-sigma",
        type=_sigma_argument,
        default=0.0,
        help="comparator offset sigma in volts the *trainer* assumes; split "
        "scores carry the analytic expected digit-flip penalty at this "
        "sigma, steering thresholds into sparse sample regions "
        "(default: 0, nominal Gini training)",
    )
    explore.add_argument(
        "--max-accuracy-loss",
        type=float,
        default=0.01,
        help="nominal accuracy-loss constraint vs the baseline (default 1%%)",
    )
    explore.add_argument(
        "--max-accuracy-drop",
        type=float,
        default=None,
        help="maximum allowed mean accuracy drop under offsets (default: "
        "unconstrained)",
    )
    explore.add_argument(
        "--objective",
        choices=("power", "area"),
        default="power",
        help="hardware objective of the constrained selection",
    )
    explore.add_argument("--seed", type=int, default=0, help="global seed")
    explore.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes for the sweep and the per-point Monte-Carlo "
        "(default: serial; 0 = one per CPU)",
    )
    explore.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result store "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    explore.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result store and recompute everything",
    )
    explore.add_argument(
        "--json",
        default=None,
        help="also write the robustness-annotated grid to this JSON file",
    )
    _add_engine_argument(explore)
    _add_ppa_backend_argument(explore)
    explore.set_defaults(handler=_cmd_explore)

    variation = subparsers.add_parser(
        "variation",
        help="Monte-Carlo comparator-offset robustness of a co-designed classifier",
    )
    variation.add_argument(
        "--dataset", required=True, choices=dataset_names(), help="benchmark to analyze"
    )
    variation.add_argument(
        "--sigma",
        "--sigmas",
        dest="sigmas",
        type=_sigma_argument,
        nargs="+",
        default=None,
        metavar="SIGMA",
        help="offset sigmas in volts, one or more (--sigmas is an alias; "
        "default: 0 5m 10m 20m 40m)",
    )
    variation.add_argument(
        "--trials", type=int, default=100, help="Monte-Carlo trials per sigma"
    )
    variation.add_argument("--depth", type=int, default=4, help="tree depth")
    variation.add_argument("--tau", type=float, default=0.01, help="Gini tolerance")
    variation.add_argument("--seed", type=int, default=0, help="global seed")
    variation.add_argument(
        "--training-sigma",
        type=_sigma_argument,
        default=0.0,
        help="comparator offset sigma in volts the *trainer* assumes; the "
        "classifier under test is the offset-aware tree, cached under the "
        "same keys sharded suite runs and explore use (default: nominal)",
    )
    variation.add_argument(
        "--robustness-weight",
        type=float,
        default=1.0,
        help="weight of the expected-flip penalty during training "
        "(active only with --training-sigma > 0)",
    )
    variation.add_argument(
        "--resolution-bits",
        type=int,
        default=4,
        help="ADC resolution of the classifier under test (default: 4)",
    )
    variation.add_argument(
        "--test-size",
        type=float,
        default=0.3,
        help="held-out fraction of the train/test split (default: 0.3)",
    )
    variation.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes for trial batches (default: serial; 0 = one per CPU)",
    )
    variation.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result store "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    variation.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result store and recompute the analysis",
    )
    variation.set_defaults(handler=_cmd_variation)

    surface = subparsers.add_parser(
        "surface",
        help="map the (sigma x depth x tau) robustness surface per benchmark "
        "from the variation Monte-Carlo pool",
    )
    _add_suite_arguments(surface)
    surface.add_argument(
        "--sigma",
        type=_sigma_argument,
        nargs="+",
        required=True,
        metavar="SIGMA",
        help="comparator offset sigmas in volts (one or more; canonicalized, "
        "so order and duplicates never change the result)",
    )
    surface.add_argument(
        "--trials",
        type=int,
        default=100,
        help="Monte-Carlo trials per (sigma, depth, tau) point",
    )
    surface.add_argument(
        "--training-sigma",
        type=_sigma_argument,
        default=0.0,
        help="comparator offset sigma in volts the trainer assumes "
        "(default: nominal training)",
    )
    surface.add_argument(
        "--cache-only",
        action="store_true",
        help="strict assemble mode: resolve every point from the store, "
        "never compute (exit 1 with the missing unit keys listed)",
    )
    surface.add_argument(
        "--json",
        default=None,
        help="write the machine-readable surface report here",
    )
    surface.add_argument(
        "--html",
        default=None,
        help="write the self-contained SVG heatmap dashboard here",
    )
    surface.set_defaults(handler=_cmd_surface)

    search = subparsers.add_parser(
        "search",
        help="budgeted multi-objective design-space search (Pareto-TPE + "
        "NSGA-II fronts) warm-started from the result store",
    )
    search.add_argument(
        "--dataset", required=True, choices=dataset_names(), help="benchmark to search"
    )
    search.add_argument(
        "--budget", type=int, required=True, help="trial budget of the study"
    )
    search.add_argument(
        "--objective",
        action="append",
        default=None,
        metavar="METRIC",
        help="objective metric, repeatable; each is minimized, prefix '-' to "
        "maximize (spell maximized metrics as --objective=-accuracy so the "
        "leading dash survives argparse).  Default: -accuracy power; "
        "metrics: accuracy, power, area, mean_accuracy_drop",
    )
    search.add_argument(
        "--space",
        choices=space_names(),
        default="paper",
        help="parameter space to search (default: the paper's 49-point grid)",
    )
    search.add_argument(
        "--sigma",
        type=_sigma_argument,
        default=None,
        help="comparator offset sigma in volts; required by the "
        "mean_accuracy_drop objective (shares the variation Monte-Carlo pool)",
    )
    search.add_argument(
        "--trials",
        type=int,
        default=100,
        help="Monte-Carlo trials per design point (with --sigma)",
    )
    search.add_argument("--seed", type=int, default=0, help="global seed")
    search.add_argument(
        "--batch-size",
        type=int,
        default=4,
        help="trials per ask/tell round (fixed independently of --jobs, so "
        "serial and parallel studies are identical)",
    )
    search.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes for unresolved trials "
        "(default: serial; 0 = one per CPU)",
    )
    search.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result store "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    search.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result store and train every trial",
    )
    search.add_argument(
        "--cache-only",
        action="store_true",
        help="strict warm-start mode: fail (exit 1, missing keys listed) if "
        "any trial would have to train instead of resolving from the store",
    )
    search.add_argument(
        "--json", default=None, help="write the JSON study record here"
    )
    search.add_argument(
        "--html",
        default=None,
        help="write the self-contained HTML Pareto dashboard here",
    )
    _add_ppa_backend_argument(search)
    search.set_defaults(handler=_cmd_search)

    suite = subparsers.add_parser(
        "suite",
        help="compute one shard of the suite's work units into the result store",
    )
    assemble = subparsers.add_parser(
        "assemble",
        help="merge shard stores and render all tables from cache hits only",
    )
    for sub in (suite, assemble):
        sub.add_argument(
            "--datasets",
            nargs="*",
            default=None,
            choices=dataset_names(),
            help="benchmarks in the plan (default: all eight)",
        )
        sub.add_argument("--seed", type=int, default=0, help="global seed")
        sub.add_argument(
            "--fast",
            action="store_true",
            help="restrict the default dataset list to the four small benchmarks",
        )
        sub.add_argument(
            "--sigma",
            type=_sigma_argument,
            nargs="+",
            default=None,
            metavar="SIGMA",
            help="also plan one offset Monte-Carlo unit per (dataset, sigma, "
            "depth, tau) point at these comparator sigmas in volts "
            "(one or more values; order and duplicates never change the plan)",
        )
        sub.add_argument(
            "--trials",
            type=int,
            default=100,
            help="Monte-Carlo trials per variation unit (with --sigma)",
        )
        sub.add_argument(
            "--training-sigma",
            type=_sigma_argument,
            default=0.0,
            help="comparator offset sigma in volts the trainer assumes "
            "(default: nominal training)",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            help="directory of the on-disk result store "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
        )
    suite.add_argument(
        "--shard",
        type=_shard_argument,
        default=ShardSpec(1, 1),
        help="K/N: compute only the units stable-hashed to shard K of N "
        "(default 1/1, the whole plan)",
    )
    suite.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes for this shard's units "
        "(default: serial; 0 = one per CPU)",
    )
    suite.add_argument(
        "--list-units",
        action="store_true",
        help="print the shard's planned units and exit without computing",
    )
    suite.set_defaults(handler=_cmd_suite)
    assemble.add_argument(
        "--from-archive",
        action="append",
        default=None,
        metavar="ARCHIVE",
        help="merge this exported shard archive into the store first "
        "(repeatable)",
    )
    assemble.add_argument(
        "--from-store",
        action="append",
        default=None,
        metavar="DIR",
        help="merge this shard store directory into the store first "
        "(repeatable)",
    )
    assemble.add_argument(
        "--max-accuracy-drop",
        type=float,
        default=0.01,
        help="robustness budget of the offset-aware Table II "
        "(with --sigma; default 1%%)",
    )
    assemble.add_argument(
        "--output-dir",
        default=None,
        help="also write each rendered section to this directory "
        "(table1.txt, table2.txt, fig4.txt, fig5.txt, ...)",
    )
    assemble.set_defaults(handler=_cmd_assemble)

    cache = subparsers.add_parser(
        "cache", help="inspect or maintain the on-disk result store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for cache_name, cache_handler, cache_help in [
        ("stats", _cmd_cache_stats, "entry count, size and lifetime hit/miss totals"),
        ("clear", _cmd_cache_clear, "drop every stored entry"),
        ("prune", _cmd_cache_prune, "drop entries by age and/or LRU size budget"),
        ("export", _cmd_cache_export, "pack the store into a portable .tar.gz"),
        ("import", _cmd_cache_import, "merge exported archives into the store"),
    ]:
        sub = cache_sub.add_parser(cache_name, help=cache_help)
        sub.add_argument(
            "--cache-dir",
            default=None,
            help="directory of the on-disk result store "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
        )
        if cache_name == "stats":
            sub.add_argument(
                "--json",
                action="store_true",
                help="emit machine-readable JSON (for CI assertions) instead "
                "of the human rendering",
            )
        if cache_name == "prune":
            sub.add_argument(
                "--older-than-days",
                type=_age_days_argument,
                default=None,
                help="drop entries untouched for more than this many days",
            )
            sub.add_argument(
                "--max-bytes",
                type=_bytes_argument,
                default=None,
                help="evict least-recently-used entries until the store "
                "fits this size budget",
            )
        if cache_name == "export":
            sub.add_argument(
                "--output",
                required=True,
                help="path of the .tar.gz archive to write",
            )
        if cache_name == "import":
            sub.add_argument(
                "archives",
                nargs="+",
                help="archives produced by 'cache export' to merge in",
            )
        sub.set_defaults(handler=cache_handler)

    registry = subparsers.add_parser(
        "registry",
        help="promote, list and inspect named versioned model artifacts",
    )
    registry_sub = registry.add_subparsers(dest="registry_command", required=True)
    promote = registry_sub.add_parser(
        "promote",
        help="promote one trained (dataset, depth, tau) design to an artifact",
    )
    promote.add_argument(
        "--dataset", required=True, choices=dataset_names(), help="benchmark to use"
    )
    promote.add_argument("--depth", type=int, required=True, help="tree depth")
    promote.add_argument("--tau", type=float, default=0.0, help="Gini tolerance")
    promote.add_argument(
        "--name",
        default=None,
        help="registry name of the artifact (default: <dataset>-d<depth>)",
    )
    promote.add_argument("--seed", type=int, default=0, help="global seed")
    promote.add_argument(
        "--training-sigma",
        type=_sigma_argument,
        default=0.0,
        help="offset-aware training sigma in volts (0 = nominal training)",
    )
    promote.add_argument(
        "--robustness-weight",
        type=float,
        default=1.0,
        help="weight of the expected-flip penalty during training",
    )
    promote.add_argument(
        "--cache-dir",
        default=None,
        help="result store consulted (read-only) before retraining "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    promote.set_defaults(handler=_cmd_registry_promote)
    registry_list = registry_sub.add_parser(
        "list", help="list promoted models (latest version each)"
    )
    registry_list.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    registry_list.set_defaults(handler=_cmd_registry_list)
    registry_show = registry_sub.add_parser(
        "show", help="print one model's manifest (or its datasheet)"
    )
    registry_show.add_argument("name", help="registry name of the model")
    registry_show.add_argument(
        "--version", type=int, default=None, help="version to show (default: latest)"
    )
    registry_show.add_argument(
        "--datasheet",
        action="store_true",
        help="print the artifact's rendered hardware datasheet instead",
    )
    registry_show.set_defaults(handler=_cmd_registry_show)
    for registry_cmd in (promote, registry_list, registry_show):
        registry_cmd.add_argument(
            "--registry-dir",
            default=None,
            help="model registry directory "
            "(default: $REPRO_REGISTRY_DIR or ~/.cache/repro/registry)",
        )

    serve = subparsers.add_parser(
        "serve", help="serving-layer utilities (load-gen SLO smoke)"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    smoke = serve_sub.add_parser(
        "smoke",
        help="promote a model, drive it open-loop, assert the p99 SLO and "
        "that serving wrote zero bytes to the result store",
    )
    smoke.add_argument(
        "--dataset", required=True, choices=dataset_names(), help="benchmark to serve"
    )
    smoke.add_argument("--depth", type=int, default=8, help="tree depth")
    smoke.add_argument("--tau", type=float, default=0.0, help="Gini tolerance")
    smoke.add_argument("--seed", type=int, default=0, help="global seed")
    smoke.add_argument(
        "--engine",
        choices=ENGINES,
        default="bitparallel",
        help="inference engine serving the flushes",
    )
    smoke.add_argument(
        "--rate", type=float, default=500.0, help="open-loop request rate (req/s)"
    )
    smoke.add_argument(
        "--duration", type=float, default=5.0, help="run length in seconds"
    )
    smoke.add_argument(
        "--p99-slo-ms",
        type=float,
        default=50.0,
        help="p99 latency SLO asserted on the run (milliseconds)",
    )
    smoke.add_argument(
        "--max-batch-size", type=int, default=256, help="micro-batch flush size"
    )
    smoke.add_argument(
        "--max-wait-us",
        type=float,
        default=200.0,
        help="micro-batch accumulation window (microseconds)",
    )
    smoke.add_argument(
        "--cache-dir",
        default=None,
        help="result store the promote may read (watched for writes; "
        "default: $REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    smoke.add_argument(
        "--registry-dir",
        default=None,
        help="model registry directory (default: a throwaway temp dir)",
    )
    smoke.add_argument(
        "--json", default=None, help="write the machine-readable report here"
    )
    smoke.set_defaults(handler=_cmd_serve_smoke)

    datasheet = subparsers.add_parser(
        "datasheet",
        help="train one ADC-aware classifier and print its hardware datasheet",
    )
    datasheet.add_argument(
        "--dataset", required=True, choices=dataset_names(), help="benchmark to use"
    )
    datasheet.add_argument("--depth", type=int, default=4, help="tree depth")
    datasheet.add_argument("--tau", type=float, default=0.01, help="Gini tolerance")
    datasheet.add_argument("--seed", type=int, default=0, help="global seed")
    _add_ppa_backend_argument(datasheet)
    datasheet.set_defaults(handler=_cmd_datasheet)

    cosim = subparsers.add_parser(
        "cosim",
        help="co-simulate the exported Verilog label logic against the "
        "golden netlist model (see docs/HARDWARE.md)",
    )
    cosim.add_argument(
        "--dataset", required=True, choices=dataset_names(), help="benchmark to use"
    )
    cosim.add_argument("--depth", type=int, default=4, help="tree depth")
    cosim.add_argument("--tau", type=float, default=0.01, help="Gini tolerance")
    cosim.add_argument("--seed", type=int, default=0, help="global seed")
    cosim.add_argument(
        "--simulator",
        choices=("auto",) + SIMULATORS,
        default="auto",
        help="Verilog simulator to run under ('auto' picks the first "
        "installed one and degrades to generation-only when none is found; "
        "naming one explicitly fails with exit 2 if it is not installed)",
    )
    cosim.add_argument(
        "--vectors",
        type=int,
        default=None,
        metavar="N",
        help="random stimulus vectors when the input count exceeds the "
        "exhaustive threshold (default: 256; below the threshold every "
        "input combination is always applied)",
    )
    cosim.add_argument(
        "--emit",
        default=None,
        metavar="DIR",
        help="also write dut.v and tb.v into this directory",
    )
    cosim.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the machine-readable CosimReport here",
    )
    cosim.set_defaults(handler=_cmd_cosim)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
