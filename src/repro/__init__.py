"""repro -- bespoke ADC / decision-tree co-design for printed on-sensor ML.

Reproduction of "On-Sensor Printed Machine Learning Classification via
Bespoke ADC and Decision Tree Co-Design" (DATE 2024).

Public API highlights
---------------------
* :class:`repro.core.CoDesignFramework` -- end-to-end flow: baseline [2],
  parallel unary architecture with bespoke ADCs, ADC-aware training and the
  accuracy-constrained design-space exploration.
* :class:`repro.core.ADCAwareTrainer` -- Algorithm 1 of the paper.
* :class:`repro.core.UnaryDecisionTree` -- the parallel unary decision-tree
  architecture (Section III-A).
* :func:`repro.core.build_bespoke_frontend` -- bespoke ADC generation
  (Section III-B).
* :mod:`repro.datasets` -- the eight benchmark datasets (synthetic stand-ins).
* :mod:`repro.pdk`, :mod:`repro.adc`, :mod:`repro.circuits`,
  :mod:`repro.mltrees` -- the substrates everything is built on.
* :mod:`repro.analysis` -- regeneration of every table/figure of the paper.
"""

from repro.core import (
    ADCAwareTrainer,
    ClassifierDesign,
    CoDesignFramework,
    CoDesignResult,
    DesignPoint,
    DesignSpaceExplorer,
    Executor,
    HardwareReport,
    ParallelExecutor,
    ResultStore,
    SelfPowerAnalysis,
    SerialExecutor,
    UnaryDecisionTree,
    analyze_self_power,
    build_bespoke_adcs,
    build_bespoke_frontend,
    get_executor,
    select_best_design,
)
from repro.datasets import Dataset, dataset_names, load_dataset
from repro.pdk import EGFETTechnology, default_technology

__version__ = "1.8.0"

__all__ = [
    "ADCAwareTrainer",
    "ClassifierDesign",
    "CoDesignFramework",
    "CoDesignResult",
    "DesignPoint",
    "DesignSpaceExplorer",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "ResultStore",
    "HardwareReport",
    "SelfPowerAnalysis",
    "UnaryDecisionTree",
    "analyze_self_power",
    "build_bespoke_adcs",
    "build_bespoke_frontend",
    "select_best_design",
    "Dataset",
    "dataset_names",
    "load_dataset",
    "EGFETTechnology",
    "default_technology",
    "__version__",
]
