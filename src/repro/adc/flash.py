"""Conventional flash ADC model (Fig. 1a of the paper).

A conventional N-bit flash ADC consists of a resistor ladder, ``2**N - 1``
comparators and a priority encoder.  The model exposes the same conversion
behaviour and an area/power breakdown, calibrated so that the 4-bit instance
matches the 11 mm2 / 0.83 mW quoted in Section III-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adc.encoder import PriorityEncoder
from repro.adc.thermometer import level_to_binary, quantize_to_level, to_thermometer
from repro.pdk.egfet import EGFETTechnology, default_technology


@dataclass(frozen=True)
class ADCConversion:
    """Result of digitizing one analog sample.

    Attributes
    ----------
    level:
        Number of comparators that fired (the digital code value).
    thermometer:
        Full thermometer word, digit ``k`` at index ``k - 1``.
    binary:
        Binary output word, MSB first (empty for encoder-less ADCs).
    """

    level: int
    thermometer: tuple[int, ...]
    binary: tuple[int, ...]


@dataclass(frozen=True)
class FlashADC:
    """Behavioral conventional flash ADC.

    Attributes
    ----------
    resolution_bits:
        ADC resolution N.
    technology:
        EGFET technology providing all cost constants.
    include_encoder:
        When False the ADC exposes the raw thermometer code (this is the
        "encoder removed" intermediate step of Section III-B, before
        comparators are also pruned).
    """

    resolution_bits: int = 4
    technology: EGFETTechnology = field(default_factory=default_technology)
    include_encoder: bool = True

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError("ADC resolution must be at least 1 bit")

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def n_comparators(self) -> int:
        """Number of comparators in the bank (``2**N - 1``)."""
        return 2 ** self.resolution_bits - 1

    @property
    def comparator_levels(self) -> tuple[int, ...]:
        """Reference-level indices of every comparator (1-based)."""
        return tuple(range(1, self.n_comparators + 1))

    @property
    def encoder(self) -> PriorityEncoder | None:
        """The priority encoder instance, or ``None`` when omitted."""
        if not self.include_encoder:
            return None
        return PriorityEncoder(self.resolution_bits, self.technology)

    # ------------------------------------------------------------------ #
    # cost
    # ------------------------------------------------------------------ #
    @property
    def ladder_area_mm2(self) -> float:
        """Area of the reference resistor ladder."""
        return self.technology.ladder_for(self.resolution_bits).area_mm2

    @property
    def ladder_power_uw(self) -> float:
        """Static power of the reference resistor ladder."""
        return self.technology.ladder_for(self.resolution_bits).power_uw

    @property
    def comparator_area_mm2(self) -> float:
        """Area of the comparator bank."""
        return self.technology.comparator.bank_area_mm2(self.n_comparators)

    @property
    def comparator_power_uw(self) -> float:
        """Power of the comparator bank."""
        return self.technology.comparator.bank_power_uw(list(self.comparator_levels))

    @property
    def encoder_area_mm2(self) -> float:
        """Area of the priority encoder (0 when omitted)."""
        encoder = self.encoder
        return encoder.area_mm2 if encoder is not None else 0.0

    @property
    def encoder_power_uw(self) -> float:
        """Power of the priority encoder (0 when omitted)."""
        encoder = self.encoder
        return encoder.power_uw if encoder is not None else 0.0

    @property
    def area_mm2(self) -> float:
        """Total ADC area."""
        return self.ladder_area_mm2 + self.comparator_area_mm2 + self.encoder_area_mm2

    @property
    def power_uw(self) -> float:
        """Total ADC power in uW."""
        return self.ladder_power_uw + self.comparator_power_uw + self.encoder_power_uw

    @property
    def power_mw(self) -> float:
        """Total ADC power in mW."""
        return self.power_uw / 1000.0

    # ------------------------------------------------------------------ #
    # behaviour
    # ------------------------------------------------------------------ #
    def convert(self, value: float) -> ADCConversion:
        """Digitize a normalized sample in ``[0, 1]``."""
        level = quantize_to_level(value, self.resolution_bits)
        thermometer = to_thermometer(level, self.n_comparators)
        binary: tuple[int, ...] = ()
        if self.include_encoder:
            binary = level_to_binary(level, self.resolution_bits)
        return ADCConversion(level=level, thermometer=thermometer, binary=binary)
