"""Thermometer (parallel unary) coding utilities.

Conventions used throughout the repository (they mirror Eq. (1)/(2) of the
paper):

* Features are normalized to ``[0, 1]`` and digitized by an N-bit flash ADC
  whose comparator ``k`` (1-based, ``k = 1 .. 2**N - 1``) fires when the
  input is **at least** ``k / 2**N`` of full scale.
* The *level* of a sample is the number of comparators that fire, i.e. an
  integer in ``[0, 2**N - 1]``.
* The *unary digit* ``I[k]`` is comparator ``k``'s output, so
  ``I >= k/2**N  <=>  I[k] == 1`` -- exactly the reduction the parallel unary
  decision trees rely on.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def quantize_to_level(value: float, resolution_bits: int) -> int:
    """Digitize a normalized value into its flash-ADC level.

    Parameters
    ----------
    value:
        Normalized analog sample.  Values are clipped to ``[0, 1]``, which is
        what a real ADC does with out-of-range inputs.
    resolution_bits:
        ADC resolution N; the result lies in ``[0, 2**N - 1]``.
    """
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    n_levels = 2 ** resolution_bits
    clipped = min(max(float(value), 0.0), 1.0)
    level = int(np.floor(clipped * n_levels + 1e-12))
    return min(level, n_levels - 1)


def quantize_array_to_levels(values: np.ndarray, resolution_bits: int) -> np.ndarray:
    """Vectorized version of :func:`quantize_to_level` for feature matrices."""
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    n_levels = 2 ** resolution_bits
    clipped = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
    levels = np.floor(clipped * n_levels + 1e-12).astype(np.int64)
    return np.minimum(levels, n_levels - 1)


def to_thermometer(level: int, n_taps: int) -> tuple[int, ...]:
    """Expand ``level`` into a thermometer code of ``n_taps`` digits.

    Digit ``k`` (1-based; index ``k - 1`` of the returned tuple) is 1 when
    ``level >= k``.
    """
    if n_taps < 1:
        raise ValueError("a thermometer code needs at least one digit")
    if not 0 <= level <= n_taps:
        raise ValueError(f"level {level} outside [0, {n_taps}]")
    return tuple(1 if level >= k else 0 for k in range(1, n_taps + 1))


def from_thermometer(code: Sequence[int]) -> int:
    """Recover the level from a thermometer code.

    Raises ``ValueError`` when the code is not a valid (monotone) thermometer
    word -- a '1' must never appear above a '0'.
    """
    if not is_valid_thermometer(code):
        raise ValueError(f"{list(code)!r} is not a valid thermometer code")
    return int(sum(1 for bit in code if bit))


def is_valid_thermometer(code: Sequence[int]) -> bool:
    """True when ``code`` is monotone non-increasing (all 1s then all 0s)."""
    seen_zero = False
    for bit in code:
        if bit not in (0, 1, True, False):
            return False
        if bit:
            if seen_zero:
                return False
        else:
            seen_zero = True
    return True


def unary_digit(level: int, k: int) -> int:
    """Value of unary digit ``k`` (1-based) for a sample at ``level``."""
    if k < 1:
        raise ValueError("unary digit indices are 1-based")
    return 1 if level >= k else 0


def level_to_binary(level: int, resolution_bits: int) -> tuple[int, ...]:
    """Binary representation of ``level``, MSB first."""
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    if not 0 <= level < 2 ** resolution_bits:
        raise ValueError(
            f"level {level} does not fit in {resolution_bits} unsigned bits"
        )
    return tuple((level >> shift) & 1 for shift in range(resolution_bits - 1, -1, -1))


def binary_to_level(bits: Sequence[int]) -> int:
    """Inverse of :func:`level_to_binary` (MSB first)."""
    level = 0
    for bit in bits:
        level = (level << 1) | (1 if bit else 0)
    return level


def threshold_to_digit(threshold: float, resolution_bits: int) -> int:
    """Map a normalized threshold to the unary digit implementing ``x >= threshold``.

    The trained thresholds of the quantized decision trees always lie on the
    ADC grid ``k / 2**N``; the digit index is simply ``round(threshold * 2**N)``
    clamped to the valid comparator range ``[1, 2**N - 1]``.
    """
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    n_levels = 2 ** resolution_bits
    digit = int(round(float(threshold) * n_levels))
    return min(max(digit, 1), n_levels - 1)
