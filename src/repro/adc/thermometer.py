"""Thermometer (parallel unary) coding utilities.

Conventions used throughout the repository (they mirror Eq. (1)/(2) of the
paper):

* Features are normalized to ``[0, 1]`` and digitized by an N-bit flash ADC
  whose comparator ``k`` (1-based, ``k = 1 .. 2**N - 1``) fires when the
  input is **at least** ``k / 2**N`` of full scale.
* The *level* of a sample is the number of comparators that fire, i.e. an
  integer in ``[0, 2**N - 1]``.
* The *unary digit* ``I[k]`` is comparator ``k``'s output, so
  ``I >= k/2**N  <=>  I[k] == 1`` -- exactly the reduction the parallel unary
  decision trees rely on.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def quantize_to_level(value: float, resolution_bits: int) -> int:
    """Digitize a normalized value into its flash-ADC level.

    Parameters
    ----------
    value:
        Normalized analog sample.  Values are clipped to ``[0, 1]``, which is
        what a real ADC does with out-of-range inputs.
    resolution_bits:
        ADC resolution N; the result lies in ``[0, 2**N - 1]``.
    """
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    n_levels = 2 ** resolution_bits
    clipped = min(max(float(value), 0.0), 1.0)
    level = int(np.floor(clipped * n_levels + 1e-12))
    return min(level, n_levels - 1)


def quantize_array_to_levels(values: np.ndarray, resolution_bits: int) -> np.ndarray:
    """Vectorized version of :func:`quantize_to_level` for feature matrices."""
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    n_levels = 2 ** resolution_bits
    clipped = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
    levels = np.floor(clipped * n_levels + 1e-12).astype(np.int64)
    return np.minimum(levels, n_levels - 1)


def to_thermometer(level: int, n_taps: int) -> tuple[int, ...]:
    """Expand ``level`` into a thermometer code of ``n_taps`` digits.

    Digit ``k`` (1-based; index ``k - 1`` of the returned tuple) is 1 when
    ``level >= k``.
    """
    if n_taps < 1:
        raise ValueError("a thermometer code needs at least one digit")
    if not 0 <= level <= n_taps:
        raise ValueError(f"level {level} outside [0, {n_taps}]")
    return tuple(1 if level >= k else 0 for k in range(1, n_taps + 1))


def from_thermometer(code: Sequence[int]) -> int:
    """Recover the level from a thermometer code.

    Raises ``ValueError`` when the code is not a valid (monotone) thermometer
    word -- a '1' must never appear above a '0'.
    """
    if not is_valid_thermometer(code):
        raise ValueError(f"{list(code)!r} is not a valid thermometer code")
    return int(sum(1 for bit in code if bit))


def is_valid_thermometer(code: Sequence[int]) -> bool:
    """True when ``code`` is monotone non-increasing (all 1s then all 0s)."""
    seen_zero = False
    for bit in code:
        if bit not in (0, 1, True, False):
            return False
        if bit:
            if seen_zero:
                return False
        else:
            seen_zero = True
    return True


def unary_digit(level: int, k: int) -> int:
    """Value of unary digit ``k`` (1-based) for a sample at ``level``."""
    if k < 1:
        raise ValueError("unary digit indices are 1-based")
    return 1 if level >= k else 0


def level_to_binary(level: int, resolution_bits: int) -> tuple[int, ...]:
    """Binary representation of ``level``, MSB first."""
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    if not 0 <= level < 2 ** resolution_bits:
        raise ValueError(
            f"level {level} does not fit in {resolution_bits} unsigned bits"
        )
    return tuple((level >> shift) & 1 for shift in range(resolution_bits - 1, -1, -1))


def binary_to_level(bits: Sequence[int]) -> int:
    """Inverse of :func:`level_to_binary` (MSB first)."""
    level = 0
    for bit in bits:
        level = (level << 1) | (1 if bit else 0)
    return level


#: Machine-word width of the packed digit representation (bits per word).
WORD_BITS = 64


def pack_digit_matrix(digits: np.ndarray) -> np.ndarray:
    """Pack a boolean digit matrix column-wise into ``uint64`` words.

    ``digits`` is the ``(n_samples, n_digits)`` comparator-output matrix the
    batch prediction path consumes (one column per retained unary digit, in
    :attr:`~repro.core.unary_tree.UnaryDecisionTree.comparators` order).  The
    result has shape ``(n_digits, ceil(n_samples / 64))``: sample ``s`` of
    digit column ``c`` lives in bit ``s % 64`` (little-endian, LSB first) of
    word ``packed[c, s // 64]``, so 64 samples advance through a bitwise op
    per machine word.  Padding bits of the final word are zero; consumers
    that complement words (negated literals) must mask them back out with
    :func:`packed_tail_mask`.

    An empty batch packs into zero words per digit.
    """
    digits = np.asarray(digits)
    if digits.ndim != 2:
        raise ValueError("expected a 2-D (n_samples, n_digits) digit matrix")
    if digits.dtype != bool:
        digits = digits.astype(bool)
    n_samples, n_digits = digits.shape
    n_words = -(-n_samples // WORD_BITS)  # ceil division
    word_bytes = WORD_BITS // 8
    columns = digits.T
    if not columns.flags.c_contiguous:
        # packbits over a strided view is an order of magnitude slower than
        # one explicit transpose copy (and can return rows we could not
        # reinterpret as words in place), so normalize the layout first.
        # The hot path -- digit matrices built by broadcast comparison,
        # which numpy lays out Fortran-style -- transposes to a contiguous
        # view and skips the copy entirely.
        columns = np.ascontiguousarray(columns)
    # packbits pads each row to whole bytes with zeros; pad on up to a whole
    # word so the uint8 buffer reinterprets as little-endian uint64 words.
    packed8 = np.packbits(columns, axis=1, bitorder="little")
    if packed8.shape[1] != n_words * word_bytes:
        padded = np.zeros((n_digits, n_words * word_bytes), dtype=np.uint8)
        padded[:, : packed8.shape[1]] = packed8
        packed8 = padded
    elif not packed8.flags.c_contiguous:  # pragma: no cover - defensive
        packed8 = np.ascontiguousarray(packed8)
    return packed8.view(np.uint64)


def unpack_digit_matrix(packed: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_digit_matrix` (drops the padding bits)."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError("expected a 2-D (n_digits, n_words) packed matrix")
    if n_samples > packed.shape[1] * WORD_BITS:
        raise ValueError(
            f"{n_samples} samples do not fit in {packed.shape[1]} packed words"
        )
    bits = np.unpackbits(packed.view(np.uint8), axis=1, bitorder="little")
    return bits[:, :n_samples].T.astype(bool)


def packed_tail_mask(n_samples: int) -> np.uint64:
    """Valid-lane mask of the *last* packed word of an ``n_samples`` batch.

    All-ones when the batch fills its final word exactly; otherwise only the
    low ``n_samples % 64`` bits are set.  ANDing complemented words with this
    mask keeps the zero padding of :func:`pack_digit_matrix` from surfacing
    as phantom samples.
    """
    remainder = n_samples % WORD_BITS
    if remainder == 0:
        return np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    return np.uint64((1 << remainder) - 1)


def threshold_to_digit(threshold: float, resolution_bits: int) -> int:
    """Map a normalized threshold to the unary digit implementing ``x >= threshold``.

    The trained thresholds of the quantized decision trees always lie on the
    ADC grid ``k / 2**N``; the digit index is simply ``round(threshold * 2**N)``
    clamped to the valid comparator range ``[1, 2**N - 1]``.
    """
    if resolution_bits < 1:
        raise ValueError("resolution must be at least 1 bit")
    n_levels = 2 ** resolution_bits
    digit = int(round(float(threshold) * n_levels))
    return min(max(digit, 1), n_levels - 1)
