"""Bespoke flash ADC model (Fig. 1b of the paper).

A bespoke ADC keeps the full resistor ladder but retains only the comparators
whose reference levels are actually consumed by the decision tree, and has no
priority encoder at all: its outputs *are* the required unary digits.  Area is
therefore linear in the number of retained comparators, while power also
depends on *which* levels are retained (higher taps burn more power), which is
exactly the behaviour shown in Fig. 3 and exploited by the ADC-aware training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adc.thermometer import quantize_to_level
from repro.pdk.egfet import EGFETTechnology, default_technology


@dataclass(frozen=True)
class BespokeADC:
    """Bespoke flash ADC retaining an arbitrary subset of reference levels.

    Attributes
    ----------
    retained_levels:
        1-based reference-level indices of the retained comparators, e.g.
        ``(1, 2, 4, 7)`` for the 4-UD example of Fig. 1b.
    resolution_bits:
        Resolution of the underlying ladder (default 4, as in the paper).
    technology:
        EGFET technology providing the cost constants.
    feature_name:
        Optional label of the sensor input this ADC digitizes.
    """

    retained_levels: tuple[int, ...]
    resolution_bits: int = 4
    technology: EGFETTechnology = field(default_factory=default_technology)
    feature_name: str = ""

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError("ADC resolution must be at least 1 bit")
        levels = tuple(sorted(set(int(k) for k in self.retained_levels)))
        max_level = 2 ** self.resolution_bits - 1
        for level in levels:
            if not 1 <= level <= max_level:
                raise ValueError(
                    f"retained level {level} outside the valid range "
                    f"[1, {max_level}] of a {self.resolution_bits}-bit ADC"
                )
        if not levels:
            raise ValueError("a bespoke ADC must retain at least one comparator")
        object.__setattr__(self, "retained_levels", levels)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def n_unary_digits(self) -> int:
        """Number of output unary digits (retained comparators)."""
        return len(self.retained_levels)

    @property
    def label(self) -> str:
        """Human-readable designator, e.g. ``"4-UD"`` for four outputs."""
        return f"{self.n_unary_digits}-UD"

    # ------------------------------------------------------------------ #
    # cost
    # ------------------------------------------------------------------ #
    @property
    def ladder_area_mm2(self) -> float:
        """Area of the (always fully retained) resistor ladder."""
        return self.technology.ladder_for(self.resolution_bits).area_mm2

    @property
    def ladder_power_uw(self) -> float:
        """Static power of the resistor ladder."""
        return self.technology.ladder_for(self.resolution_bits).power_uw

    @property
    def comparator_area_mm2(self) -> float:
        """Area of the retained comparator bank."""
        return self.technology.comparator.bank_area_mm2(self.n_unary_digits)

    @property
    def comparator_power_uw(self) -> float:
        """Power of the retained comparator bank (depends on the levels)."""
        return self.technology.comparator.bank_power_uw(list(self.retained_levels))

    @property
    def area_mm2(self) -> float:
        """Total bespoke ADC area."""
        return self.ladder_area_mm2 + self.comparator_area_mm2

    @property
    def power_uw(self) -> float:
        """Total bespoke ADC power in uW."""
        return self.ladder_power_uw + self.comparator_power_uw

    @property
    def power_mw(self) -> float:
        """Total bespoke ADC power in mW."""
        return self.power_uw / 1000.0

    # ------------------------------------------------------------------ #
    # behaviour
    # ------------------------------------------------------------------ #
    def convert(self, value: float) -> dict[int, int]:
        """Digitize a normalized sample into its retained unary digits.

        Returns a mapping ``level -> digit`` where ``digit`` is 1 when the
        sample is at least ``level / 2**resolution_bits`` of full scale.
        """
        level = quantize_to_level(value, self.resolution_bits)
        return {k: (1 if level >= k else 0) for k in self.retained_levels}

    def convert_to_level(self, value: float) -> int:
        """Quantized level of the sample (useful for verification)."""
        return quantize_to_level(value, self.resolution_bits)
