"""Priority encoder of a conventional flash ADC.

The encoder turns the thermometer code produced by the comparator bank into a
binary word (Fig. 1a).  In printed technologies this digital block dominates
the ADC: with the calibrated EGFET cell library, the 15-to-4 encoder of a
4-bit flash ADC accounts for roughly 10 of the 11 mm2 and half of the 0.83 mW
reported in the paper -- which is exactly why the bespoke ADCs of Fig. 1b
drop it entirely.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.adc.thermometer import from_thermometer, level_to_binary
from repro.pdk.cells import GATE_EQUIVALENT_AREA_MM2, GATE_EQUIVALENT_POWER_UW
from repro.pdk.egfet import EGFETTechnology


@dataclass(frozen=True)
class PriorityEncoder:
    """Cost and behaviour model of the ``(2**N - 1)``-to-``N`` priority encoder.

    Attributes
    ----------
    resolution_bits:
        ADC resolution N.
    technology:
        Technology providing the gate-equivalent size of the encoder.
    """

    resolution_bits: int
    technology: EGFETTechnology

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError("encoder resolution must be at least 1 bit")

    @property
    def n_inputs(self) -> int:
        """Number of thermometer inputs handled by the encoder."""
        return 2 ** self.resolution_bits - 1

    @property
    def gate_equivalents(self) -> float:
        """Encoder complexity in 2-input-NAND equivalents."""
        return self.technology.encoder_gate_equivalents(self.resolution_bits)

    @property
    def area_mm2(self) -> float:
        """Printed area of the encoder, including wiring overhead."""
        return (
            self.gate_equivalents
            * GATE_EQUIVALENT_AREA_MM2
            * self.technology.wiring_area_overhead
        )

    @property
    def power_uw(self) -> float:
        """Average power of the encoder in uW."""
        return self.gate_equivalents * GATE_EQUIVALENT_POWER_UW

    @property
    def power_mw(self) -> float:
        """Average power of the encoder in mW."""
        return self.power_uw / 1000.0

    def encode(self, thermometer: Sequence[int]) -> tuple[int, ...]:
        """Convert a thermometer word into its binary representation (MSB first)."""
        if len(thermometer) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} thermometer digits, got {len(thermometer)}"
            )
        level = from_thermometer(thermometer)
        return level_to_binary(level, self.resolution_bits)
