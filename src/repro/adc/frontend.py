"""Multi-input analog front ends.

A classifier with ``M`` used input features needs ``M`` ADC channels.  Two
arrangements are modeled:

* :class:`ConventionalFrontEnd` -- the baseline of [2]: one full comparator
  bank + ladder per input and a single shared priority encoder producing the
  binary codes consumed by the digital comparator tree.  This is the
  arrangement that reproduces the ADC area/power columns of Table I.
* :class:`BespokeFrontEnd` -- the proposed front end: one bespoke ADC per
  input, retaining only the comparators whose unary digits the decision tree
  consumes, and no encoder at all.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.adc.bespoke import BespokeADC
from repro.adc.encoder import PriorityEncoder
from repro.adc.flash import FlashADC
from repro.adc.thermometer import quantize_array_to_levels
from repro.pdk.egfet import EGFETTechnology, default_technology


@dataclass(frozen=True)
class FrontEndReport:
    """Aggregate cost of an analog front end.

    Attributes
    ----------
    area_mm2 / power_uw:
        Totals over all channels (and the shared encoder, if any).
    n_channels:
        Number of ADC channels (one per used input feature).
    n_comparators:
        Total number of analog comparators across all channels.
    """

    area_mm2: float
    power_uw: float
    n_channels: int
    n_comparators: int

    @property
    def power_mw(self) -> float:
        """Total front-end power in mW."""
        return self.power_uw / 1000.0


class ConventionalFrontEnd:
    """Baseline analog front end: per-input flash banks + shared priority encoder."""

    def __init__(
        self,
        feature_indices: Sequence[int],
        resolution_bits: int = 4,
        technology: EGFETTechnology | None = None,
        per_input_resolution: Mapping[int, int] | None = None,
    ):
        """Create the front end.

        Parameters
        ----------
        feature_indices:
            Indices of the input features that actually need digitizing
            (features unused by the tree need no ADC).
        resolution_bits:
            Default ADC resolution for every channel.
        technology:
            EGFET technology (defaults to the calibrated behavioral PDK).
        per_input_resolution:
            Optional per-feature resolution override, used by the
            precision-scaled baseline [7].
        """
        self.technology = technology if technology is not None else default_technology()
        self.feature_indices = tuple(sorted(set(int(i) for i in feature_indices)))
        if resolution_bits < 1:
            raise ValueError("ADC resolution must be at least 1 bit")
        overrides = dict(per_input_resolution or {})
        self.channel_resolution: dict[int, int] = {}
        for feature in self.feature_indices:
            bits = int(overrides.get(feature, resolution_bits))
            if bits < 1:
                raise ValueError(
                    f"feature {feature}: ADC resolution must be at least 1 bit"
                )
            self.channel_resolution[feature] = bits
        self.channels: dict[int, FlashADC] = {
            feature: FlashADC(
                resolution_bits=bits,
                technology=self.technology,
                include_encoder=False,
            )
            for feature, bits in self.channel_resolution.items()
        }
        max_bits = max(self.channel_resolution.values(), default=resolution_bits)
        self.shared_encoder = (
            PriorityEncoder(max_bits, self.technology) if self.channels else None
        )

    # ------------------------------------------------------------------ #
    # cost
    # ------------------------------------------------------------------ #
    @property
    def n_channels(self) -> int:
        """Number of ADC channels."""
        return len(self.channels)

    @property
    def n_comparators(self) -> int:
        """Total number of analog comparators in the front end."""
        return sum(adc.n_comparators for adc in self.channels.values())

    @property
    def encoder_area_mm2(self) -> float:
        """Area of the shared priority encoder."""
        return self.shared_encoder.area_mm2 if self.shared_encoder else 0.0

    @property
    def encoder_power_uw(self) -> float:
        """Power of the shared priority encoder."""
        return self.shared_encoder.power_uw if self.shared_encoder else 0.0

    @property
    def area_mm2(self) -> float:
        """Total front-end area."""
        return sum(adc.area_mm2 for adc in self.channels.values()) + self.encoder_area_mm2

    @property
    def power_uw(self) -> float:
        """Total front-end power in uW."""
        return sum(adc.power_uw for adc in self.channels.values()) + self.encoder_power_uw

    @property
    def power_mw(self) -> float:
        """Total front-end power in mW."""
        return self.power_uw / 1000.0

    def report(self) -> FrontEndReport:
        """Aggregate cost report."""
        return FrontEndReport(
            area_mm2=self.area_mm2,
            power_uw=self.power_uw,
            n_channels=self.n_channels,
            n_comparators=self.n_comparators,
        )

    # ------------------------------------------------------------------ #
    # behaviour
    # ------------------------------------------------------------------ #
    def convert(self, sample: Sequence[float]) -> dict[int, int]:
        """Digitize a full (normalized) sample into per-feature levels."""
        return {
            feature: self.channels[feature].convert(sample[feature]).level
            for feature in self.feature_indices
        }

    def convert_batch(self, X: np.ndarray) -> dict[int, np.ndarray]:
        """Digitize a whole ``(n_samples, n_features)`` matrix at once.

        Returns ``{feature: level vector}`` with one quantized level per
        sample, matching :meth:`convert` element for element.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("expected a 2-D (n_samples, n_features) matrix")
        return {
            feature: quantize_array_to_levels(X[:, feature], bits)
            for feature, bits in self.channel_resolution.items()
        }


class BespokeFrontEnd:
    """Proposed analog front end: one bespoke ADC per used input, no encoder."""

    def __init__(self, adcs: Mapping[int, BespokeADC]):
        """Create the front end from a mapping ``feature index -> BespokeADC``."""
        if not adcs:
            raise ValueError("a bespoke front end needs at least one ADC channel")
        self.adcs: dict[int, BespokeADC] = dict(sorted(adcs.items()))

    @property
    def feature_indices(self) -> tuple[int, ...]:
        """Indices of the digitized input features."""
        return tuple(self.adcs)

    @property
    def n_channels(self) -> int:
        """Number of ADC channels."""
        return len(self.adcs)

    @property
    def n_comparators(self) -> int:
        """Total number of retained analog comparators."""
        return sum(adc.n_unary_digits for adc in self.adcs.values())

    @property
    def area_mm2(self) -> float:
        """Total front-end area."""
        return sum(adc.area_mm2 for adc in self.adcs.values())

    @property
    def power_uw(self) -> float:
        """Total front-end power in uW."""
        return sum(adc.power_uw for adc in self.adcs.values())

    @property
    def power_mw(self) -> float:
        """Total front-end power in mW."""
        return self.power_uw / 1000.0

    def report(self) -> FrontEndReport:
        """Aggregate cost report."""
        return FrontEndReport(
            area_mm2=self.area_mm2,
            power_uw=self.power_uw,
            n_channels=self.n_channels,
            n_comparators=self.n_comparators,
        )

    def convert(self, sample: Sequence[float]) -> dict[int, dict[int, int]]:
        """Digitize a normalized sample into per-feature unary digits.

        Returns ``{feature: {level: digit}}`` covering exactly the unary
        digits the downstream decision tree consumes.
        """
        return {
            feature: adc.convert(sample[feature]) for feature, adc in self.adcs.items()
        }

    def convert_batch(self, X: np.ndarray) -> dict[int, dict[int, np.ndarray]]:
        """Digitize a whole ``(n_samples, n_features)`` matrix at once.

        Returns ``{feature: {level: digit vector}}`` -- the batch counterpart
        of :meth:`convert`, directly consumable by
        :meth:`~repro.core.unary_tree.UnaryDecisionTree.predict_from_digits_batch`.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("expected a 2-D (n_samples, n_features) matrix")
        digits: dict[int, dict[int, np.ndarray]] = {}
        for feature, adc in self.adcs.items():
            levels = quantize_array_to_levels(X[:, feature], adc.resolution_bits)
            digits[feature] = {
                k: (levels >= k).astype(np.int64) for k in adc.retained_levels
            }
        return digits
