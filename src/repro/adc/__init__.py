"""Analog-to-digital converter substrate.

The paper's key observation is that the flash ADC already produces a
thermometer (parallel unary) code internally, so a decision tree that only
needs specific unary digits can drop both the priority encoder and all unused
comparators.  This package models:

* thermometer/unary coding utilities (:mod:`repro.adc.thermometer`),
* the conventional flash ADC of Fig. 1a (:mod:`repro.adc.flash`),
* the bespoke ADC of Fig. 1b retaining an arbitrary subset of reference
  levels (:mod:`repro.adc.bespoke`),
* the priority encoder cost/behaviour (:mod:`repro.adc.encoder`),
* multi-input analog front ends aggregating per-feature ADCs
  (:mod:`repro.adc.frontend`).
"""

from repro.adc.thermometer import (
    from_thermometer,
    is_valid_thermometer,
    level_to_binary,
    quantize_to_level,
    to_thermometer,
    unary_digit,
)
from repro.adc.encoder import PriorityEncoder
from repro.adc.flash import ADCConversion, FlashADC
from repro.adc.bespoke import BespokeADC
from repro.adc.frontend import BespokeFrontEnd, ConventionalFrontEnd, FrontEndReport

__all__ = [
    "quantize_to_level",
    "to_thermometer",
    "from_thermometer",
    "is_valid_thermometer",
    "unary_digit",
    "level_to_binary",
    "PriorityEncoder",
    "FlashADC",
    "ADCConversion",
    "BespokeADC",
    "ConventionalFrontEnd",
    "BespokeFrontEnd",
    "FrontEndReport",
]
