"""Structural Verilog export of synthesized netlists.

This module emits a self-contained structural Verilog module (continuous
assignments over the library's cell functions) for any
:class:`~repro.circuits.netlist.Netlist`, e.g. the two-level unary label
logic of a co-designed tree or the baseline comparator tree.  The export is
executable, not just printable: :mod:`repro.circuits.cosim` pairs it with a
self-checking testbench (:mod:`repro.circuits.testbench`) and runs the pair
under Icarus Verilog or Verilator, proving the RTL agrees with the Python
golden model before the design is handed to an EGFET synthesis/physical
flow.  PPA numbers measured by such a flow feed back through
:class:`repro.circuits.ppa.ReportPPABackend`.
"""

from __future__ import annotations

import re

from repro.circuits.netlist import Gate, Netlist

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

#: Reserved words of IEEE 1364-2005 Verilog (plus a few common SystemVerilog
#: ones a simulator may reject as identifiers).  A net named after one of
#: these would produce an unparsable module, so sanitization escapes them.
_VERILOG_KEYWORDS = frozenset(
    """
    always and assign automatic begin buf bufif0 bufif1 case casex casez cell
    cmos config deassign default defparam design disable edge else end
    endcase endconfig endfunction endgenerate endmodule endprimitive
    endspecify endtable endtask event for force forever fork function
    generate genvar highz0 highz1 if ifnone incdir include initial inout
    input instance integer join large liblist library localparam macromodule
    medium module nand negedge nmos nor noshowcancelled not notif0 notif1 or
    output parameter pmos posedge primitive pull0 pull1 pulldown pullup
    pulsestyle_ondetect pulsestyle_onevent rcmos real realtime reg release
    repeat rnmos rpmos rtran rtranif0 rtranif1 scalared showcancelled signed
    small specify specparam strong0 strong1 supply0 supply1 table task time
    tran tranif0 tranif1 tri tri0 tri1 triand trior trireg unsigned use
    uwire vectored wait wand weak0 weak1 while wire wor xnor xor
    logic bit byte int longint shortint enum struct typedef
    """.split()
)


def sanitize_identifier(name: str) -> str:
    """Turn an arbitrary net/gate name into a legal Verilog identifier.

    Illegal characters become underscores, a leading digit gains an ``n_``
    prefix, and Verilog reserved words gain a trailing underscore.
    """
    if _IDENTIFIER.match(name) and name not in _VERILOG_KEYWORDS:
        return name
    cleaned = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not cleaned or not re.match(r"[A-Za-z_]", cleaned[0]):
        cleaned = f"n_{cleaned}"
    if cleaned in _VERILOG_KEYWORDS:
        cleaned += "_"
    return cleaned


def verilog_net_names(netlist: Netlist) -> dict[str, str]:
    """Deterministic net -> Verilog identifier mapping for ``netlist``.

    Sanitizes every net name and resolves collisions (two raw names
    sanitizing to the same identifier) by appending underscores in sorted
    net order.  Both :func:`netlist_to_verilog` and the testbench generator
    use this single mapping, so DUT ports and testbench signals can never
    disagree about a net's Verilog name.
    """
    nets: dict[str, str] = {}
    used: set[str] = set()
    for name in sorted(netlist.nets()):
        candidate = sanitize_identifier(name)
        while candidate in used:
            candidate += "_"
        nets[name] = candidate
        used.add(candidate)
    return nets


def _expression(gate: Gate, nets: dict[str, str]) -> str:
    """Right-hand-side expression implementing ``gate``."""
    ins = [nets[name] for name in gate.inputs]
    cell = gate.cell
    if cell == "CONST0":
        return "1'b0"
    if cell == "CONST1":
        return "1'b1"
    if cell == "BUF":
        return ins[0]
    if cell == "INV":
        return f"~{ins[0]}"
    if cell.startswith("AND"):
        return " & ".join(ins)
    if cell.startswith("NAND"):
        return "~(" + " & ".join(ins) + ")"
    if cell.startswith("OR"):
        return " | ".join(ins)
    if cell.startswith("NOR"):
        return "~(" + " | ".join(ins) + ")"
    if cell == "XOR2":
        return f"{ins[0]} ^ {ins[1]}"
    if cell == "XNOR2":
        return f"~({ins[0]} ^ {ins[1]})"
    if cell == "MUX2":
        return f"{ins[2]} ? {ins[1]} : {ins[0]}"
    if cell == "AOI21":
        return f"~(({ins[0]} & {ins[1]}) | {ins[2]})"
    if cell == "OAI21":
        return f"~(({ins[0]} | {ins[1]}) & {ins[2]})"
    raise ValueError(f"Verilog export does not know cell {cell!r}")


def netlist_to_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render ``netlist`` as a structural Verilog module.

    Parameters
    ----------
    netlist:
        The combinational circuit to export (validated before export).
    module_name:
        Verilog module name; defaults to the sanitized netlist name.

    Returns
    -------
    str
        Complete Verilog source: one module with the netlist's primary
        inputs/outputs as ports and one continuous assignment per gate, in
        topological order.
    """
    netlist.validate()
    module = sanitize_identifier(module_name or netlist.name)

    nets = verilog_net_names(netlist)

    inputs = [nets[name] for name in netlist.inputs]
    outputs = [nets[name] for name in netlist.outputs]
    ports = inputs + outputs
    port_list = ",\n    ".join(ports) if ports else ""

    io_nets = set(netlist.inputs) | set(netlist.outputs)
    wires = sorted(
        nets[name]
        for name in netlist.nets()
        if name not in io_nets
    )

    lines: list[str] = []
    lines.append(f"// Generated by repro.circuits.verilog from netlist '{netlist.name}'")
    lines.append(f"// gates: {netlist.n_gates}, inputs: {len(inputs)}, outputs: {len(outputs)}")
    lines.append(f"module {module}(")
    lines.append(f"    {port_list}")
    lines.append(");")
    for name in inputs:
        lines.append(f"  input  wire {name};")
    for name in outputs:
        lines.append(f"  output wire {name};")
    if wires:
        lines.append("")
        for name in wires:
            lines.append(f"  wire {name};")
    lines.append("")
    for gate in netlist.topological_order():
        target = nets[gate.output]
        lines.append(f"  assign {target} = {_expression(gate, nets)};  // {gate.cell} {gate.name}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
