"""Pluggable PPA (power / performance / area) estimation backends.

Every hardware cost in the repository -- ``DesignPoint`` area/power, the
explorer's sweep, search objectives, datasheets -- ultimately comes from
costing a gate-level :class:`~repro.circuits.netlist.Netlist`.  This module
puts that costing behind a small interface so two very different sources of
numbers are interchangeable:

* :class:`AnalyticPPABackend` (the default everywhere) wraps the behavioral
  estimators :func:`~repro.circuits.area_power.estimate_netlist` and
  :func:`~repro.circuits.timing.estimate_timing` bit-identically.  Results,
  cache keys and ``DesignPoint`` identities are exactly what they were
  before this interface existed.
* :class:`ReportPPABackend` replays area/power/timing numbers produced by an
  external flow (synthesis + physical design on the Verilog exported by
  :func:`~repro.circuits.verilog.netlist_to_verilog`) from a JSON report,
  keyed by module name.

Because report-backed numbers are not derivable from the experiment
configuration alone, suite/search runners refuse to cache results produced
with a non-analytic backend (see
:func:`~repro.analysis.experiments.run_benchmark_suite`).

See ``docs/HARDWARE.md`` for the report schema and the full flow.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.circuits.area_power import AreaPowerReport, estimate_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.timing import TimingReport, estimate_timing
from repro.circuits.verilog import sanitize_identifier
from repro.pdk.egfet import EGFETTechnology

#: Schema version of the external PPA report JSON format.
PPA_REPORT_SCHEMA_VERSION = 1

#: Wildcard module key: matches any netlist the report has no exact entry for.
PPA_REPORT_WILDCARD = "*"


class PPAReportError(ValueError):
    """A PPA report is malformed or is missing a requested module."""


@runtime_checkable
class PPABackend(Protocol):
    """Interface every PPA estimation backend implements.

    ``name`` identifies the backend in logs and JSON records;
    ``is_analytic`` tells cache-aware runners whether results derived with
    this backend are pure functions of the experiment configuration (and may
    therefore be cached under the configuration's key).
    """

    name: str
    is_analytic: bool

    def area_power(
        self, netlist: Netlist, technology: EGFETTechnology
    ) -> AreaPowerReport:
        """Area/power of ``netlist`` in ``technology``."""
        ...

    def timing(self, netlist: Netlist, technology: EGFETTechnology) -> TimingReport:
        """Critical-path timing of ``netlist`` in ``technology``."""
        ...


class AnalyticPPABackend:
    """The behavioral cell-count model -- the default backend everywhere.

    Delegates to :func:`estimate_netlist` / :func:`estimate_timing`
    unchanged, so designs costed through this backend are bit-identical to
    designs costed before the backend interface existed.
    """

    name = "analytic"
    is_analytic = True

    def area_power(
        self, netlist: Netlist, technology: EGFETTechnology
    ) -> AreaPowerReport:
        return estimate_netlist(netlist, technology)

    def timing(self, netlist: Netlist, technology: EGFETTechnology) -> TimingReport:
        return estimate_timing(netlist, technology)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AnalyticPPABackend()"

    def __eq__(self, other) -> bool:
        return type(other) is AnalyticPPABackend

    def __hash__(self) -> int:
        return hash(AnalyticPPABackend)


def load_ppa_report(path: str | Path) -> dict:
    """Load and validate an external PPA report JSON file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise PPAReportError(f"cannot read PPA report {path}: {error}") from error
    _validate_report(payload, source=str(path))
    return payload


def _validate_report(payload, source: str) -> None:
    if not isinstance(payload, Mapping):
        raise PPAReportError(f"PPA report {source} must be a JSON object")
    if payload.get("kind") != "ppa_report":
        raise PPAReportError(
            f"PPA report {source}: expected kind 'ppa_report', "
            f"got {payload.get('kind')!r}"
        )
    version = payload.get("schema_version")
    if version != PPA_REPORT_SCHEMA_VERSION:
        raise PPAReportError(
            f"PPA report {source}: unsupported schema_version {version!r} "
            f"(expected {PPA_REPORT_SCHEMA_VERSION})"
        )
    modules = payload.get("modules")
    if not isinstance(modules, Mapping) or not modules:
        raise PPAReportError(
            f"PPA report {source}: 'modules' must be a non-empty object"
        )
    for module, entry in modules.items():
        if not isinstance(entry, Mapping):
            raise PPAReportError(
                f"PPA report {source}: module {module!r} must be an object"
            )
        for field in ("area_mm2", "power_uw"):
            if not isinstance(entry.get(field), (int, float)):
                raise PPAReportError(
                    f"PPA report {source}: module {module!r} is missing "
                    f"numeric field {field!r}"
                )


class ReportPPABackend:
    """Replay PPA numbers measured by an external flow from a JSON report.

    Parameters
    ----------
    report:
        Either a path to a report JSON file or an already-parsed mapping.
        The expected shape (``docs/HARDWARE.md`` has a worked example)::

            {
              "schema_version": 1,
              "kind": "ppa_report",
              "source": "openroad nangate45 run 2024-03-01",
              "modules": {
                "unary_tree": {
                  "area_mm2": 41.2,
                  "power_uw": 380.0,
                  "critical_path_delay_ms": 9.6,
                  "logic_depth": 4
                }
              }
            }

        ``critical_path_delay_ms`` / ``logic_depth`` are optional per module
        (``timing`` falls back to the analytic estimator for modules that
        omit them).  The module key ``"*"`` is a wildcard applied to any
        netlist without an exact entry -- convenient for sweeps where every
        grid point synthesizes the same RTL module name.
    missing:
        Policy when a costed netlist has no report entry (and no wildcard
        exists): ``"error"`` (default) raises :class:`PPAReportError`;
        ``"analytic"`` silently falls back to the behavioral model.

    Netlists are looked up under their raw name first, then under the
    sanitized Verilog module name (the name the external flow actually saw),
    then under the wildcard.
    """

    name = "report"
    is_analytic = False

    def __init__(
        self,
        report: str | Path | Mapping,
        missing: str = "error",
    ):
        if missing not in {"error", "analytic"}:
            raise ValueError("missing must be 'error' or 'analytic'")
        if isinstance(report, (str, Path)):
            self.source = str(report)
            payload = load_ppa_report(report)
        else:
            payload = dict(report)
            self.source = str(payload.get("source", "<in-memory report>"))
            _validate_report(payload, source=self.source)
        self.missing = missing
        self.modules: dict[str, dict] = {
            str(module): dict(entry)
            for module, entry in payload["modules"].items()
        }
        self._analytic = AnalyticPPABackend()

    def _lookup(self, netlist: Netlist) -> dict | None:
        for key in (netlist.name, sanitize_identifier(netlist.name)):
            entry = self.modules.get(key)
            if entry is not None:
                return entry
        return self.modules.get(PPA_REPORT_WILDCARD)

    def _entry_or_fallback(self, netlist: Netlist) -> dict | None:
        entry = self._lookup(netlist)
        if entry is None and self.missing == "error":
            raise PPAReportError(
                f"PPA report {self.source} has no entry for module "
                f"{netlist.name!r} (and no {PPA_REPORT_WILDCARD!r} wildcard); "
                "add one or construct the backend with missing='analytic'"
            )
        return entry

    def area_power(
        self, netlist: Netlist, technology: EGFETTechnology
    ) -> AreaPowerReport:
        entry = self._entry_or_fallback(netlist)
        if entry is None:
            return self._analytic.area_power(netlist, technology)
        # Area and power come from the report verbatim; the gate census stays
        # structural -- the netlist is still the circuit that was exported.
        counts = netlist.cell_histogram()
        n_gates = sum(
            count
            for cell, count in counts.items()
            if cell not in {"CONST0", "CONST1"}
        )
        return AreaPowerReport(
            name=netlist.name,
            area_mm2=float(entry["area_mm2"]),
            power_uw=float(entry["power_uw"]),
            n_gates=n_gates,
            cell_counts=dict(counts),
        )

    def timing(self, netlist: Netlist, technology: EGFETTechnology) -> TimingReport:
        entry = self._entry_or_fallback(netlist)
        if entry is None or "critical_path_delay_ms" not in entry:
            return self._analytic.timing(netlist, technology)
        return TimingReport(
            name=netlist.name,
            critical_path_delay_ms=float(entry["critical_path_delay_ms"]),
            # The external flow does not expose its gate chain; only the
            # depth (when reported) survives into the summary.
            critical_path=(),
            logic_depth=int(entry.get("logic_depth", 0)),
            sampling_period_ms=1000.0 / technology.frequency_hz,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReportPPABackend(source={self.source!r}, "
            f"modules={sorted(self.modules)}, missing={self.missing!r})"
        )


def resolve_ppa_backend(spec: object = None) -> PPABackend:
    """Normalize a backend specification into a :class:`PPABackend`.

    Accepts ``None`` / ``"analytic"`` (the default backend), a path to a
    report JSON file (or a parsed report mapping), or an already-constructed
    backend instance, which is returned as-is.  This is the single entry
    point the explorer, framework, suite runners and CLI use, so a plain
    ``--ppa-backend report.json`` string works at every layer.
    """
    if spec is None or spec == "analytic":
        return AnalyticPPABackend()
    if hasattr(spec, "area_power") and hasattr(spec, "timing"):
        return spec
    if isinstance(spec, (str, Path, Mapping)):
        return ReportPPABackend(spec)
    raise TypeError(
        f"cannot resolve a PPA backend from {type(spec).__name__!r}; expected "
        "None, 'analytic', a report path/mapping, or a PPABackend instance"
    )
