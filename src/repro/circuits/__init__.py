"""Digital circuit substrate: netlists, logic simulation, synthesis, costing.

The paper's digital blocks (bespoke comparator trees of the baseline [2] and
the two-level unary decision trees of the proposed architecture) are purely
combinational circuits operating at 20 Hz.  This package provides everything
required to build, simulate, verify and cost such circuits on top of the
behavioral EGFET cell library:

* :mod:`repro.circuits.netlist` -- gate-level netlist data structure with
  validation and topological ordering,
* :mod:`repro.circuits.logic_sim` -- combinational logic simulator (scalar
  and compiled-batch evaluation over boolean vectors),
* :mod:`repro.circuits.two_level` -- sum-of-products representation with
  containment-based minimization (the "simple two-level logic" of Fig. 2b),
* :mod:`repro.circuits.synthesis` -- synthesis primitives: hardwired-constant
  comparators, AND/OR trees, sum-of-products mapping,
* :mod:`repro.circuits.area_power` -- area/power estimation of a netlist
  against a cell library (the behavioral stand-in for Design Compiler /
  PrimeTime),
* :mod:`repro.circuits.verification` -- netlist-vs-reference-model
  equivalence checking.
"""

from repro.circuits.netlist import Gate, Netlist
from repro.circuits.logic_sim import (
    CompiledNetlist,
    evaluate_netlist,
    evaluate_netlist_batch,
    evaluate_outputs,
    evaluate_outputs_batch,
)
from repro.circuits.two_level import Literal, SumOfProducts
from repro.circuits.synthesis import (
    synthesize_and_tree,
    synthesize_or_tree,
    synthesize_constant_comparator,
    synthesize_sop,
)
from repro.circuits.area_power import AreaPowerReport, estimate_netlist
from repro.circuits.verification import EquivalenceResult, check_equivalence
from repro.circuits.verilog import netlist_to_verilog
from repro.circuits.testbench import generate_verilog_testbench
from repro.circuits.timing import TimingReport, estimate_timing

__all__ = [
    "Gate",
    "Netlist",
    "CompiledNetlist",
    "evaluate_netlist",
    "evaluate_netlist_batch",
    "evaluate_outputs",
    "evaluate_outputs_batch",
    "Literal",
    "SumOfProducts",
    "synthesize_and_tree",
    "synthesize_or_tree",
    "synthesize_constant_comparator",
    "synthesize_sop",
    "AreaPowerReport",
    "estimate_netlist",
    "EquivalenceResult",
    "check_equivalence",
    "netlist_to_verilog",
    "generate_verilog_testbench",
    "TimingReport",
    "estimate_timing",
]
