"""Digital circuit substrate: netlists, logic simulation, synthesis, costing.

The paper's digital blocks (bespoke comparator trees of the baseline [2] and
the two-level unary decision trees of the proposed architecture) are purely
combinational circuits operating at 20 Hz.  This package provides everything
required to build, simulate, verify and cost such circuits on top of the
behavioral EGFET cell library:

* :mod:`repro.circuits.netlist` -- gate-level netlist data structure with
  validation and topological ordering,
* :mod:`repro.circuits.logic_sim` -- combinational logic simulator (scalar
  and compiled-batch evaluation over boolean vectors),
* :mod:`repro.circuits.two_level` -- sum-of-products representation with
  containment-based minimization (the "simple two-level logic" of Fig. 2b),
* :mod:`repro.circuits.synthesis` -- synthesis primitives: hardwired-constant
  comparators, AND/OR trees, sum-of-products mapping,
* :mod:`repro.circuits.area_power` -- area/power estimation of a netlist
  against a cell library (the behavioral stand-in for Design Compiler /
  PrimeTime),
* :mod:`repro.circuits.verification` -- netlist-vs-reference-model
  equivalence checking,
* :mod:`repro.circuits.verilog` / :mod:`repro.circuits.testbench` /
  :mod:`repro.circuits.cosim` -- structural Verilog export, self-checking
  testbench generation and RTL co-simulation under iverilog/Verilator,
* :mod:`repro.circuits.ppa` -- pluggable PPA backends (analytic cell-count
  model vs. replayed external-flow reports).

See ``docs/HARDWARE.md`` for the end-to-end hardware flow.
"""

from repro.circuits.netlist import Gate, Netlist
from repro.circuits.logic_sim import (
    CompiledNetlist,
    evaluate_netlist,
    evaluate_netlist_batch,
    evaluate_outputs,
    evaluate_outputs_batch,
)
from repro.circuits.two_level import Literal, SumOfProducts
from repro.circuits.synthesis import (
    synthesize_and_tree,
    synthesize_or_tree,
    synthesize_constant_comparator,
    synthesize_sop,
)
from repro.circuits.area_power import AreaPowerReport, estimate_netlist
from repro.circuits.verification import EquivalenceResult, check_equivalence
from repro.circuits.verilog import (
    netlist_to_verilog,
    sanitize_identifier,
    verilog_net_names,
)
from repro.circuits.testbench import generate_verilog_testbench
from repro.circuits.timing import TimingReport, estimate_timing
from repro.circuits.cosim import (
    CosimError,
    CosimReport,
    SimulatorNotFoundError,
    available_simulators,
    find_simulator,
    run_cosim,
    testbench_vectors,
    write_cosim_sources,
)
from repro.circuits.ppa import (
    AnalyticPPABackend,
    PPABackend,
    PPAReportError,
    ReportPPABackend,
    load_ppa_report,
    resolve_ppa_backend,
)

__all__ = [
    "Gate",
    "Netlist",
    "CompiledNetlist",
    "evaluate_netlist",
    "evaluate_netlist_batch",
    "evaluate_outputs",
    "evaluate_outputs_batch",
    "Literal",
    "SumOfProducts",
    "synthesize_and_tree",
    "synthesize_or_tree",
    "synthesize_constant_comparator",
    "synthesize_sop",
    "AreaPowerReport",
    "estimate_netlist",
    "EquivalenceResult",
    "check_equivalence",
    "netlist_to_verilog",
    "sanitize_identifier",
    "verilog_net_names",
    "generate_verilog_testbench",
    "TimingReport",
    "estimate_timing",
    "CosimError",
    "CosimReport",
    "SimulatorNotFoundError",
    "available_simulators",
    "find_simulator",
    "run_cosim",
    "testbench_vectors",
    "write_cosim_sources",
    "AnalyticPPABackend",
    "PPABackend",
    "PPAReportError",
    "ReportPPABackend",
    "load_ppa_report",
    "resolve_ppa_backend",
]
