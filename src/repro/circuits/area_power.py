"""Area and power estimation of gate-level netlists.

This module is the behavioral stand-in for the Synopsys Design Compiler /
PrimeTime flow used in the paper for the digital part of the classifiers.
Costs are obtained by summing per-cell area/power from the technology's cell
library and applying the technology's wiring-overhead factor to the area
(printed routing is far from free at these feature sizes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.circuits.netlist import Netlist
from repro.pdk.egfet import EGFETTechnology


@dataclass(frozen=True)
class AreaPowerReport:
    """Cost summary of a synthesized digital block.

    Attributes
    ----------
    name:
        Name of the costed netlist.
    area_mm2:
        Total printed area including wiring overhead.
    power_uw:
        Total average power in uW.
    n_gates:
        Number of gate instances (constant drivers excluded).
    cell_counts:
        Instance count per library cell.
    """

    name: str
    area_mm2: float
    power_uw: float
    n_gates: int
    cell_counts: dict[str, int] = field(default_factory=dict)

    @property
    def power_mw(self) -> float:
        """Total average power in mW."""
        return self.power_uw / 1000.0

    def __add__(self, other: "AreaPowerReport") -> "AreaPowerReport":
        combined = Counter(self.cell_counts)
        combined.update(other.cell_counts)
        return AreaPowerReport(
            name=f"{self.name}+{other.name}",
            area_mm2=self.area_mm2 + other.area_mm2,
            power_uw=self.power_uw + other.power_uw,
            n_gates=self.n_gates + other.n_gates,
            cell_counts=dict(combined),
        )


def estimate_netlist(netlist: Netlist, technology: EGFETTechnology) -> AreaPowerReport:
    """Estimate the area and power of ``netlist`` in ``technology``.

    Constant-driver cells (``CONST0``/``CONST1``) are tie cells and are not
    counted as gates, although they are kept in the cell histogram for
    transparency.
    """
    library = technology.cell_library
    area = 0.0
    power = 0.0
    counts: Counter[str] = Counter()
    n_gates = 0
    for gate in netlist.gates:
        cell = library[gate.cell]
        area += cell.area_mm2
        power += cell.power_uw
        counts[gate.cell] += 1
        if gate.cell not in {"CONST0", "CONST1"}:
            n_gates += 1
    return AreaPowerReport(
        name=netlist.name,
        area_mm2=area * technology.wiring_area_overhead,
        power_uw=power,
        n_gates=n_gates,
        cell_counts=dict(counts),
    )
