"""RTL co-simulation of exported netlists against the Python golden model.

The missing link between the co-design numbers and simulatable hardware:
this module takes any :class:`~repro.circuits.netlist.Netlist`, emits the
structural Verilog module (:func:`~repro.circuits.verilog.netlist_to_verilog`)
plus a self-checking testbench whose expected outputs are baked in from the
compiled Python logic simulator
(:func:`~repro.circuits.testbench.generate_verilog_testbench`), and runs the
pair under an installed open-source simulator:

* **Icarus Verilog** (``iverilog``/``vvp``) -- preferred when both exist,
  because it is the lighter dependency;
* **Verilator** (``--binary --timing``) -- compiled C++ simulation.

Simulators are discovered with :func:`shutil.which`; on machines with
neither, :func:`run_cosim` raises :class:`SimulatorNotFoundError` and the
pytest suite *skips* (never fails) its execution tests, so CI stays green on
bare containers while the nightly cosim job (which installs iverilog)
exercises the full flow.

Vector policy: netlists with at most :data:`MAX_EXHAUSTIVE_INPUTS` primary
inputs are driven with every input combination (a complete equivalence
check); larger ones sample a seeded random subset, so runs stay reproducible.
"""

from __future__ import annotations

import itertools
import re
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.testbench import generate_verilog_testbench
from repro.circuits.verilog import netlist_to_verilog, sanitize_identifier

#: Schema version of :meth:`CosimReport.to_json_dict`.
COSIM_SCHEMA_VERSION = 1

#: Exhaustive-drive threshold: up to 2^12 = 4096 vectors are enumerated
#: completely; above that the testbench samples seeded random vectors.
MAX_EXHAUSTIVE_INPUTS = 12

#: Number of random vectors applied to netlists too wide for exhaustion.
DEFAULT_RANDOM_VECTORS = 256

#: Supported simulators, in ``auto`` preference order.
SIMULATORS = ("iverilog", "verilator")

_PASS_RE = re.compile(r"TESTBENCH PASSED: (\d+) vectors")
_FAIL_RE = re.compile(r"TESTBENCH FAILED: (\d+) errors")


class SimulatorNotFoundError(RuntimeError):
    """No usable Verilog simulator is installed (or the requested one isn't)."""


class CosimError(RuntimeError):
    """The simulator toolchain failed (compile error, unparsable output, ...)."""


def available_simulators() -> tuple[str, ...]:
    """Names of the supported simulators present on ``PATH``."""
    return tuple(name for name in SIMULATORS if shutil.which(name) is not None)


def find_simulator(preference: str = "auto") -> str | None:
    """Resolve a simulator preference to an installed simulator name.

    ``"auto"`` picks the first available simulator in :data:`SIMULATORS`
    order; a concrete name returns that name only if it is installed.
    Returns ``None`` when nothing usable is found.
    """
    if preference == "auto":
        present = available_simulators()
        return present[0] if present else None
    if preference not in SIMULATORS:
        raise ValueError(
            f"unknown simulator {preference!r}; expected 'auto' or one of "
            f"{SIMULATORS}"
        )
    return preference if shutil.which(preference) is not None else None


def testbench_vectors(
    netlist: Netlist,
    seed: int = 0,
    max_exhaustive_inputs: int = MAX_EXHAUSTIVE_INPUTS,
    n_random: int = DEFAULT_RANDOM_VECTORS,
) -> tuple[list[dict[str, bool]], bool]:
    """Input vectors for ``netlist``'s testbench.

    Returns ``(vectors, exhaustive)``: every input combination (in canonical
    binary counting order) when the netlist has at most
    ``max_exhaustive_inputs`` primary inputs, else ``n_random`` seeded random
    vectors.  Either way the golden model (the Python logic simulator)
    defines the expected output for every vector.
    """
    names = list(netlist.inputs)
    if len(names) <= max_exhaustive_inputs:
        vectors = [
            dict(zip(names, bits))
            for bits in itertools.product((False, True), repeat=len(names))
        ]
        return vectors, True
    if n_random < 1:
        raise ValueError("n_random must be >= 1")
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2, size=(n_random, len(names))) == 1
    return [dict(zip(names, map(bool, row))) for row in matrix], False


@dataclass(frozen=True)
class CosimReport:
    """Outcome of one netlist's RTL co-simulation run.

    Attributes
    ----------
    module:
        Verilog module name of the DUT.
    simulator:
        Simulator that executed the testbench (``iverilog``/``verilator``).
    n_vectors:
        Number of input vectors applied.
    n_mismatches:
        Vectors whose DUT outputs disagreed with the golden model.
    exhaustive:
        True when every input combination was driven (a full equivalence
        check of RTL vs. golden model).
    returncode:
        Simulation process exit status (nonzero on mismatch via ``$fatal``).
    passed:
        True iff the testbench reported zero mismatches and the simulator
        exited cleanly.
    log:
        Raw simulation stdout/stderr (kept out of ``repr`` for sanity).
    """

    module: str
    simulator: str
    n_vectors: int
    n_mismatches: int
    exhaustive: bool
    returncode: int
    passed: bool
    log: str = field(default="", repr=False)

    def to_json_dict(self) -> dict:
        return {
            "schema_version": COSIM_SCHEMA_VERSION,
            "kind": "cosim_report",
            "module": self.module,
            "simulator": self.simulator,
            "n_vectors": self.n_vectors,
            "n_mismatches": self.n_mismatches,
            "exhaustive": self.exhaustive,
            "returncode": self.returncode,
            "passed": self.passed,
        }


def write_cosim_sources(
    netlist: Netlist,
    directory: str | Path,
    seed: int = 0,
    max_exhaustive_inputs: int = MAX_EXHAUSTIVE_INPUTS,
    n_random: int = DEFAULT_RANDOM_VECTORS,
) -> tuple[Path, Path, int, bool]:
    """Write ``dut.v`` + ``tb.v`` for ``netlist`` into ``directory``.

    Returns ``(dut_path, tb_path, n_vectors, exhaustive)``.  Usable on its
    own (``repro.cli cosim --emit``) to hand the pair to any simulator, and
    internally by :func:`run_cosim`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    vectors, exhaustive = testbench_vectors(
        netlist,
        seed=seed,
        max_exhaustive_inputs=max_exhaustive_inputs,
        n_random=n_random,
    )
    dut_path = directory / "dut.v"
    tb_path = directory / "tb.v"
    dut_path.write_text(netlist_to_verilog(netlist), encoding="utf-8")
    tb_path.write_text(
        generate_verilog_testbench(netlist, vectors, fatal_on_mismatch=True),
        encoding="utf-8",
    )
    return dut_path, tb_path, len(vectors), exhaustive


def _run(cmd: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        cmd, cwd=str(cwd), capture_output=True, text=True, check=False
    )


def _simulate(
    simulator: str, dut_path: Path, tb_path: Path, tb_module: str, cwd: Path
) -> subprocess.CompletedProcess:
    """Compile and execute the testbench, returning the simulation process."""
    if simulator == "iverilog":
        compile_proc = _run(
            ["iverilog", "-g2012", "-o", "cosim.vvp", str(tb_path), str(dut_path)],
            cwd,
        )
        if compile_proc.returncode != 0:
            raise CosimError(
                f"iverilog failed (exit {compile_proc.returncode}):\n"
                f"{compile_proc.stdout}{compile_proc.stderr}"
            )
        return _run(["vvp", "cosim.vvp"], cwd)
    if simulator == "verilator":
        compile_proc = _run(
            [
                "verilator",
                "--binary",
                "--timing",
                "-Wno-fatal",
                "--top-module",
                tb_module,
                "-o",
                "cosim_bin",
                str(tb_path),
                str(dut_path),
            ],
            cwd,
        )
        if compile_proc.returncode != 0:
            raise CosimError(
                f"verilator failed (exit {compile_proc.returncode}):\n"
                f"{compile_proc.stdout}{compile_proc.stderr}"
            )
        return _run([str(cwd / "obj_dir" / "cosim_bin")], cwd)
    raise ValueError(f"unknown simulator {simulator!r}")


def _parse_verdict(log: str) -> tuple[bool, int]:
    """Extract ``(testbench_passed, n_mismatches)`` from a simulation log."""
    failed = _FAIL_RE.search(log)
    if failed is not None:
        return False, int(failed.group(1))
    passed = _PASS_RE.search(log)
    if passed is not None:
        return True, 0
    raise CosimError(f"simulation produced no TESTBENCH verdict:\n{log}")


def run_cosim(
    netlist: Netlist,
    simulator: str = "auto",
    seed: int = 0,
    max_exhaustive_inputs: int = MAX_EXHAUSTIVE_INPUTS,
    n_random: int = DEFAULT_RANDOM_VECTORS,
    workdir: str | Path | None = None,
) -> CosimReport:
    """Co-simulate ``netlist``'s exported Verilog against the golden model.

    Parameters
    ----------
    netlist:
        The circuit to check (validated during export).
    simulator:
        ``"auto"`` (first installed of :data:`SIMULATORS`), ``"iverilog"``
        or ``"verilator"``.  Raises :class:`SimulatorNotFoundError` when the
        choice resolves to nothing installed.
    seed / max_exhaustive_inputs / n_random:
        Vector policy, see :func:`testbench_vectors`.
    workdir:
        Directory the Verilog sources and simulator build products are
        written to (kept afterwards).  Default: a temporary directory,
        removed after the run.

    Returns
    -------
    CosimReport
        Structured pass/fail outcome; never raises on a *mismatch* (that is
        the report's job), only on toolchain failures.
    """
    name = find_simulator(simulator)
    if name is None:
        installed = available_simulators()
        raise SimulatorNotFoundError(
            f"no usable Verilog simulator for preference {simulator!r} "
            f"(installed: {installed or 'none'}; supported: {SIMULATORS})"
        )
    module = sanitize_identifier(netlist.name)
    if workdir is not None:
        return _run_cosim_in(
            netlist, name, module, Path(workdir), seed,
            max_exhaustive_inputs, n_random,
        )
    with tempfile.TemporaryDirectory(prefix="repro-cosim-") as tmp:
        return _run_cosim_in(
            netlist, name, module, Path(tmp), seed,
            max_exhaustive_inputs, n_random,
        )


def _run_cosim_in(
    netlist: Netlist,
    simulator: str,
    module: str,
    directory: Path,
    seed: int,
    max_exhaustive_inputs: int,
    n_random: int,
) -> CosimReport:
    dut_path, tb_path, n_vectors, exhaustive = write_cosim_sources(
        netlist,
        directory,
        seed=seed,
        max_exhaustive_inputs=max_exhaustive_inputs,
        n_random=n_random,
    )
    proc = _simulate(simulator, dut_path, tb_path, f"{module}_tb", directory)
    log = proc.stdout + proc.stderr
    verdict_passed, n_mismatches = _parse_verdict(log)
    return CosimReport(
        module=module,
        simulator=simulator,
        n_vectors=n_vectors,
        n_mismatches=n_mismatches,
        exhaustive=exhaustive,
        returncode=proc.returncode,
        passed=verdict_passed and n_mismatches == 0 and proc.returncode == 0,
        log=log,
    )
