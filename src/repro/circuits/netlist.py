"""Gate-level netlist representation.

A :class:`Netlist` is a directed acyclic graph of :class:`Gate` instances
connected by named nets.  It intentionally stays technology-agnostic: gates
reference library cells by *name* and the actual area/power lookup happens in
:mod:`repro.circuits.area_power`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass


@dataclass(frozen=True)
class Gate:
    """One instantiated cell.

    Attributes
    ----------
    name:
        Unique instance name inside the netlist.
    cell:
        Library cell name (e.g. ``"AND2"``).
    inputs:
        Ordered input net names.
    output:
        Output net name driven by this gate.
    """

    name: str
    cell: str
    inputs: tuple[str, ...]
    output: str


class NetlistError(ValueError):
    """Raised when a netlist is malformed (multiple drivers, loops, ...)."""


class Netlist:
    """A combinational gate-level netlist.

    Nets are identified by strings.  Primary inputs are declared with
    :meth:`add_input`; every other net must be driven by exactly one gate.
    Primary outputs are existing nets marked with :meth:`add_output`.
    """

    def __init__(self, name: str):
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: list[Gate] = []
        self._drivers: dict[str, Gate] = {}
        self._gate_names: set[str] = set()
        self._net_counter = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_input(self, net: str) -> str:
        """Declare ``net`` as a primary input and return its name."""
        if net in self._drivers:
            raise NetlistError(f"net {net!r} is already driven by a gate")
        if net not in self._inputs:
            self._inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        """Mark ``net`` as a primary output and return its name."""
        if net not in self._outputs:
            self._outputs.append(net)
        return net

    def new_net(self, prefix: str = "n") -> str:
        """Return a fresh, unused internal net name."""
        while True:
            candidate = f"{prefix}{self._net_counter}"
            self._net_counter += 1
            if candidate not in self._drivers and candidate not in self._inputs:
                return candidate

    def add_gate(
        self,
        cell: str,
        inputs: list[str] | tuple[str, ...],
        output: str | None = None,
        name: str | None = None,
    ) -> str:
        """Instantiate ``cell`` and return the name of its output net.

        If ``output`` is omitted a fresh internal net is created.  Gate
        instance names are generated automatically unless provided.
        """
        output_net = output if output is not None else self.new_net()
        if output_net in self._drivers:
            raise NetlistError(f"net {output_net!r} already has a driver")
        if output_net in self._inputs:
            raise NetlistError(f"net {output_net!r} is a primary input")
        gate_name = name if name is not None else f"g{len(self._gates)}"
        if gate_name in self._gate_names:
            raise NetlistError(f"gate name {gate_name!r} already used")
        gate = Gate(name=gate_name, cell=cell, inputs=tuple(inputs), output=output_net)
        self._gates.append(gate)
        self._gate_names.add(gate_name)
        self._drivers[output_net] = gate
        return output_net

    def add_constant(self, value: bool, output: str | None = None) -> str:
        """Drive a net with a constant 0/1 cell and return the net name."""
        cell = "CONST1" if value else "CONST0"
        return self.add_gate(cell, [], output=output)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def inputs(self) -> list[str]:
        """Primary input net names, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> list[str]:
        """Primary output net names, in declaration order."""
        return list(self._outputs)

    @property
    def gates(self) -> list[Gate]:
        """All gate instances, in insertion order."""
        return list(self._gates)

    @property
    def n_gates(self) -> int:
        """Number of gate instances (constants included)."""
        return len(self._gates)

    def driver_of(self, net: str) -> Gate | None:
        """Gate driving ``net``, or ``None`` for primary inputs."""
        return self._drivers.get(net)

    def cell_histogram(self) -> Counter[str]:
        """Count of instances per library cell name."""
        return Counter(gate.cell for gate in self._gates)

    def nets(self) -> set[str]:
        """All net names appearing in the netlist."""
        names: set[str] = set(self._inputs)
        for gate in self._gates:
            names.add(gate.output)
            names.update(gate.inputs)
        return names

    # ------------------------------------------------------------------ #
    # validation / ordering
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural sanity.

        Raises :class:`NetlistError` when a gate input or a primary output is
        undriven, or when the gate graph contains a combinational cycle.
        """
        driven = set(self._inputs) | set(self._drivers)
        for gate in self._gates:
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        f"gate {gate.name!r} input net {net!r} has no driver"
                    )
        for net in self._outputs:
            if net not in driven:
                raise NetlistError(f"primary output {net!r} has no driver")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list[Gate]:
        """Return gates in a valid evaluation order.

        Raises :class:`NetlistError` if the netlist contains a cycle.
        """
        consumers: dict[str, list[Gate]] = {}
        indegree: dict[str, int] = {}
        for gate in self._gates:
            count = 0
            for net in gate.inputs:
                if net in self._drivers:
                    count += 1
                    consumers.setdefault(net, []).append(gate)
            indegree[gate.name] = count

        ready = deque(gate for gate in self._gates if indegree[gate.name] == 0)
        order: list[Gate] = []
        while ready:
            gate = ready.popleft()
            order.append(gate)
            for consumer in consumers.get(gate.output, []):
                indegree[consumer.name] -= 1
                if indegree[consumer.name] == 0:
                    ready.append(consumer)
        if len(order) != len(self._gates):
            raise NetlistError(f"netlist {self.name!r} contains a combinational cycle")
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist(name={self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, gates={len(self._gates)})"
        )
