"""Two-level (sum-of-products) logic representation.

Section III-A of the paper shows that, once the inputs are available as
parallel unary digits, every class label of a bespoke decision tree reduces to
"simple two-level logic (e.g. AND-OR)" over those digits (Fig. 2b).  This
module provides the :class:`SumOfProducts` container used to express that
logic, together with a lightweight minimizer (duplicate removal, containment
absorption, and complementary single-literal reduction) that captures the
obvious simplifications a synthesis tool would perform.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Literal:
    """A possibly negated boolean variable reference."""

    name: str
    positive: bool = True

    def negate(self) -> "Literal":
        """Return the complementary literal."""
        return Literal(self.name, not self.positive)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Value of the literal under ``assignment``."""
        value = bool(assignment[self.name])
        return value if self.positive else not value

    def __str__(self) -> str:
        return self.name if self.positive else f"!{self.name}"


Term = frozenset  # a product term: frozenset[Literal]


def _is_contradictory(term: frozenset[Literal]) -> bool:
    """True when a term contains both a variable and its complement."""
    names = {}
    for literal in term:
        if names.get(literal.name, literal.positive) != literal.positive:
            return True
        names[literal.name] = literal.positive
    return False


class SumOfProducts:
    """A boolean function expressed as an OR of AND terms.

    The empty SOP is the constant ``False``; an SOP containing the empty term
    is the constant ``True``.
    """

    def __init__(self, terms: Iterable[Iterable[Literal]] = ()):
        cleaned: set[frozenset[Literal]] = set()
        for term in terms:
            frozen = frozenset(term)
            if _is_contradictory(frozen):
                continue
            cleaned.add(frozen)
        self._terms: set[frozenset[Literal]] = cleaned

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def false(cls) -> "SumOfProducts":
        """The constant-false function."""
        return cls()

    @classmethod
    def true(cls) -> "SumOfProducts":
        """The constant-true function."""
        return cls([frozenset()])

    def add_term(self, literals: Iterable[Literal]) -> None:
        """Add one product term (ignored if it is contradictory)."""
        frozen = frozenset(literals)
        if not _is_contradictory(frozen):
            self._terms.add(frozen)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def terms(self) -> list[frozenset[Literal]]:
        """The product terms in a deterministic order."""
        return sorted(self._terms, key=lambda t: (len(t), sorted(map(str, t))))

    @property
    def n_terms(self) -> int:
        """Number of product terms."""
        return len(self._terms)

    @property
    def n_literals(self) -> int:
        """Total literal count (the classic two-level cost metric)."""
        return sum(len(term) for term in self._terms)

    def variables(self) -> set[str]:
        """Names of every variable referenced by the function."""
        return {literal.name for term in self._terms for literal in term}

    def is_false(self) -> bool:
        """True when the SOP is the constant-false function."""
        return not self._terms

    def is_true(self) -> bool:
        """True when the SOP contains the empty (always-true) term."""
        return any(len(term) == 0 for term in self._terms)

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #
    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function under a complete variable assignment."""
        return any(
            all(literal.evaluate(assignment) for literal in term)
            for term in self._terms
        )

    # ------------------------------------------------------------------ #
    # minimization
    # ------------------------------------------------------------------ #
    def minimized(self) -> "SumOfProducts":
        """Return an equivalent SOP with the obvious redundancy removed.

        The minimizer applies, to a fixed point:

        * duplicate-term removal (by construction of the term set),
        * containment absorption: if term ``A`` is a subset of term ``B``
          then ``B`` is redundant (``A`` already covers it),
        * single-variable resolution: two terms differing only in the
          polarity of one literal merge into the common remainder.

        This is not a full Quine-McCluskey pass, but for the shallow
        AND-OR label logic of bespoke decision trees (one product term per
        decision path) it removes exactly the redundancies that matter for
        the area model while staying linear-ish in the number of terms.
        """
        terms = set(self._terms)
        changed = True
        while changed:
            changed = False
            # single-variable resolution
            merged: set[frozenset[Literal]] = set()
            consumed: set[frozenset[Literal]] = set()
            term_list = sorted(terms, key=lambda t: (len(t), sorted(map(str, t))))
            for i, term_a in enumerate(term_list):
                for term_b in term_list[i + 1:]:
                    if len(term_a) != len(term_b):
                        continue
                    diff_a = term_a - term_b
                    diff_b = term_b - term_a
                    if len(diff_a) == 1 and len(diff_b) == 1:
                        lit_a = next(iter(diff_a))
                        lit_b = next(iter(diff_b))
                        if lit_a.name == lit_b.name and lit_a.positive != lit_b.positive:
                            merged.add(term_a & term_b)
                            consumed.add(term_a)
                            consumed.add(term_b)
            if merged:
                terms = (terms - consumed) | merged
                changed = True
            # containment absorption
            kept: set[frozenset[Literal]] = set()
            for term in sorted(terms, key=lambda t: (len(t), sorted(map(str, t)))):
                if not any(other <= term for other in kept):
                    kept.add(term)
            if kept != terms:
                terms = kept
                changed = True
        result = SumOfProducts()
        result._terms = terms
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SumOfProducts):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms))

    def __str__(self) -> str:
        if self.is_false():
            return "0"
        if self.is_true():
            return "1"
        parts = []
        for term in self.terms:
            lits = sorted(map(str, term))
            parts.append(" & ".join(lits) if lits else "1")
        return " | ".join(f"({p})" for p in parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SumOfProducts(n_terms={self.n_terms}, n_literals={self.n_literals})"
