"""Combinational logic simulation of gate-level netlists.

The simulator evaluates every gate of a :class:`~repro.circuits.netlist.Netlist`
in topological order.  It is used by the equivalence checker to prove that the
synthesized bespoke/unary circuits implement exactly the trained decision
tree, so that reported hardware costs always correspond to a functionally
correct implementation.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.circuits.netlist import Gate, Netlist


def _eval_gate(gate: Gate, values: Mapping[str, bool]) -> bool:
    """Evaluate one gate given the values of its input nets."""
    cell = gate.cell
    ins = [bool(values[net]) for net in gate.inputs]
    if cell == "CONST0":
        return False
    if cell == "CONST1":
        return True
    if cell == "BUF":
        return ins[0]
    if cell == "INV":
        return not ins[0]
    if cell.startswith("AND"):
        return all(ins)
    if cell.startswith("NAND"):
        return not all(ins)
    if cell.startswith("OR"):
        return any(ins)
    if cell.startswith("NOR"):
        return not any(ins)
    if cell == "XOR2":
        return ins[0] != ins[1]
    if cell == "XNOR2":
        return ins[0] == ins[1]
    if cell == "MUX2":
        # inputs: (a, b, sel) -> sel ? b : a
        return ins[1] if ins[2] else ins[0]
    if cell == "AOI21":
        # !((a & b) | c)
        return not ((ins[0] and ins[1]) or ins[2])
    if cell == "OAI21":
        # !((a | b) & c)
        return not ((ins[0] or ins[1]) and ins[2])
    raise ValueError(f"logic simulator does not know cell {cell!r}")


def evaluate_netlist(netlist: Netlist, inputs: Mapping[str, bool]) -> dict[str, bool]:
    """Evaluate ``netlist`` and return the value of every net.

    Parameters
    ----------
    netlist:
        The combinational circuit to simulate.
    inputs:
        Mapping from primary input net name to boolean value.  Every primary
        input must be present.
    """
    missing = [net for net in netlist.inputs if net not in inputs]
    if missing:
        raise KeyError(f"missing values for primary inputs: {missing}")
    values: dict[str, bool] = {net: bool(inputs[net]) for net in netlist.inputs}
    for gate in netlist.topological_order():
        values[gate.output] = _eval_gate(gate, values)
    return values


def evaluate_outputs(netlist: Netlist, inputs: Mapping[str, bool]) -> dict[str, bool]:
    """Evaluate ``netlist`` and return only its primary outputs."""
    values = evaluate_netlist(netlist, inputs)
    return {net: values[net] for net in netlist.outputs}
