"""Combinational logic simulation of gate-level netlists.

The simulator evaluates every gate of a :class:`~repro.circuits.netlist.Netlist`
in topological order.  It is used by the equivalence checker to prove that the
synthesized bespoke/unary circuits implement exactly the trained decision
tree, so that reported hardware costs always correspond to a functionally
correct implementation.

Two evaluation modes share one gate semantics:

* **batch** -- :class:`CompiledNetlist` compiles the netlist once into a
  topologically ordered op list over integer net slots and then evaluates
  *all* test vectors simultaneously: every net carries a boolean ndarray with
  one entry per vector, and each gate is a handful of NumPy array ops.  This
  is what the equivalence checker and the batched baseline predictors use.
* **scalar** -- :func:`evaluate_netlist` / :func:`evaluate_outputs` keep the
  original one-vector ``dict[str, bool]`` API as thin wrappers over a
  single-row batch, so both paths are the same code and cannot diverge.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.circuits.netlist import Netlist

def _and_reduce(ins: list[np.ndarray], n: int) -> np.ndarray:
    return np.logical_and.reduce(ins) if ins else np.ones(n, dtype=bool)


def _or_reduce(ins: list[np.ndarray], n: int) -> np.ndarray:
    return np.logical_or.reduce(ins) if ins else np.zeros(n, dtype=bool)


#: Evaluator per cell name: ``(input arrays, n_vectors) -> output array``.
#: This table is the single source of truth for which cells the simulator
#: knows -- compile-time validation resolves against it, so "accepted by
#: CompiledNetlist" and "evaluable" are the same set by construction.
_CELL_EVALUATORS: dict = {
    "CONST0": lambda ins, n: np.zeros(n, dtype=bool),
    "CONST1": lambda ins, n: np.ones(n, dtype=bool),
    "BUF": lambda ins, n: ins[0],
    "INV": lambda ins, n: ~ins[0],
    "XOR2": lambda ins, n: ins[0] ^ ins[1],
    "XNOR2": lambda ins, n: ~(ins[0] ^ ins[1]),
    # inputs: (a, b, sel) -> sel ? b : a
    "MUX2": lambda ins, n: np.where(ins[2], ins[1], ins[0]),
    # !((a & b) | c)
    "AOI21": lambda ins, n: ~((ins[0] & ins[1]) | ins[2]),
    # !((a | b) & c)
    "OAI21": lambda ins, n: ~((ins[0] | ins[1]) & ins[2]),
}

#: Variable-arity families (arity is encoded in the cell name, e.g. AND4).
_PREFIX_EVALUATORS: tuple = (
    ("NAND", lambda ins, n: ~_and_reduce(ins, n)),
    ("NOR", lambda ins, n: ~_or_reduce(ins, n)),
    ("AND", _and_reduce),
    ("OR", _or_reduce),
)


def _evaluator_for(cell: str):
    """Resolve the batch evaluator of ``cell``; raise for unknown cells."""
    evaluator = _CELL_EVALUATORS.get(cell)
    if evaluator is not None:
        return evaluator
    for prefix, prefix_evaluator in _PREFIX_EVALUATORS:
        if cell.startswith(prefix):
            return prefix_evaluator
    raise ValueError(f"logic simulator does not know cell {cell!r}")


class CompiledNetlist:
    """A netlist compiled for repeated batch evaluation.

    Compilation resolves the topological gate order and maps every net to an
    integer slot once, so evaluating a batch of vectors is a single pass of
    array ops with no per-call graph work.  Compile once, evaluate many --
    the equivalence checker and the batched predictors reuse one instance
    across all their vectors.
    """

    def __init__(self, netlist: Netlist):
        self.name = netlist.name
        self.inputs: tuple[str, ...] = tuple(netlist.inputs)
        self.outputs: tuple[str, ...] = tuple(netlist.outputs)
        self._net_index: dict[str, int] = {net: i for i, net in enumerate(self.inputs)}
        ops: list = []
        for gate in netlist.topological_order():
            evaluator = _evaluator_for(gate.cell)
            try:
                input_slots = tuple(self._net_index[net] for net in gate.inputs)
            except KeyError as exc:
                raise ValueError(
                    f"gate {gate.name!r} input net {exc.args[0]!r} has no driver"
                ) from exc
            slot = self._net_index.setdefault(gate.output, len(self._net_index))
            ops.append((evaluator, input_slots, slot))
        self._ops = ops
        missing = [net for net in self.outputs if net not in self._net_index]
        if missing:
            raise ValueError(f"primary outputs have no driver: {missing}")

    @property
    def n_nets(self) -> int:
        """Number of distinct nets (input + gate-driven)."""
        return len(self._net_index)

    def _input_slots(
        self, inputs: Mapping[str, np.ndarray], n_vectors: int | None
    ) -> tuple[list[np.ndarray | None], int]:
        missing = [net for net in self.inputs if net not in inputs]
        if missing:
            raise KeyError(f"missing values for primary inputs: {missing}")
        values: list[np.ndarray | None] = [None] * self.n_nets
        for position, net in enumerate(self.inputs):
            array = np.asarray(inputs[net], dtype=bool)
            if array.ndim == 0:
                array = array.reshape(1)
            if array.ndim != 1:
                raise ValueError(
                    f"input {net!r}: expected a 1-D vector of boolean values, "
                    f"got shape {array.shape}"
                )
            if n_vectors is None:
                n_vectors = array.shape[0]
            elif array.shape[0] != n_vectors:
                raise ValueError(
                    f"input {net!r} has {array.shape[0]} vectors, expected {n_vectors}"
                )
            values[position] = array
        if n_vectors is None:
            n_vectors = 1  # input-less netlist (constants only)
        return values, n_vectors

    def evaluate(
        self, inputs: Mapping[str, np.ndarray], n_vectors: int | None = None
    ) -> dict[str, np.ndarray]:
        """Evaluate a batch of input vectors and return every net's values.

        Parameters
        ----------
        inputs:
            Mapping from primary input net name to a boolean vector holding
            that input's value in every test vector.  All vectors must share
            one length.
        n_vectors:
            Batch size; only needed for netlists without primary inputs
            (otherwise inferred from the input vectors).
        """
        values, n_vectors = self._input_slots(inputs, n_vectors)
        for evaluator, input_slots, output_slot in self._ops:
            ins = [values[slot] for slot in input_slots]
            values[output_slot] = evaluator(ins, n_vectors)
        return {net: values[slot] for net, slot in self._net_index.items()}

    def evaluate_outputs(
        self, inputs: Mapping[str, np.ndarray], n_vectors: int | None = None
    ) -> dict[str, np.ndarray]:
        """Evaluate a batch and return only the primary output vectors."""
        values = self.evaluate(inputs, n_vectors)
        return {net: values[net] for net in self.outputs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledNetlist(name={self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, ops={len(self._ops)})"
        )


def evaluate_netlist_batch(
    netlist: Netlist, inputs: Mapping[str, np.ndarray], n_vectors: int | None = None
) -> dict[str, np.ndarray]:
    """Compile ``netlist`` and evaluate a batch of vectors in one call.

    Convenience wrapper around :class:`CompiledNetlist` for one-shot batch
    evaluations; callers evaluating the same netlist repeatedly should keep a
    :class:`CompiledNetlist` instance instead.
    """
    return CompiledNetlist(netlist).evaluate(inputs, n_vectors)


def evaluate_outputs_batch(
    netlist: Netlist, inputs: Mapping[str, np.ndarray], n_vectors: int | None = None
) -> dict[str, np.ndarray]:
    """Batch counterpart of :func:`evaluate_outputs`."""
    return CompiledNetlist(netlist).evaluate_outputs(inputs, n_vectors)


def evaluate_netlist(netlist: Netlist, inputs: Mapping[str, bool]) -> dict[str, bool]:
    """Evaluate ``netlist`` and return the value of every net.

    Parameters
    ----------
    netlist:
        The combinational circuit to simulate.
    inputs:
        Mapping from primary input net name to boolean value.  Every primary
        input must be present.
    """
    batch = {net: np.asarray([bool(inputs[net])]) for net in netlist.inputs if net in inputs}
    values = evaluate_netlist_batch(netlist, batch, n_vectors=1)
    return {net: bool(vector[0]) for net, vector in values.items()}


def evaluate_outputs(netlist: Netlist, inputs: Mapping[str, bool]) -> dict[str, bool]:
    """Evaluate ``netlist`` and return only its primary outputs."""
    values = evaluate_netlist(netlist, inputs)
    return {net: values[net] for net in netlist.outputs}
