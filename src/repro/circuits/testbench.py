"""Self-checking Verilog testbench generation.

Complements :mod:`repro.circuits.verilog`: given a netlist and a set of input
vectors, the generated testbench applies every vector, compares the DUT
outputs against the expected values computed by the Python logic simulator,
and reports the number of mismatches.  The testbench is the executable half
of the RTL co-simulation flow: :mod:`repro.circuits.cosim` generates one per
exported module (exhaustive vectors for small netlists, seeded random
sampling above a threshold), runs it under Icarus Verilog or Verilator, and
parses the pass/fail summary into a
:class:`~repro.circuits.cosim.CosimReport`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.circuits.logic_sim import CompiledNetlist
from repro.circuits.netlist import Netlist
from repro.circuits.verilog import sanitize_identifier, verilog_net_names


def generate_verilog_testbench(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, bool]],
    module_name: str | None = None,
    testbench_name: str | None = None,
    fatal_on_mismatch: bool = False,
) -> str:
    """Build a self-checking testbench for ``netlist``.

    Parameters
    ----------
    netlist:
        The circuit under test (its module is expected to be generated with
        :func:`repro.circuits.verilog.netlist_to_verilog`).
    vectors:
        Input assignments to apply.  Expected outputs are computed with the
        Python logic simulator, so the testbench encodes the golden model.
    module_name:
        Name of the DUT module (defaults to the sanitized netlist name).
    testbench_name:
        Name of the generated testbench module (defaults to ``<dut>_tb``).
    fatal_on_mismatch:
        When true, a run with any mismatched vector ends in ``$fatal``, so
        the simulator exits with a nonzero status (the mode the cosim runner
        uses).  Mismatches are still counted and displayed first -- the
        ``$fatal`` fires once after the final vector, preserving the full
        mismatch census in the log.
    """
    if not vectors:
        raise ValueError("at least one test vector is required")
    netlist.validate()
    dut = sanitize_identifier(module_name or netlist.name)
    tb = sanitize_identifier(testbench_name or f"{dut}_tb")

    # The DUT module was emitted with this exact mapping; reusing it keeps
    # port bindings correct even when raw names collide after sanitization.
    nets = verilog_net_names(netlist)
    inputs = [nets[name] for name in netlist.inputs]
    outputs = [nets[name] for name in netlist.outputs]

    lines: list[str] = []
    lines.append(f"// Self-checking testbench for module '{dut}'")
    lines.append(f"// {len(vectors)} vectors, golden outputs from the Python logic simulator")
    lines.append("`timescale 1us/1ns")
    lines.append(f"module {tb};")
    for name in inputs:
        lines.append(f"  reg  {name};")
    for name in outputs:
        lines.append(f"  wire {name};")
    lines.append("  integer errors;")
    lines.append("")
    port_bindings = ",\n    ".join(f".{name}({name})" for name in inputs + outputs)
    lines.append(f"  {dut} dut (")
    lines.append(f"    {port_bindings}")
    lines.append("  );")
    lines.append("")
    lines.append("  initial begin")
    lines.append("    errors = 0;")

    # Golden outputs: compile the netlist once and simulate every vector in
    # a single batch pass instead of re-walking the graph per vector.
    for index, vector in enumerate(vectors):
        missing = [name for name in netlist.inputs if name not in vector]
        if missing:
            raise KeyError(f"vector {index} is missing inputs {missing}")
    compiled = CompiledNetlist(netlist)
    expected_batch = compiled.evaluate_outputs(
        {
            name: np.array([bool(vector[name]) for vector in vectors])
            for name in netlist.inputs
        },
        n_vectors=len(vectors),
    )
    for index, vector in enumerate(vectors):
        lines.append(f"    // vector {index}")
        for raw_name, clean_name in zip(netlist.inputs, inputs):
            lines.append(f"    {clean_name} = 1'b{1 if vector[raw_name] else 0};")
        lines.append("    #1;")
        for raw_name, clean_name in zip(netlist.outputs, outputs):
            value = 1 if expected_batch[raw_name][index] else 0
            lines.append(
                f"    if ({clean_name} !== 1'b{value}) begin "
                f"errors = errors + 1; "
                f"$display(\"vector {index}: {clean_name} expected 1'b{value}, got %b\", {clean_name}); "
                f"end"
            )

    lines.append("")
    lines.append("    if (errors == 0) $display(\"TESTBENCH PASSED: %0d vectors\", "
                 f"{len(vectors)});")
    lines.append("    else $display(\"TESTBENCH FAILED: %0d errors\", errors);")
    if fatal_on_mismatch:
        lines.append("    if (errors != 0) $fatal(1);")
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
