"""Functional equivalence checking between netlists and reference models.

Every hardware cost the framework reports should correspond to a circuit that
actually computes the trained classifier.  This module compares a synthesized
netlist against an arbitrary reference function, either exhaustively (for
small input counts) or on a deterministic sample of input vectors.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.circuits.logic_sim import evaluate_outputs
from repro.circuits.netlist import Netlist


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check.

    Attributes
    ----------
    equivalent:
        True when no mismatching vector was found.
    n_vectors:
        Number of input vectors exercised.
    mismatches:
        Up to ``max_recorded_mismatches`` offending input assignments.
    """

    equivalent: bool
    n_vectors: int
    mismatches: list[dict[str, bool]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


ReferenceFunction = Callable[[Mapping[str, bool]], Mapping[str, bool]]


def _vectors(
    input_names: Sequence[str],
    exhaustive_limit: int,
    n_random_vectors: int,
    seed: int,
):
    """Yield input assignments: exhaustive if small enough, else sampled."""
    n_inputs = len(input_names)
    if n_inputs <= exhaustive_limit:
        for bits in itertools.product((False, True), repeat=n_inputs):
            yield dict(zip(input_names, bits))
        return
    rng = random.Random(seed)
    for _ in range(n_random_vectors):
        yield {name: bool(rng.getrandbits(1)) for name in input_names}


def check_equivalence(
    netlist: Netlist,
    reference: ReferenceFunction,
    exhaustive_limit: int = 12,
    n_random_vectors: int = 2000,
    seed: int = 0,
    max_recorded_mismatches: int = 10,
) -> EquivalenceResult:
    """Compare ``netlist`` against ``reference`` over its primary inputs.

    Parameters
    ----------
    netlist:
        Circuit under verification.
    reference:
        Callable mapping a full input assignment to the expected values of
        (at least) every primary output of the netlist.
    exhaustive_limit:
        Input count up to which all ``2**n`` vectors are enumerated.
    n_random_vectors:
        Number of pseudo-random vectors used above the exhaustive limit.
    seed:
        Seed of the random vector generator (checks are reproducible).
    max_recorded_mismatches:
        Cap on the number of counterexamples stored in the result.
    """
    mismatches: list[dict[str, bool]] = []
    n_vectors = 0
    for assignment in _vectors(netlist.inputs, exhaustive_limit, n_random_vectors, seed):
        n_vectors += 1
        actual = evaluate_outputs(netlist, assignment)
        expected = reference(assignment)
        for net in netlist.outputs:
            if bool(actual[net]) != bool(expected[net]):
                if len(mismatches) < max_recorded_mismatches:
                    mismatches.append(dict(assignment))
                break
    return EquivalenceResult(
        equivalent=not mismatches,
        n_vectors=n_vectors,
        mismatches=mismatches,
    )
