"""Functional equivalence checking between netlists and reference models.

Every hardware cost the framework reports should correspond to a circuit that
actually computes the trained classifier.  This module compares a synthesized
netlist against an arbitrary reference function, either exhaustively (for
small input counts) or on a deterministic sample of *unique* input vectors.

The netlist side is evaluated in one batch through
:class:`~repro.circuits.logic_sim.CompiledNetlist`: all vectors are generated
as a boolean matrix up front and every gate of the circuit is evaluated once
over the whole matrix, so exhaustive checks of the synthesized label logic
cost a handful of array ops instead of ``2**n`` interpreter passes.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.logic_sim import CompiledNetlist
from repro.circuits.netlist import Netlist


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check.

    Attributes
    ----------
    equivalent:
        True when no mismatching vector was found.
    n_vectors:
        Number of input vectors exercised.
    mismatches:
        Up to ``max_recorded_mismatches`` offending input assignments.
    """

    equivalent: bool
    n_vectors: int
    mismatches: list[dict[str, bool]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


ReferenceFunction = Callable[[Mapping[str, bool]], Mapping[str, bool]]


def _exhaustive_matrix(n_inputs: int) -> np.ndarray:
    """All ``2**n`` input vectors, counting up with input 0 as the MSB."""
    codes = np.arange(2 ** n_inputs, dtype=np.int64)
    shifts = np.arange(n_inputs - 1, -1, -1, dtype=np.int64)
    return ((codes[:, np.newaxis] >> shifts) & 1).astype(bool)


def _unique_random_matrix(n_inputs: int, n_vectors: int, seed: int) -> np.ndarray:
    """``n_vectors`` distinct random input vectors from a seeded Generator.

    Vectors are sampled as integers (bit codes) and deduplicated in draw
    order, topping the sample up until the requested count of *unique* rows
    is reached -- the seeded ``np.random.Generator`` keeps checks
    reproducible while unique rows remove the wasted duplicate evaluations
    the old per-bit ``random.Random`` sampling allowed.
    """
    rng = np.random.default_rng(seed)
    if n_inputs <= 62:
        space = 1 << n_inputs
        target = min(n_vectors, space)
        chosen: dict[int, None] = {}
        while len(chosen) < target:
            draw = rng.integers(0, space, size=2 * (target - len(chosen)), dtype=np.int64)
            for code in draw:
                chosen.setdefault(int(code), None)
                if len(chosen) == target:
                    break
        codes = np.fromiter(chosen, dtype=np.int64, count=target)
        shifts = np.arange(n_inputs - 1, -1, -1, dtype=np.int64)
        return ((codes[:, np.newaxis] >> shifts) & 1).astype(bool)
    # Too wide for integer codes: sample bit rows and deduplicate by bytes.
    chosen_rows: dict[bytes, np.ndarray] = {}
    while len(chosen_rows) < n_vectors:
        rows = rng.integers(0, 2, size=(n_vectors - len(chosen_rows), n_inputs)).astype(bool)
        for row in rows:
            chosen_rows.setdefault(row.tobytes(), row)
            if len(chosen_rows) == n_vectors:
                break
    return np.stack(list(chosen_rows.values()))


def _vector_matrix(
    input_names: Sequence[str],
    exhaustive_limit: int,
    n_random_vectors: int,
    seed: int,
) -> np.ndarray:
    """Boolean ``(n_vectors, n_inputs)`` matrix of the vectors to check."""
    n_inputs = len(input_names)
    if n_inputs <= exhaustive_limit:
        return _exhaustive_matrix(n_inputs)
    return _unique_random_matrix(n_inputs, n_random_vectors, seed)


def check_equivalence(
    netlist: Netlist,
    reference: ReferenceFunction,
    exhaustive_limit: int = 12,
    n_random_vectors: int = 2000,
    seed: int = 0,
    max_recorded_mismatches: int = 10,
) -> EquivalenceResult:
    """Compare ``netlist`` against ``reference`` over its primary inputs.

    Parameters
    ----------
    netlist:
        Circuit under verification.
    reference:
        Callable mapping a full input assignment to the expected values of
        (at least) every primary output of the netlist.
    exhaustive_limit:
        Input count up to which all ``2**n`` vectors are enumerated.
    n_random_vectors:
        Number of unique pseudo-random vectors used above the exhaustive
        limit.
    seed:
        Seed of the random vector generator (checks are reproducible).
    max_recorded_mismatches:
        Cap on the number of counterexamples stored in the result.
    """
    input_names = netlist.inputs
    vectors = _vector_matrix(input_names, exhaustive_limit, n_random_vectors, seed)
    compiled = CompiledNetlist(netlist)
    outputs = compiled.evaluate_outputs(
        {name: vectors[:, i] for i, name in enumerate(input_names)},
        n_vectors=len(vectors),
    )
    actual = (
        np.column_stack([outputs[net] for net in compiled.outputs])
        if compiled.outputs
        else np.zeros((len(vectors), 0), dtype=bool)
    )

    mismatches: list[dict[str, bool]] = []
    for row_index in range(len(vectors)):
        assignment = {
            name: bool(vectors[row_index, i]) for i, name in enumerate(input_names)
        }
        expected = reference(assignment)
        for position, net in enumerate(compiled.outputs):
            if bool(actual[row_index, position]) != bool(expected[net]):
                if len(mismatches) < max_recorded_mismatches:
                    mismatches.append(assignment)
                break
    return EquivalenceResult(
        equivalent=not mismatches,
        n_vectors=len(vectors),
        mismatches=mismatches,
    )
