"""Static timing estimation of combinational netlists.

Printed EGFET gates are slow (millisecond-scale propagation delays), so even
a purely combinational classifier must be checked against the sampling
period -- 50 ms at the paper's 20 Hz operating frequency.  This module
computes the critical path of a netlist from per-cell delays derived from the
cell's gate-equivalent size, and reports whether the design meets the
technology's sampling period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Netlist
from repro.pdk.egfet import EGFETTechnology

#: Propagation delay of one gate equivalent (a 2-input NAND) in milliseconds.
#: Printed EGFET gates switch in the millisecond range at 1 V.
GATE_EQUIVALENT_DELAY_MS = 1.2

#: Fixed delay added per cell for printed interconnect, in milliseconds.
WIRE_DELAY_MS = 0.15


@dataclass(frozen=True)
class TimingReport:
    """Critical-path summary of a combinational block.

    Attributes
    ----------
    name:
        Name of the analyzed netlist.
    critical_path_delay_ms:
        Longest input-to-output propagation delay.
    critical_path:
        Gate instance names along the critical path (input to output).
    logic_depth:
        Number of cells on the critical path.
    sampling_period_ms:
        Period available at the technology's operating frequency.
    """

    name: str
    critical_path_delay_ms: float
    critical_path: tuple[str, ...]
    logic_depth: int
    sampling_period_ms: float

    @property
    def meets_timing(self) -> bool:
        """True when the critical path fits inside the sampling period."""
        return self.critical_path_delay_ms <= self.sampling_period_ms

    @property
    def slack_ms(self) -> float:
        """Remaining time budget (negative when timing is violated)."""
        return self.sampling_period_ms - self.critical_path_delay_ms


def cell_delay_ms(cell_name: str, technology: EGFETTechnology) -> float:
    """Propagation delay of one library cell in milliseconds."""
    cell = technology.cell_library[cell_name]
    if cell.gate_equivalents == 0:
        return 0.0
    return cell.gate_equivalents * GATE_EQUIVALENT_DELAY_MS + WIRE_DELAY_MS


def estimate_timing(netlist: Netlist, technology: EGFETTechnology) -> TimingReport:
    """Compute the critical path of ``netlist`` in ``technology``.

    Primary inputs arrive at time 0; each cell adds its propagation delay.
    The report records the slowest primary output and the gate chain that
    produces it.
    """
    netlist.validate()
    arrival: dict[str, float] = {net: 0.0 for net in netlist.inputs}
    predecessor: dict[str, tuple[str, str] | None] = {net: None for net in netlist.inputs}

    for gate in netlist.topological_order():
        delay = cell_delay_ms(gate.cell, technology)
        if gate.inputs:
            slowest_input = max(gate.inputs, key=lambda net: arrival.get(net, 0.0))
            input_time = arrival.get(slowest_input, 0.0)
        else:
            slowest_input = None
            input_time = 0.0
        arrival[gate.output] = input_time + delay
        predecessor[gate.output] = (
            (slowest_input, gate.name) if slowest_input is not None else (None, gate.name)
        )

    sampling_period_ms = 1000.0 / technology.frequency_hz
    if not netlist.outputs:
        return TimingReport(
            name=netlist.name,
            critical_path_delay_ms=0.0,
            critical_path=(),
            logic_depth=0,
            sampling_period_ms=sampling_period_ms,
        )

    worst_output = max(netlist.outputs, key=lambda net: arrival.get(net, 0.0))
    path: list[str] = []
    net: str | None = worst_output
    while net is not None and predecessor.get(net) is not None:
        previous_net, gate_name = predecessor[net]  # type: ignore[misc]
        path.append(gate_name)
        net = previous_net
    path.reverse()

    return TimingReport(
        name=netlist.name,
        critical_path_delay_ms=arrival.get(worst_output, 0.0),
        critical_path=tuple(path),
        logic_depth=len(path),
        sampling_period_ms=sampling_period_ms,
    )
