"""Synthesis primitives: constant comparators, AND/OR trees, SOP mapping.

These functions append gates to an existing :class:`~repro.circuits.netlist.Netlist`
and return the net carrying the synthesized function.  They are the building
blocks used by the baseline bespoke decision trees (binary comparators against
hardwired thresholds, as in [2]) and by the proposed unary architecture (pure
two-level AND-OR label logic, Fig. 2b).

All builders perform constant propagation where it is free, because bespoke
design is precisely about exploiting hardwired model parameters to shrink
logic.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.netlist import Netlist
from repro.circuits.two_level import SumOfProducts
from repro.pdk.cells import and_cell_for, or_cell_for


def _reduce_tree(netlist: Netlist, nets: Sequence[str], kind: str) -> str:
    """Reduce ``nets`` with a balanced tree of AND/OR cells (max fan-in 4)."""
    if not nets:
        raise ValueError("cannot reduce an empty net list")
    level = list(nets)
    cell_for = and_cell_for if kind == "and" else or_cell_for
    while len(level) > 1:
        next_level: list[str] = []
        index = 0
        while index < len(level):
            group = level[index:index + 4]
            index += 4
            if len(group) == 1:
                next_level.append(group[0])
            else:
                next_level.append(netlist.add_gate(cell_for(len(group)), group))
        level = next_level
    return level[0]


def synthesize_and_tree(netlist: Netlist, nets: Sequence[str]) -> str:
    """AND together ``nets`` (returns a constant-1 net when empty)."""
    if not nets:
        return netlist.add_constant(True)
    if len(nets) == 1:
        return nets[0]
    return _reduce_tree(netlist, nets, "and")


def synthesize_or_tree(netlist: Netlist, nets: Sequence[str]) -> str:
    """OR together ``nets`` (returns a constant-0 net when empty)."""
    if not nets:
        return netlist.add_constant(False)
    if len(nets) == 1:
        return nets[0]
    return _reduce_tree(netlist, nets, "or")


def synthesize_constant_comparator(
    netlist: Netlist,
    input_bits: Sequence[str],
    constant: int,
    operation: str = ">=",
) -> str:
    """Synthesize ``input >= constant`` (or a related comparison) in bespoke logic.

    Parameters
    ----------
    netlist:
        Netlist receiving the gates.
    input_bits:
        Input net names ordered **MSB first**.
    constant:
        The hardwired model parameter, interpreted as an unsigned integer of
        ``len(input_bits)`` bits.
    operation:
        One of ``">="``, ``">"``, ``"<"``, ``"<="``.

    Returns
    -------
    str
        Net carrying the comparison result.

    Notes
    -----
    Because the threshold is a hardwired constant, the classic MSB-first
    comparison recurrence collapses into a chain of single AND/OR gates with
    constant propagation (this is the "bespoke" effect exploited by [2]):

    * bit of constant is 0:  ``ge_i = x_i OR ge_{i+1}``
    * bit of constant is 1:  ``ge_i = x_i AND ge_{i+1}``

    with ``ge_n = 1`` (all bits equal means the input is >= the constant).
    """
    n_bits = len(input_bits)
    if n_bits == 0:
        raise ValueError("comparator needs at least one input bit")
    if not 0 <= constant < 2 ** n_bits:
        raise ValueError(
            f"constant {constant} does not fit in {n_bits} unsigned bits"
        )
    if operation not in {">=", ">", "<", "<="}:
        raise ValueError(f"unsupported comparison operation {operation!r}")

    # ">" against C is ">=" against C+1; saturate at the maximum code, where
    # ">" is simply unsatisfiable.
    if operation in {">", "<="}:
        threshold = constant + 1
        if threshold >= 2 ** n_bits:
            always_false = netlist.add_constant(False)
            if operation == ">":
                return always_false
            return netlist.add_constant(True)
    else:
        threshold = constant

    # ``ge`` net computing input >= threshold.
    if threshold == 0:
        ge_net = netlist.add_constant(True)
    else:
        bits = [(threshold >> shift) & 1 for shift in range(n_bits - 1, -1, -1)]
        ge_net: str | None = None  # None encodes the constant-1 tail
        for bit_net, bit_value in zip(reversed(input_bits), reversed(bits)):
            if bit_value == 1:
                if ge_net is None:
                    ge_net = bit_net
                else:
                    ge_net = netlist.add_gate("AND2", [bit_net, ge_net])
            else:
                if ge_net is None:
                    continue  # x OR 1 == 1
                ge_net = netlist.add_gate("OR2", [bit_net, ge_net])
        if ge_net is None:  # threshold had no set bits above; defensive
            ge_net = netlist.add_constant(True)

    if operation in {">=", ">"}:
        return ge_net
    return netlist.add_gate("INV", [ge_net])


def synthesize_sop(
    netlist: Netlist,
    sop: SumOfProducts,
    variable_nets: dict[str, str],
    inverted_nets: dict[str, str] | None = None,
) -> str:
    """Map a :class:`SumOfProducts` onto AND/OR/INV cells.

    Parameters
    ----------
    netlist:
        Netlist receiving the gates.
    sop:
        The two-level function to synthesize.
    variable_nets:
        Mapping from SOP variable name to the net carrying it.
    inverted_nets:
        Optional cache of already-synthesized inverted variables, shared
        across multiple SOP outputs so each input is inverted at most once.

    Returns
    -------
    str
        Net carrying the function value.
    """
    if sop.is_false():
        return netlist.add_constant(False)
    if sop.is_true():
        return netlist.add_constant(True)

    if inverted_nets is None:
        inverted_nets = {}

    term_nets: list[str] = []
    for term in sop.terms:
        literal_nets: list[str] = []
        for literal in sorted(term, key=str):
            source = variable_nets[literal.name]
            if literal.positive:
                literal_nets.append(source)
            else:
                if literal.name not in inverted_nets:
                    inverted_nets[literal.name] = netlist.add_gate("INV", [source])
                literal_nets.append(inverted_nets[literal.name])
        term_nets.append(synthesize_and_tree(netlist, literal_nets))
    return synthesize_or_tree(netlist, term_nets)
