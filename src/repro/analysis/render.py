"""Minimal plain-text table rendering for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value) -> str:
    """Format one cell: floats get a compact fixed-point representation."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) < 1.0:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    table = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in table:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in table:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
