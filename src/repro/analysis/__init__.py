"""Analysis and reporting: regeneration of the paper's tables and figures.

* :mod:`repro.analysis.render` -- plain-text table rendering,
* :mod:`repro.analysis.figures` -- data series behind Figs. 3, 4 and 5,
* :mod:`repro.analysis.tables` -- rows of Tables I and II,
* :mod:`repro.analysis.experiments` -- orchestration helpers that run the
  co-design framework over the whole benchmark suite (used by the
  benchmarks and the CLI).
"""

from repro.analysis.render import render_table
from repro.analysis.figures import fig3_series, fig4_series, fig5_series
from repro.analysis.tables import (
    exploration_rows,
    robustness_surface_rows,
    robustness_surface_summary,
    table1_rows,
    table2_robust_rows,
    table2_rows,
)
from repro.analysis.experiments import (
    RobustExploration,
    RobustnessSurface,
    ShardRunReport,
    SurfaceCell,
    default_store,
    run_benchmark_suite,
    run_plan_shard,
    run_robust_exploration,
    run_robustness_surface,
    run_variation_analysis,
    suite_result_key,
    variation_result_key,
)
from repro.analysis.export import (
    results_to_json,
    robust_exploration_to_json,
    robustness_surface_to_json,
    rows_to_csv,
)
from repro.analysis.stats import MultiSeedSummary, run_multi_seed

__all__ = [
    "render_table",
    "fig3_series",
    "fig4_series",
    "fig5_series",
    "table1_rows",
    "table2_rows",
    "table2_robust_rows",
    "exploration_rows",
    "run_benchmark_suite",
    "run_variation_analysis",
    "run_robust_exploration",
    "run_robustness_surface",
    "robustness_surface_rows",
    "robustness_surface_summary",
    "run_plan_shard",
    "ShardRunReport",
    "RobustExploration",
    "RobustnessSurface",
    "SurfaceCell",
    "default_store",
    "suite_result_key",
    "variation_result_key",
    "rows_to_csv",
    "results_to_json",
    "robust_exploration_to_json",
    "robustness_surface_to_json",
    "run_multi_seed",
    "MultiSeedSummary",
]
