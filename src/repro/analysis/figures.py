"""Data series behind the paper's figures.

Each function returns plain Python records (lists of dicts) so the benchmark
harness can print the same series the paper plots and tests can assert on the
expected shapes (linear area scaling, power position-dependence, reduction
factors, ...).
"""

from __future__ import annotations

from statistics import mean

from repro.adc.bespoke import BespokeADC
from repro.adc.flash import FlashADC
from repro.core.codesign import CoDesignResult
from repro.pdk.egfet import EGFETTechnology, default_technology


def fig3_series(
    technology: EGFETTechnology | None = None,
    resolution_bits: int = 4,
) -> dict:
    """Area/power of bespoke ADCs vs number and position of output unary digits.

    Mirrors Fig. 3: for every output-digit count ``n`` from 1 to ``2**N - 1``,
    every *contiguous* window of retained levels is evaluated (the paper
    plots the windows in sequential order to showcase the power behaviour).
    The conventional ADC of the same resolution is included for reference.
    """
    technology = technology if technology is not None else default_technology()
    n_taps = 2 ** resolution_bits - 1
    points = []
    for n_digits in range(1, n_taps + 1):
        for start in range(1, n_taps - n_digits + 2):
            levels = tuple(range(start, start + n_digits))
            adc = BespokeADC(
                retained_levels=levels,
                resolution_bits=resolution_bits,
                technology=technology,
            )
            points.append(
                {
                    "n_unary_digits": n_digits,
                    "start_level": start,
                    "levels": levels,
                    "area_mm2": adc.area_mm2,
                    "power_uw": adc.power_uw,
                }
            )
    conventional = FlashADC(resolution_bits=resolution_bits, technology=technology)
    return {
        "points": points,
        "conventional_area_mm2": conventional.area_mm2,
        "conventional_power_uw": conventional.power_uw,
    }


def fig4_series(results: list[CoDesignResult]) -> dict:
    """Area/power reduction factors of the bespoke-ADC unary designs vs [2]."""
    rows = []
    for result in results:
        reduction = result.fig4_reduction()
        rows.append(
            {
                "dataset": result.dataset,
                "abbreviation": result.metadata.get("abbreviation", result.dataset),
                "area_reduction_x": reduction.area_factor,
                "power_reduction_x": reduction.power_factor,
            }
        )
    return {
        "rows": rows,
        "average_area_reduction_x": mean(r["area_reduction_x"] for r in rows) if rows else 0.0,
        "average_power_reduction_x": mean(r["power_reduction_x"] for r in rows) if rows else 0.0,
    }


def fig5_series(
    results: list[CoDesignResult],
    accuracy_losses: tuple[float, ...] = (0.0, 0.01, 0.05),
) -> dict:
    """Additional reductions (%) delivered by the ADC-aware training (Fig. 5).

    Reductions are measured against the Fig. 4 designs (unary architecture +
    bespoke ADCs with the ADC-unaware model), per accuracy-loss constraint.
    """
    panels: dict[float, dict] = {}
    for loss in accuracy_losses:
        rows = []
        for result in results:
            reduction = result.fig5_reduction(loss)
            if reduction is None:
                continue
            rows.append(
                {
                    "dataset": result.dataset,
                    "abbreviation": result.metadata.get("abbreviation", result.dataset),
                    "area_reduction_pct": reduction.area_percent,
                    "power_reduction_pct": reduction.power_percent,
                }
            )
        panels[loss] = {
            "rows": rows,
            "average_area_reduction_pct": (
                mean(r["area_reduction_pct"] for r in rows) if rows else 0.0
            ),
            "average_power_reduction_pct": (
                mean(r["power_reduction_pct"] for r in rows) if rows else 0.0
            ),
        }
    return panels
