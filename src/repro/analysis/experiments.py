"""Benchmark-suite orchestration.

:func:`run_benchmark_suite` runs the full co-design flow over (a subset of)
the eight benchmarks.  Results are cached at **per-dataset** granularity on
two levels:

1. an in-process memo, so the several benchmark files regenerating different
   tables/figures from the same underlying experiment share the *same*
   result objects within one interpreter, and
2. a content-addressed on-disk :class:`~repro.core.store.ResultStore`
   (key = dataset name, seed, grid, technology, code version), so separate
   processes -- benchmark scripts, CLI invocations, CI jobs -- reuse each
   other's work instead of repaying the full sweep.

Because the cache key is per dataset and built from canonical names, asking
for the same benchmarks in a different order, as a list instead of a tuple,
or by paper abbreviation all hit the same entries.

Datasets that do need computing are submitted through an
:class:`~repro.core.executor.Executor`: with ``jobs > 1`` the pending
benchmarks fan out across worker processes, and a single pending benchmark
instead parallelizes its depth x tau sweep.  Serial and parallel runs
produce identical results (everything is seeded).

:func:`run_variation_analysis` applies the same recipe to the Monte-Carlo
comparator-offset robustness study: per-seed
:class:`~repro.core.variation.VariationAnalysis` summaries are cached in the
store and trial batches fan out through the executor (``repro.cli
variation``).

:func:`run_robust_exploration` composes both layers into the variation-aware
design-space exploration (``repro.cli explore``): the nominal depth x tau
sweep comes from the suite cache, and every design point is then annotated
with a per-point robustness summary cached under the same variation keys --
so ``variation``, ``explore`` and the offset-aware Table II all share one
pool of Monte-Carlo results.

:func:`run_plan_shard` executes one shard of a deterministic
:class:`~repro.core.sharding.SuitePlan` into the store (``repro.cli suite
--shard K/N``), and ``run_benchmark_suite(cache_only=True)`` is the strict
assemble mode that renders tables from cache hits only, raising
:class:`~repro.core.sharding.MissingResultsError` when a shard never ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.core.codesign import CoDesignFramework, CoDesignResult
from repro.core.executor import Executor, get_executor
from repro.core.exploration import (
    DEFAULT_DEPTHS,
    DEFAULT_TAUS,
    DesignPoint,
    grid_points,
    select_best_design,
)
from repro.core.sharding import (
    MissingResultsError,
    ShardSpec,
    SuitePlan,
    normalize_sigmas,
    suite_result_key,
    suite_work_unit,
    variation_work_unit,
)
from repro.core.store import ResultStore
from repro.core.variation import (
    VariationAnalysis,
    canonical_training_knobs,
    simulate_offset_variation,
    variation_result_key,
)
from repro.datasets.registry import canonical_name, dataset_names, load_dataset

#: Smaller benchmarks used when a quick run is requested.
FAST_DATASETS: tuple[str, ...] = ("balance_scale", "vertebral_3c", "vertebral_2c", "seeds")

#: In-process memo (key -> result).  Guarantees that two suite runs with an
#: equivalent configuration return the *same* result objects in one
#: interpreter, on top of the cross-process on-disk store.  Bounded (LRU) so
#: long-lived processes sweeping many configurations do not accumulate every
#: result ever computed; evicted entries remain on disk.
_MEMO: dict[str, CoDesignResult] = {}

#: Memo capacity: comfortably holds several full 8-dataset configurations
#: (the old suite-level ``lru_cache(maxsize=8)`` held up to 8 x 8 results).
_MEMO_MAX_ENTRIES = 64


def _memoize(key: str, result: CoDesignResult) -> None:
    """Insert into the memo, evicting least-recently-used entries."""
    _MEMO.pop(key, None)
    _MEMO[key] = result
    while len(_MEMO) > _MEMO_MAX_ENTRIES:
        _MEMO.pop(next(iter(_MEMO)))


def _memo_get(key: str) -> CoDesignResult | None:
    """Memo lookup that refreshes the entry's recency."""
    result = _MEMO.pop(key, None)
    if result is not None:
        _MEMO[key] = result
    return result

#: Lazily created store shared by all callers that do not pass their own.
_DEFAULT_STORE: ResultStore | None = None


def default_store() -> ResultStore:
    """The process-wide :class:`ResultStore` used when none is passed in.

    Exposed so callers can inspect cache effectiveness, e.g.
    ``default_store().stats.hits`` after a suite run.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ResultStore()
    return _DEFAULT_STORE


def clear_memo() -> None:
    """Drop the in-process memo (the on-disk store is left untouched)."""
    _MEMO.clear()


def resolve_suite_datasets(
    datasets: tuple[str, ...] | None = None, fast: bool = False
) -> tuple[str, ...]:
    """Resolve a suite request to the benchmark list it will actually run.

    ``None`` selects every registered benchmark (or the four small ones when
    ``fast``); explicit names/abbreviations pass through unchanged.  Single
    source of truth for :func:`run_benchmark_suite` and the CLI, so suite
    commands and their offset-aware variants can never diverge on defaults.
    """
    if datasets is None:
        return FAST_DATASETS if fast else tuple(dataset_names())
    return tuple(datasets)


def _run_one_benchmark(
    name: str,
    seed: int,
    include_approximate_baseline: bool,
    depths: tuple[int, ...],
    taus: tuple[float, ...],
    jobs: int = 1,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
    engine: str = "batch",
    ppa_backend=None,
) -> CoDesignResult:
    """Top-level (picklable) job: run the co-design flow on one benchmark."""
    with get_executor(jobs) as executor:
        framework = CoDesignFramework(
            depths=depths,
            taus=taus,
            seed=seed,
            include_approximate_baseline=include_approximate_baseline,
            executor=executor if executor.jobs > 1 else None,
            training_sigma=training_sigma,
            robustness_weight=robustness_weight,
            engine=engine,
            ppa_backend=ppa_backend,
        )
        dataset = load_dataset(name, seed=seed)
        return framework.run(dataset)


def run_benchmark_suite(
    datasets: tuple[str, ...] | None = None,
    seed: int = 0,
    include_approximate_baseline: bool = True,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    taus: tuple[float, ...] = DEFAULT_TAUS,
    fast: bool = False,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    store: ResultStore | None = None,
    use_cache: bool = True,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
    shard: ShardSpec | None = None,
    cache_only: bool = False,
    engine: str = "batch",
    ppa_backend=None,
) -> list[CoDesignResult]:
    """Run the co-design flow over the benchmark suite (cached per dataset).

    Parameters
    ----------
    datasets:
        Benchmark names to run (defaults to all eight in the paper's order).
        Accepts any iterable of names or paper abbreviations; results come
        back in the requested order.
    seed:
        Seed controlling the dataset synthesis, the split and every trainer.
    include_approximate_baseline:
        Whether to also fit the precision-scaled baseline [7] (needed for
        Table II, not for Table I / Figs. 4-5).
    depths, taus:
        Exploration grid (defaults to the paper's grid).
    fast:
        When True and ``datasets`` is not given, restrict the run to the four
        small benchmarks (useful for smoke tests).
    jobs:
        Worker processes to fan out over (``None``/``1``: serial, ``0``: one
        per CPU).  Multiple pending benchmarks parallelize across datasets; a
        single pending benchmark parallelizes its depth x tau sweep instead.
        Results are identical either way.
    cache_dir:
        Directory of the on-disk result store (default:
        ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``).
    store:
        Explicit :class:`ResultStore` to use (overrides ``cache_dir``);
        handy for inspecting hit/miss statistics.
    use_cache:
        When False, skip the on-disk store entirely (the in-process memo is
        bypassed too) and recompute everything.
    training_sigma:
        Comparator offset sigma in volts assumed by the exploration trainer
        (0: nominal training).  See
        :class:`~repro.core.exploration.DesignSpaceExplorer`.
    robustness_weight:
        Weight of the expected-flip penalty in the trainer's split scores
        (ignored while ``training_sigma`` is 0).
    shard:
        When given, restrict the run to the datasets whose suite work unit
        belongs to this shard (stable hashing via
        :func:`~repro.core.sharding.suite_work_unit`, so membership is
        reproducible across machines and invariant to request order).
        Results come back for the shard's datasets only, in requested
        order; other shards cover the rest.
    cache_only:
        Strict assemble mode: resolve every dataset from the on-disk store
        and *never* compute.  Raises
        :class:`~repro.core.sharding.MissingResultsError` (listing the
        missing datasets and keys) when any entry is absent.  The
        in-process memo is bypassed, so the store genuinely holds
        everything the call returns.
    engine:
        Inference engine scoring the exploration's test sets (``"batch"``
        or ``"bitparallel"``; see :mod:`repro.core.bitkernel`).  Engines are
        bit-identical, so -- like ``jobs`` -- this never participates in
        cache keys and cached results are shared across engines.
    ppa_backend:
        Source of every design's digital area/power (default: the analytic
        cell-count model; anything
        :func:`~repro.circuits.ppa.resolve_ppa_backend` accepts).  Unlike
        ``engine``, a non-analytic backend *changes results*, and its
        numbers are not derivable from the experiment configuration -- so
        such runs bypass the memo and the on-disk store entirely (nothing
        report-based is ever cached under a configuration key), and they
        refuse ``cache_only`` mode.
    """
    from repro.circuits.ppa import resolve_ppa_backend

    if jobs is not None and jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
    backend = resolve_ppa_backend(ppa_backend)
    if not getattr(backend, "is_analytic", False):
        if cache_only:
            raise ValueError(
                "cache_only requires the analytic PPA backend: cached suite "
                "entries hold analytic costs, which a report backend would "
                "contradict"
            )
        # Report-backed costs must never be cached under configuration keys.
        use_cache = False
        store = None
    if cache_only and not use_cache:
        raise ValueError("cache_only requires use_cache=True")
    requested = resolve_suite_datasets(datasets, fast)
    names = [canonical_name(name) for name in requested]
    if shard is not None:
        names = [
            name
            for name in names
            if suite_work_unit(
                name, seed, include_approximate_baseline, depths, taus,
                training_sigma=training_sigma,
                robustness_weight=robustness_weight,
            ).shard_index(shard.count) == shard.index
        ]

    if use_cache and store is None:
        store = ResultStore(cache_dir) if cache_dir is not None else default_store()

    keys = {
        name: suite_result_key(
            name, seed, include_approximate_baseline, depths, taus,
            training_sigma=training_sigma, robustness_weight=robustness_weight,
        )
        for name in dict.fromkeys(names)
    }

    if cache_only:
        cached_results: dict[str, CoDesignResult] = {}
        missing: list[tuple[str, str]] = []
        for name, key in keys.items():
            cached = store.get(key)
            if cached is None:
                missing.append((f"suite:{name}", key))
            else:
                cached_results[name] = cached
        store.flush_stats()
        if missing:
            raise MissingResultsError(missing)
        return [cached_results[name] for name in names]

    resolved: dict[str, CoDesignResult] = {}
    pending: list[str] = []
    for name, key in keys.items():
        memoized = _memo_get(key) if use_cache else None
        if memoized is not None:
            if store is not None and key not in store:
                store.put(key, memoized)  # write-through: keep the disk store complete
            resolved[name] = memoized
            continue
        if use_cache and store is not None:
            cached = store.get(key)
            if cached is not None:
                _memoize(key, cached)
                resolved[name] = cached
                continue
        pending.append(name)

    if pending:
        executor: Executor = get_executor(jobs)
        try:
            if executor.jobs > 1 and len(pending) > 1:
                # Fan out across datasets; each worker runs its sweep serially.
                tasks = [
                    (
                        name, seed, include_approximate_baseline,
                        tuple(depths), tuple(taus), 1,
                        training_sigma, robustness_weight, engine, backend,
                    )
                    for name in pending
                ]
                computed = executor.map(_run_one_benchmark, tasks)
            else:
                # Serial across datasets; parallelize inside the sweep instead.
                computed = [
                    _run_one_benchmark(
                        name,
                        seed,
                        include_approximate_baseline,
                        tuple(depths),
                        tuple(taus),
                        jobs=executor.jobs,
                        training_sigma=training_sigma,
                        robustness_weight=robustness_weight,
                        engine=engine,
                        ppa_backend=backend,
                    )
                    for name in pending
                ]
        finally:
            executor.close()
        for name, result in zip(pending, computed):
            if use_cache:
                if store is not None:
                    store.put(keys[name], result)
                _memoize(keys[name], result)
            resolved[name] = result

    if use_cache and store is not None:
        store.flush_stats()
    return [resolved[name] for name in names]


@lru_cache(maxsize=8)
def _variation_classifier(
    dataset: str,
    seed: int,
    depth: int,
    tau: float,
    resolution_bits: int = 4,
    test_size: float = 0.3,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
):
    """Train-once memo behind the per-sigma variation sweep.

    A sigma sweep caches one :class:`VariationAnalysis` per sigma, but the
    classifier under test depends only on the (dataset, seed, depth, tau,
    training) configuration -- training it once per configuration keeps a
    cold 5-sigma sweep from paying the same fit five times.  Training
    mirrors :func:`_variation_unit_job` /
    :meth:`~repro.core.exploration.DesignSpaceExplorer.evaluate_point`
    exactly (same trainer arguments, same volts-normalized training sigma),
    so the classifier under test is bit-identical to the one a sharded or
    exploration run would have simulated.  Everything is seeded, so the
    memo never changes results.  Callers pass *canonical* training knobs
    (:func:`~repro.core.variation.canonical_training_knobs`), so inert
    spellings alias one memo entry.
    """
    from repro.core.adc_aware_training import ADCAwareTrainer
    from repro.mltrees.evaluation import train_test_split
    from repro.mltrees.quantize import quantize_dataset
    from repro.pdk.egfet import default_technology

    technology = default_technology()
    data = load_dataset(dataset, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        data.X, data.y, test_size=test_size, seed=seed
    )
    trainer = ADCAwareTrainer(
        max_depth=depth,
        gini_threshold=tau,
        resolution_bits=resolution_bits,
        seed=seed,
        training_sigma=training_sigma / technology.vdd,
        robustness_weight=(robustness_weight if training_sigma > 0 else 0.0),
    )
    tree = trainer.fit(
        quantize_dataset(X_train, resolution_bits), y_train, data.n_classes
    )
    return tree, X_test, y_test


def run_variation_analysis(
    dataset: str,
    sigma_v: float,
    n_trials: int = 100,
    seed: int = 0,
    depth: int = 4,
    tau: float = 0.01,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    store: ResultStore | None = None,
    use_cache: bool = True,
    resolution_bits: int = 4,
    test_size: float = 0.3,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
) -> VariationAnalysis:
    """Monte-Carlo comparator-offset robustness of one co-designed benchmark.

    Trains the ADC-aware tree (``depth`` x ``tau``) on the paper's 70/30
    split of ``dataset`` and Monte-Carlo-simulates its test accuracy under
    Gaussian comparator offsets.  Per-seed summaries are cached in the
    content-addressed :class:`~repro.core.store.ResultStore` under the full
    :func:`~repro.core.variation.variation_result_key` -- every knob the key
    supports (``resolution_bits``, ``test_size``, ``training_sigma``,
    ``robustness_weight``) participates, so this entry point addresses the
    exact entries that sharded suite runs, ``explore`` and the search
    warm-start write: nominal requests keep their historical keys, and
    offset-aware requests share cache warmth instead of silently training a
    nominal tree.  Trial batches fan out across ``jobs`` worker processes
    with bit-identical results.
    """
    from repro.pdk.egfet import default_technology

    if use_cache and store is None:
        store = ResultStore(cache_dir) if cache_dir is not None else default_store()
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    key = variation_result_key(
        dataset, seed, sigma_v, n_trials, depth, tau, resolution_bits,
        test_size=test_size,
        training_sigma=training_sigma, robustness_weight=robustness_weight,
    )
    if use_cache and store is not None:
        cached = store.get(key)
        if cached is not None:
            store.flush_stats()
            return cached

    tree, X_test, y_test = _variation_classifier(
        canonical_name(dataset), seed, depth, tau,
        resolution_bits=resolution_bits, test_size=test_size,
        training_sigma=training_sigma, robustness_weight=robustness_weight,
    )
    analysis = simulate_offset_variation(
        tree, X_test, y_test, sigma_v, n_trials=n_trials,
        technology=default_technology(), seed=seed, jobs=jobs,
    )
    if use_cache and store is not None:
        store.put(key, analysis)
        store.flush_stats()
    return analysis


@dataclass(frozen=True)
class RobustExploration:
    """A depth x tau exploration with per-point robustness columns.

    Produced by :func:`run_robust_exploration`: every design point carries
    the nominal accuracy/hardware numbers *and* a comparator-offset
    Monte-Carlo summary at ``sigma_v``, so designs can be selected under the
    joint (accuracy loss, mean accuracy drop) constraint of the offset-aware
    Table II.
    """

    dataset: str
    sigma_v: float
    n_trials: int
    baseline_accuracy: float
    points: tuple[DesignPoint, ...]
    #: Offset sigma (volts) the *trainer* assumed; 0 for nominal training.
    training_sigma: float = 0.0
    #: Weight of the expected-flip penalty the trainer applied.
    robustness_weight: float = 1.0

    def select(
        self,
        max_accuracy_loss: float = 0.01,
        max_accuracy_drop: float | None = None,
        objective: str = "power",
    ) -> DesignPoint | None:
        """Constrained selection over the robustness-annotated grid."""
        return select_best_design(
            list(self.points),
            self.baseline_accuracy,
            max_accuracy_loss,
            objective=objective,
            max_accuracy_drop=max_accuracy_drop,
        )


def run_robust_exploration(
    dataset: str,
    sigma_v: float,
    n_trials: int = 100,
    seed: int = 0,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    taus: tuple[float, ...] = DEFAULT_TAUS,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    store: ResultStore | None = None,
    use_cache: bool = True,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
    cache_only: bool = False,
    engine: str = "batch",
    ppa_backend=None,
) -> RobustExploration:
    """Variation-aware design-space exploration of one benchmark.

    Composes the two cache layers: the depth x tau sweep (and the baseline
    it is measured against) comes from the per-dataset suite cache of
    :func:`run_benchmark_suite`, and the robustness pass then attaches one
    cached :class:`~repro.core.variation.VariationAnalysis` per design point
    (the per-seed variation keys shared with ``repro.cli variation``).  Only
    points absent from the store are Monte-Carlo-simulated, fanned out
    across ``jobs`` worker processes with bit-identical results.

    With ``training_sigma > 0`` the sweep's trees are trained offset-aware
    (split scores penalized by the analytic expected digit-flip fraction at
    that sigma); both cache layers key on the training parameters, so
    nominal and offset-aware explorations never alias.

    ``cache_only`` applies the strict assemble discipline to the nominal
    sweep (it must be a store hit); the robustness pass then also resolves
    from the store when a sharded run precomputed its per-point units.
    """
    name = canonical_name(dataset)
    (result,) = run_benchmark_suite(
        datasets=(name,),
        seed=seed,
        include_approximate_baseline=False,
        depths=depths,
        taus=taus,
        jobs=jobs,
        cache_dir=cache_dir,
        store=store,
        use_cache=use_cache,
        training_sigma=training_sigma,
        robustness_weight=robustness_weight,
        cache_only=cache_only,
        engine=engine,
        ppa_backend=ppa_backend,
    )
    if use_cache and store is None:
        store = ResultStore(cache_dir) if cache_dir is not None else default_store()

    data = load_dataset(name, seed=seed)
    with get_executor(jobs) as executor:
        framework = CoDesignFramework(
            depths=tuple(depths),
            taus=tuple(taus),
            seed=seed,
            executor=executor if executor.jobs > 1 else None,
            training_sigma=training_sigma,
            robustness_weight=robustness_weight,
            ppa_backend=ppa_backend,
        )
        points = framework.run_robustness(
            data,
            result.exploration,
            sigma_v=sigma_v,
            n_trials=n_trials,
            store=store if use_cache else None,
        )
    if use_cache and store is not None:
        store.flush_stats()
    return RobustExploration(
        dataset=result.dataset,
        sigma_v=float(sigma_v),
        n_trials=int(n_trials),
        baseline_accuracy=result.baseline.accuracy,
        points=tuple(points),
        training_sigma=float(training_sigma),
        robustness_weight=float(robustness_weight),
    )


# ---------------------------------------------------------------------- #
# multi-sigma robustness surface (repro.cli surface)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SurfaceCell:
    """One (sigma, depth, tau) point of a robustness surface.

    The Monte-Carlo summary numbers of the
    :class:`~repro.core.variation.VariationAnalysis` cached under the
    point's variation key, flattened to primitives so a surface record
    serializes without pickling trees.
    """

    sigma_v: float
    depth: int
    tau: float
    nominal_accuracy: float
    mean_accuracy: float
    std_accuracy: float
    min_accuracy: float
    mean_accuracy_drop: float
    worst_case_drop: float


@dataclass(frozen=True)
class RobustnessSurface:
    """The full (sigma x depth x tau) robustness surface of one benchmark.

    Produced by :func:`run_robustness_surface`.  ``cells`` is ordered
    sigma-ascending outer, the grid in the depth-major order of
    :func:`~repro.core.exploration.grid_points` inner -- the exact order a
    multi-sigma :func:`~repro.core.sharding.plan_suite_units` plan
    enumerates the benchmark's variation units in.
    """

    dataset: str
    seed: int
    n_trials: int
    sigmas: tuple[float, ...]
    depths: tuple[int, ...]
    taus: tuple[float, ...]
    training_sigma: float
    robustness_weight: float
    baseline_accuracy: float
    cells: tuple[SurfaceCell, ...]

    def cell(self, sigma_v: float, depth: int, tau: float) -> SurfaceCell:
        """The cell at one (sigma, depth, tau) coordinate (KeyError if absent)."""
        for cell in self.cells:
            if (
                cell.sigma_v == float(sigma_v)
                and cell.depth == int(depth)
                and cell.tau == float(tau)
            ):
                return cell
        raise KeyError(f"no surface cell at sigma={sigma_v:g}, d={depth}, tau={tau:g}")

    def to_json_dict(self) -> dict:
        """JSON-serializable record (stable schema, consumed by renderers)."""
        return {
            "schema_version": 1,
            "kind": "robustness_surface",
            "dataset": self.dataset,
            "seed": self.seed,
            "n_trials": self.n_trials,
            "sigmas": list(self.sigmas),
            "depths": list(self.depths),
            "taus": list(self.taus),
            "training_sigma": self.training_sigma,
            "robustness_weight": self.robustness_weight,
            "baseline_accuracy": self.baseline_accuracy,
            "cells": [
                {
                    "sigma_v": cell.sigma_v,
                    "depth": cell.depth,
                    "tau": cell.tau,
                    "nominal_accuracy": cell.nominal_accuracy,
                    "mean_accuracy": cell.mean_accuracy,
                    "std_accuracy": cell.std_accuracy,
                    "min_accuracy": cell.min_accuracy,
                    "mean_accuracy_drop": cell.mean_accuracy_drop,
                    "worst_case_drop": cell.worst_case_drop,
                }
                for cell in self.cells
            ],
        }


def run_robustness_surface(
    dataset: str,
    sigmas,
    n_trials: int = 100,
    seed: int = 0,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    taus: tuple[float, ...] = DEFAULT_TAUS,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    store: ResultStore | None = None,
    use_cache: bool = True,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
    cache_only: bool = False,
    engine: str = "batch",
    ppa_backend=None,
) -> RobustnessSurface:
    """Map the (sigma x depth x tau) robustness surface of one benchmark.

    The sweep-level composition of the per-point variation cache: for every
    sigma in ``sigmas`` (canonicalized by
    :func:`~repro.core.sharding.normalize_sigmas`) and every grid point, one
    :class:`~repro.core.variation.VariationAnalysis` is resolved under the
    exact key a multi-sigma suite plan computes
    (:func:`~repro.core.sharding.variation_work_unit`), and the nominal
    baseline comes from the per-dataset suite cache.  Points absent from the
    store fan out through the executor as self-contained
    :func:`_variation_unit_job` tasks -- unless ``cache_only`` is set, the
    strict assemble discipline: *never* compute, raise
    :class:`~repro.core.sharding.MissingResultsError` listing every missing
    unit label and key.  On a store assembled from a multi-sigma sharded run
    the whole surface therefore renders from cache hits only, and the
    per-sigma entries it resolves are the same ones a
    ``mean_accuracy_drop`` search study probes for its warm start.
    """
    if cache_only and not use_cache:
        raise ValueError("cache_only requires use_cache=True")
    name = canonical_name(dataset)
    sigma_values = normalize_sigmas(sigmas)
    if not sigma_values:
        raise ValueError("at least one sigma is required")
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    (result,) = run_benchmark_suite(
        datasets=(name,),
        seed=seed,
        include_approximate_baseline=False,
        depths=depths,
        taus=taus,
        jobs=jobs,
        cache_dir=cache_dir,
        store=store,
        use_cache=use_cache,
        training_sigma=training_sigma,
        robustness_weight=robustness_weight,
        cache_only=cache_only,
        engine=engine,
        # The surface itself is accuracy-only (variation summaries), so the
        # backend only influences the baseline suite entry resolved here.
        ppa_backend=ppa_backend,
    )
    if use_cache and store is None:
        store = ResultStore(cache_dir) if cache_dir is not None else default_store()

    units = [
        variation_work_unit(
            name, seed, sigma, n_trials, depth, tau,
            training_sigma=training_sigma, robustness_weight=robustness_weight,
        )
        for sigma in sigma_values
        for depth, tau in grid_points(depths, taus)
    ]
    analyses: dict[str, VariationAnalysis] = {}
    pending = []
    for unit in units:
        cached = store.get(unit.store_key) if use_cache and store is not None else None
        if cached is not None:
            analyses[unit.store_key] = cached
        else:
            pending.append(unit)
    if pending and cache_only:
        store.flush_stats()
        raise MissingResultsError(
            [(unit.label, unit.store_key) for unit in pending]
        )
    if pending:
        tasks = [
            (
                unit.dataset,
                seed,
                unit.params["sigma_v"],
                unit.params["n_trials"],
                unit.params["depth"],
                unit.params["tau"],
                unit.params["resolution_bits"],
                unit.params["test_size"],
                unit.params["training_sigma"],
                unit.params["robustness_weight"],
            )
            for unit in pending
        ]
        with get_executor(jobs) as executor:
            computed = executor.map(_variation_unit_job, tasks)
        for unit, analysis in zip(pending, computed):
            if use_cache and store is not None:
                store.put(unit.store_key, analysis)
            analyses[unit.store_key] = analysis
    if use_cache and store is not None:
        store.flush_stats()

    cells = []
    for unit in units:
        analysis = analyses[unit.store_key]
        cells.append(
            SurfaceCell(
                sigma_v=unit.params["sigma_v"],
                depth=unit.params["depth"],
                tau=unit.params["tau"],
                nominal_accuracy=analysis.nominal_accuracy,
                mean_accuracy=analysis.mean_accuracy,
                std_accuracy=analysis.std_accuracy,
                min_accuracy=analysis.min_accuracy,
                mean_accuracy_drop=analysis.mean_accuracy_drop,
                worst_case_drop=analysis.worst_case_drop,
            )
        )
    return RobustnessSurface(
        dataset=result.dataset,
        seed=int(seed),
        n_trials=int(n_trials),
        sigmas=sigma_values,
        depths=tuple(depths),
        taus=tuple(taus),
        training_sigma=float(training_sigma),
        robustness_weight=float(robustness_weight),
        baseline_accuracy=result.baseline.accuracy,
        cells=tuple(cells),
    )


# ---------------------------------------------------------------------- #
# budgeted design-space search (repro.cli search)
# ---------------------------------------------------------------------- #
def run_search_study(
    dataset: str,
    budget: int,
    objectives=("-accuracy", "power"),
    seed: int = 0,
    space: str | object = "paper",
    sigma_v: float | None = None,
    variation_trials: int = 100,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    store: ResultStore | None = None,
    use_cache: bool = True,
    batch_size: int = 4,
    cache_only: bool = False,
    ppa_backend=None,
):
    """Run one budgeted multi-objective study (see :mod:`repro.search`).

    The orchestration-level entry point behind ``repro.cli search``:
    resolves the named space (``"paper"`` or ``"wide"``, or a pre-built
    :class:`~repro.search.space.SearchSpace`), wires the study into the
    same store/cache plumbing as the suite runners -- trials on the paper
    grid warm-start from cached suite sweeps, robustness objectives share
    the ``variation`` Monte-Carlo pool -- and returns the
    :class:`~repro.search.study.StudyResult`.  Seeded studies are
    bit-reproducible and independent of ``jobs``.  ``cache_only`` applies
    the strict assemble discipline: a trial that would have to train
    raises :class:`~repro.core.sharding.MissingResultsError` instead.
    """
    # Deferred: keeps repro.search out of module import time (layering:
    # analysis orchestrates, search stays importable on its own).
    from repro.search import Study, get_space

    if isinstance(space, str):
        space = get_space(space)
    if use_cache and store is None:
        store = ResultStore(cache_dir) if cache_dir is not None else default_store()
    study = Study(
        dataset,
        space=space,
        objectives=objectives,
        seed=seed,
        sigma_v=sigma_v,
        variation_trials=variation_trials,
        store=store,
        use_cache=use_cache,
        batch_size=batch_size,
        cache_only=cache_only,
        ppa_backend=ppa_backend,
    )
    return study.run(budget=budget, jobs=jobs)


# ---------------------------------------------------------------------- #
# sharded execution (repro.cli suite / assemble)
# ---------------------------------------------------------------------- #
def _variation_unit_job(
    dataset: str,
    seed: int,
    sigma_v: float,
    n_trials: int,
    depth: int,
    tau: float,
    resolution_bits: int,
    test_size: float,
    training_sigma: float,
    robustness_weight: float,
) -> VariationAnalysis:
    """Top-level (picklable) job: compute one variation work unit from scratch.

    Self-contained on purpose: the (depth, tau) tree is retrained here
    instead of being looked up from a suite result, so a variation unit can
    run on a shard that does *not* own the dataset's suite unit.  Training
    is deterministic and mirrors
    :meth:`~repro.core.exploration.DesignSpaceExplorer.evaluate_point`
    exactly (same trainer arguments, same volts-normalized training sigma,
    same seeded simulation), so the cached
    :class:`~repro.core.variation.VariationAnalysis` is bit-identical to
    what the unsharded robustness pass would have stored under the same
    key.
    """
    from repro.core.adc_aware_training import ADCAwareTrainer
    from repro.mltrees.evaluation import train_test_split
    from repro.mltrees.quantize import quantize_dataset
    from repro.pdk.egfet import default_technology

    technology = default_technology()
    data = load_dataset(dataset, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        data.X, data.y, test_size=test_size, seed=seed
    )
    trainer = ADCAwareTrainer(
        max_depth=depth,
        gini_threshold=tau,
        resolution_bits=resolution_bits,
        seed=seed,
        training_sigma=training_sigma / technology.vdd,
        robustness_weight=(robustness_weight if training_sigma > 0 else 0.0),
    )
    tree = trainer.fit(
        quantize_dataset(X_train, resolution_bits), y_train, data.n_classes
    )
    return simulate_offset_variation(
        tree, X_test, y_test, sigma_v, n_trials=n_trials,
        technology=technology, seed=seed,
    )


@dataclass(frozen=True)
class ShardRunReport:
    """What one shard run did: unit counts, reuse, and where results went."""

    shard: ShardSpec | None
    n_units: int
    n_suite_units: int
    n_variation_units: int
    reused: int

    @property
    def computed(self) -> int:
        """Units this run actually paid for (the rest were store hits)."""
        return self.n_units - self.reused


def run_plan_shard(
    plan: SuitePlan,
    shard: ShardSpec | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    store: ResultStore | None = None,
) -> ShardRunReport:
    """Compute one shard's work units of ``plan`` into the result store.

    Suite units are grouped per ``include_approximate_baseline`` variant and
    delegated to :func:`run_benchmark_suite` (which fans pending datasets
    out across ``jobs`` workers and write-throughs the store); variation
    units missing from the store fan out through the executor as
    self-contained :func:`_variation_unit_job` tasks.  Everything lands
    under the exact keys the unsharded entry points use, so an assemble
    step -- or any later ``table1``/``table2``/``explore`` invocation --
    resolves the shard's work as plain cache hits.
    """
    if store is None:
        store = ResultStore(cache_dir) if cache_dir is not None else default_store()
    units = plan.shard(shard)
    suite_units = [unit for unit in units if unit.kind == "suite"]
    variation_units = [unit for unit in units if unit.kind == "variation"]
    reused = sum(1 for unit in units if unit.store_key in store)

    for variant in plan.include_approximate_variants:
        group = [
            unit
            for unit in suite_units
            if unit.params["include_approximate_baseline"] == variant
        ]
        if group:
            run_benchmark_suite(
                datasets=tuple(unit.dataset for unit in group),
                seed=plan.seed,
                include_approximate_baseline=variant,
                depths=plan.depths,
                taus=plan.taus,
                jobs=jobs,
                store=store,
                training_sigma=plan.training_sigma,
                robustness_weight=plan.robustness_weight,
            )

    pending = [unit for unit in variation_units if unit.store_key not in store]
    if pending:
        tasks = [
            (
                unit.dataset,
                plan.seed,
                unit.params["sigma_v"],
                unit.params["n_trials"],
                unit.params["depth"],
                unit.params["tau"],
                unit.params["resolution_bits"],
                unit.params["test_size"],
                unit.params["training_sigma"],
                unit.params["robustness_weight"],
            )
            for unit in pending
        ]
        with get_executor(jobs) as executor:
            analyses = executor.map(_variation_unit_job, tasks)
        for unit, analysis in zip(pending, analyses):
            store.put(unit.store_key, analysis)
    store.flush_stats()

    return ShardRunReport(
        shard=shard,
        n_units=len(units),
        n_suite_units=len(suite_units),
        n_variation_units=len(variation_units),
        reused=reused,
    )
