"""Benchmark-suite orchestration.

:func:`run_benchmark_suite` runs the full co-design flow over (a subset of)
the eight benchmarks and caches the results per configuration, so that the
several benchmark files regenerating different tables/figures from the same
underlying experiment do not recompute it.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.codesign import CoDesignFramework, CoDesignResult
from repro.core.exploration import DEFAULT_DEPTHS, DEFAULT_TAUS
from repro.datasets.registry import dataset_names, load_dataset

#: Smaller benchmarks used when a quick run is requested.
FAST_DATASETS: tuple[str, ...] = ("balance_scale", "vertebral_3c", "vertebral_2c", "seeds")


@lru_cache(maxsize=8)
def _run_suite_cached(
    datasets: tuple[str, ...],
    seed: int,
    include_approximate_baseline: bool,
    depths: tuple[int, ...],
    taus: tuple[float, ...],
) -> tuple[CoDesignResult, ...]:
    framework = CoDesignFramework(
        depths=depths,
        taus=taus,
        seed=seed,
        include_approximate_baseline=include_approximate_baseline,
    )
    results = []
    for name in datasets:
        dataset = load_dataset(name, seed=seed)
        results.append(framework.run(dataset))
    return tuple(results)


def run_benchmark_suite(
    datasets: tuple[str, ...] | None = None,
    seed: int = 0,
    include_approximate_baseline: bool = True,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    taus: tuple[float, ...] = DEFAULT_TAUS,
    fast: bool = False,
) -> list[CoDesignResult]:
    """Run the co-design flow over the benchmark suite (cached per configuration).

    Parameters
    ----------
    datasets:
        Benchmark names to run (defaults to all eight in the paper's order).
    seed:
        Seed controlling the dataset synthesis, the split and every trainer.
    include_approximate_baseline:
        Whether to also fit the precision-scaled baseline [7] (needed for
        Table II, not for Table I / Figs. 4-5).
    depths, taus:
        Exploration grid (defaults to the paper's grid).
    fast:
        When True and ``datasets`` is not given, restrict the run to the four
        small benchmarks (useful for smoke tests).
    """
    if datasets is None:
        datasets = FAST_DATASETS if fast else tuple(dataset_names())
    results = _run_suite_cached(
        tuple(datasets),
        seed,
        include_approximate_baseline,
        tuple(depths),
        tuple(taus),
    )
    return list(results)
