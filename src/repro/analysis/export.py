"""Export of experiment results to CSV and JSON.

The benchmark harness renders human-readable tables; this module provides the
machine-readable counterparts so results can be post-processed (plotted,
diffed across technology corners, tracked in CI).
"""

from __future__ import annotations

import csv
import json
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.core.codesign import CoDesignResult
from repro.core.metrics import ClassifierDesign, HardwareReport


def rows_to_csv(rows: Sequence[Mapping], path: str | Path) -> Path:
    """Write a list of homogeneous dict rows (e.g. table1_rows output) to CSV."""
    if not rows:
        raise ValueError("cannot export an empty row list")
    path = Path(path)
    fieldnames = list(rows[0].keys())
    for index, row in enumerate(rows):
        if list(row.keys()) != fieldnames:
            raise ValueError(f"row {index} has different columns than row 0")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def hardware_to_dict(report: HardwareReport) -> dict:
    """JSON-friendly representation of a hardware report."""
    return {
        "name": report.name,
        "adc_area_mm2": report.adc_area_mm2,
        "adc_power_uw": report.adc_power_uw,
        "digital_area_mm2": report.digital_area_mm2,
        "digital_power_uw": report.digital_power_uw,
        "total_area_mm2": report.total_area_mm2,
        "total_power_mw": report.total_power_mw,
        "n_inputs": report.n_inputs,
        "n_tree_comparators": report.n_tree_comparators,
        "n_adc_comparators": report.n_adc_comparators,
    }


def design_to_dict(design: ClassifierDesign) -> dict:
    """JSON-friendly representation of a classifier design."""
    return {
        "name": design.name,
        "dataset": design.dataset,
        "accuracy": design.accuracy,
        "depth": design.depth,
        "tau": design.tau,
        "hardware": hardware_to_dict(design.hardware),
    }


def result_to_dict(result: CoDesignResult, include_exploration: bool = False) -> dict:
    """JSON-friendly representation of a full co-design result."""
    payload = {
        "dataset": result.dataset,
        "abbreviation": result.metadata.get("abbreviation"),
        "baseline": design_to_dict(result.baseline),
        "unary_bespoke_adc": design_to_dict(result.unary_bespoke_adc),
        "selected": {
            f"{loss:g}": design_to_dict(design)
            for loss, design in sorted(result.selected.items())
        },
        "approximate_baseline": (
            design_to_dict(result.approximate_baseline)
            if result.approximate_baseline is not None
            else None
        ),
    }
    if include_exploration:
        payload["exploration"] = [design_point_to_dict(point) for point in result.exploration]
    return payload


def design_point_to_dict(point) -> dict:
    """JSON-friendly representation of one design point.

    The robustness columns are ``None`` for points that have not been
    through the variation-aware Monte-Carlo pass.
    """
    return {
        "depth": point.depth,
        "tau": point.tau,
        "accuracy": point.accuracy,
        "total_area_mm2": point.hardware.total_area_mm2,
        "total_power_mw": point.hardware.total_power_mw,
        "mean_accuracy_drop": point.mean_accuracy_drop,
        "worst_case_drop": point.worst_case_drop,
    }


def robust_exploration_to_dict(exploration, max_accuracy_loss: float = 0.01,
                               max_accuracy_drop: float | None = None,
                               objective: str = "power") -> dict:
    """JSON-friendly representation of a variation-aware exploration.

    Includes the full robustness-annotated grid and, when a selection under
    the given constraints exists, the chosen design point.
    """
    selected = exploration.select(
        max_accuracy_loss=max_accuracy_loss,
        max_accuracy_drop=max_accuracy_drop,
        objective=objective,
    )
    return {
        "dataset": exploration.dataset,
        "sigma_v": exploration.sigma_v,
        "n_trials": exploration.n_trials,
        "training_sigma": exploration.training_sigma,
        "robustness_weight": exploration.robustness_weight,
        "baseline_accuracy": exploration.baseline_accuracy,
        "constraints": {
            "max_accuracy_loss": max_accuracy_loss,
            "max_accuracy_drop": max_accuracy_drop,
            "objective": objective,
        },
        "selected": None if selected is None else design_point_to_dict(selected),
        "points": [design_point_to_dict(point) for point in exploration.points],
    }


def robust_exploration_to_json(exploration, path: str | Path,
                               max_accuracy_loss: float = 0.01,
                               max_accuracy_drop: float | None = None,
                               objective: str = "power") -> Path:
    """Write a variation-aware exploration to a JSON file."""
    path = Path(path)
    payload = robust_exploration_to_dict(
        exploration, max_accuracy_loss=max_accuracy_loss,
        max_accuracy_drop=max_accuracy_drop, objective=objective,
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def robustness_surface_to_json(surfaces, path: str | Path) -> Path:
    """Write robustness surface(s) to one JSON report file.

    ``surfaces`` is one
    :class:`~repro.analysis.experiments.RobustnessSurface` or a sequence of
    them.  The report wraps each surface's ``to_json_dict()`` record with
    its per-sigma summary (see
    :func:`~repro.analysis.tables.robustness_surface_summary`), keyed and
    sorted deterministically so CI artifacts diff cleanly.
    """
    from repro.analysis.tables import robustness_surface_summary

    if not isinstance(surfaces, Sequence):
        surfaces = [surfaces]
    surfaces = list(surfaces)
    if not surfaces:
        raise ValueError("cannot export an empty surface list")
    path = Path(path)
    payload = {
        "schema_version": 1,
        "kind": "robustness_surface_report",
        "surfaces": [
            {
                **surface.to_json_dict(),
                "summary": robustness_surface_summary(surface),
            }
            for surface in surfaces
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def results_to_json(
    results: Sequence[CoDesignResult],
    path: str | Path,
    include_exploration: bool = False,
) -> Path:
    """Write a list of co-design results to a JSON file."""
    path = Path(path)
    payload = [result_to_dict(result, include_exploration) for result in results]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
