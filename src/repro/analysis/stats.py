"""Multi-seed statistical evaluation of the co-design flow.

The paper reports single-split numbers; for a library release it is useful to
know how stable the gains are across dataset-synthesis/split/training seeds.
:func:`run_multi_seed` repeats the co-design flow for several seeds and
aggregates the headline metrics (baseline power, co-design power, reduction
factors, self-power verdicts) into means and standard deviations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codesign import CoDesignFramework
from repro.core.exploration import DEFAULT_DEPTHS, DEFAULT_TAUS
from repro.datasets.registry import load_dataset


@dataclass(frozen=True)
class MetricStatistics:
    """Mean/std/min/max summary of one scalar metric across seeds."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    values: tuple[float, ...]

    @classmethod
    def from_values(cls, name: str, values: list[float]) -> "MetricStatistics":
        array = np.asarray(values, dtype=float)
        return cls(
            name=name,
            mean=float(array.mean()),
            std=float(array.std()),
            minimum=float(array.min()),
            maximum=float(array.max()),
            values=tuple(float(v) for v in values),
        )


@dataclass(frozen=True)
class MultiSeedSummary:
    """Aggregated co-design metrics for one benchmark across seeds."""

    dataset: str
    seeds: tuple[int, ...]
    accuracy_loss: float
    baseline_accuracy: MetricStatistics
    codesign_accuracy: MetricStatistics
    baseline_power_mw: MetricStatistics
    codesign_power_mw: MetricStatistics
    area_reduction_x: MetricStatistics
    power_reduction_x: MetricStatistics
    self_powered_fraction: float


def run_multi_seed(
    dataset_name: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    accuracy_loss: float = 0.01,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    taus: tuple[float, ...] = DEFAULT_TAUS,
    technology=None,
) -> MultiSeedSummary:
    """Run the co-design flow for several seeds and aggregate the key metrics.

    Every seed controls the synthetic dataset draw, the 70/30 split and the
    trainers, so the spread reflects the full pipeline variability.
    """
    if not seeds:
        raise ValueError("at least one seed is required")

    baseline_accuracy: list[float] = []
    codesign_accuracy: list[float] = []
    baseline_power: list[float] = []
    codesign_power: list[float] = []
    area_reduction: list[float] = []
    power_reduction: list[float] = []
    self_powered: list[bool] = []

    for seed in seeds:
        framework = CoDesignFramework(
            technology=technology,
            depths=depths,
            taus=taus,
            accuracy_losses=(accuracy_loss,),
            seed=seed,
            include_approximate_baseline=False,
        )
        result = framework.run(load_dataset(dataset_name, seed=seed))
        chosen = result.selected.get(accuracy_loss)
        if chosen is None:
            # No feasible point for this seed: fall back to the unary design
            # so the aggregate still reflects a buildable classifier.
            chosen = result.unary_bespoke_adc
        reduction = result.table2_reduction(accuracy_loss)
        if reduction is None:
            reduction = result.fig4_reduction()
        analysis = result.self_power(accuracy_loss)

        baseline_accuracy.append(result.baseline.accuracy)
        codesign_accuracy.append(chosen.accuracy)
        baseline_power.append(result.baseline.hardware.total_power_mw)
        codesign_power.append(chosen.hardware.total_power_mw)
        area_reduction.append(reduction.area_factor)
        power_reduction.append(reduction.power_factor)
        self_powered.append(bool(analysis.is_self_powered) if analysis else False)

    return MultiSeedSummary(
        dataset=dataset_name,
        seeds=tuple(seeds),
        accuracy_loss=accuracy_loss,
        baseline_accuracy=MetricStatistics.from_values("baseline_accuracy", baseline_accuracy),
        codesign_accuracy=MetricStatistics.from_values("codesign_accuracy", codesign_accuracy),
        baseline_power_mw=MetricStatistics.from_values("baseline_power_mw", baseline_power),
        codesign_power_mw=MetricStatistics.from_values("codesign_power_mw", codesign_power),
        area_reduction_x=MetricStatistics.from_values("area_reduction_x", area_reduction),
        power_reduction_x=MetricStatistics.from_values("power_reduction_x", power_reduction),
        self_powered_fraction=float(np.mean(self_powered)),
    )
