"""Rows of the paper's Tables I and II (and their offset-aware variants)."""

from __future__ import annotations

from collections.abc import Sequence
from statistics import mean

from repro.core.codesign import CoDesignResult
from repro.core.exploration import DesignPoint
from repro.core.power_budget import analyze_self_power


def table1_rows(results: list[CoDesignResult]) -> list[dict]:
    """Evaluation of the baseline bespoke decision trees (Table I).

    One row per benchmark: accuracy, number of tree comparators, number of
    used inputs, ADC/total area and ADC/total power of the baseline [2].
    """
    rows = []
    for result in results:
        hardware = result.baseline.hardware
        rows.append(
            {
                "dataset": result.dataset,
                "accuracy_pct": result.baseline.accuracy * 100.0,
                "n_comparators": hardware.n_tree_comparators,
                "n_inputs": hardware.n_inputs,
                "adc_area_mm2": hardware.adc_area_mm2,
                "total_area_mm2": hardware.total_area_mm2,
                "adc_power_mw": hardware.adc_power_mw,
                "total_power_mw": hardware.total_power_mw,
                "adc_area_fraction": hardware.adc_area_fraction,
                "adc_power_fraction": hardware.adc_power_fraction,
                "self_powered": hardware.total_power_mw <= 2.0,
            }
        )
    return rows


def table1_summary(rows: list[dict]) -> dict:
    """Averages quoted in the Table I discussion."""
    if not rows:
        return {
            "average_total_area_mm2": 0.0,
            "average_total_power_mw": 0.0,
            "average_adc_area_fraction": 0.0,
            "average_adc_power_fraction": 0.0,
        }
    return {
        "average_total_area_mm2": mean(r["total_area_mm2"] for r in rows),
        "average_total_power_mw": mean(r["total_power_mw"] for r in rows),
        "average_adc_area_fraction": mean(r["adc_area_fraction"] for r in rows),
        "average_adc_power_fraction": mean(r["adc_power_fraction"] for r in rows),
    }


def table2_rows(results: list[CoDesignResult], accuracy_loss: float = 0.01) -> list[dict]:
    """Evaluation of the co-designed decision trees for <= 1 % accuracy loss (Table II)."""
    rows = []
    for result in results:
        chosen = result.selected.get(accuracy_loss)
        if chosen is None:
            continue
        vs_baseline = result.table2_reduction(accuracy_loss)
        vs_approx = result.table2_reduction_vs_approximate(accuracy_loss)
        technology = result.metadata.get("technology")
        self_power = analyze_self_power(chosen.hardware, technology)
        rows.append(
            {
                "dataset": result.dataset,
                "accuracy_pct": chosen.accuracy * 100.0,
                "depth": chosen.depth,
                "tau": chosen.tau,
                "area_mm2": chosen.hardware.total_area_mm2,
                "power_mw": chosen.hardware.total_power_mw,
                "area_reduction_vs_baseline_x": vs_baseline.area_factor if vs_baseline else float("nan"),
                "power_reduction_vs_baseline_x": vs_baseline.power_factor if vs_baseline else float("nan"),
                "area_reduction_vs_approx_x": vs_approx.area_factor if vs_approx else float("nan"),
                "power_reduction_vs_approx_x": vs_approx.power_factor if vs_approx else float("nan"),
                "self_powered": self_power.is_self_powered,
            }
        )
    return rows


def exploration_rows(points: Sequence[DesignPoint]) -> list[dict]:
    """One row per design point of a (robustness-annotated) exploration.

    The ``mean_accuracy_drop_pct`` / ``worst_case_drop_pct`` columns are
    ``None`` for points that have not been through the variation-aware pass.
    """
    rows = []
    for point in points:
        rows.append(
            {
                "dataset": point.dataset,
                "depth": point.depth,
                "tau": point.tau,
                "accuracy_pct": point.accuracy * 100.0,
                "area_mm2": point.hardware.total_area_mm2,
                "power_mw": point.hardware.total_power_mw,
                "mean_accuracy_drop_pct": (
                    None
                    if point.mean_accuracy_drop is None
                    else point.mean_accuracy_drop * 100.0
                ),
                "worst_case_drop_pct": (
                    None
                    if point.worst_case_drop is None
                    else point.worst_case_drop * 100.0
                ),
            }
        )
    return rows


def table2_robust_rows(
    explorations: Sequence,
    accuracy_loss: float = 0.01,
    max_accuracy_drop: float | None = 0.01,
) -> list[dict]:
    """Offset-aware Table II: co-design selection under a robustness budget.

    One row per benchmark from a
    :class:`~repro.analysis.experiments.RobustExploration`: the most
    power-efficient design meeting *both* the nominal accuracy-loss
    constraint and the ``max_accuracy_drop`` mean-robustness constraint,
    with its Monte-Carlo drop columns.  Benchmarks where no design satisfies
    the joint constraint report a ``feasible = False`` row (the selection
    columns are ``None``) instead of silently disappearing.
    """
    rows = []
    for exploration in explorations:
        point = exploration.select(
            max_accuracy_loss=accuracy_loss, max_accuracy_drop=max_accuracy_drop
        )
        row = {
            "dataset": exploration.dataset,
            "sigma_mv": exploration.sigma_v * 1000.0,
            "n_trials": exploration.n_trials,
            "feasible": point is not None,
            "depth": None,
            "tau": None,
            "accuracy_pct": None,
            "mean_accuracy_drop_pct": None,
            "worst_case_drop_pct": None,
            "area_mm2": None,
            "power_mw": None,
        }
        if point is not None:
            row.update(
                {
                    "depth": point.depth,
                    "tau": point.tau,
                    "accuracy_pct": point.accuracy * 100.0,
                    "mean_accuracy_drop_pct": point.mean_accuracy_drop * 100.0,
                    "worst_case_drop_pct": point.worst_case_drop * 100.0,
                    "area_mm2": point.hardware.total_area_mm2,
                    "power_mw": point.hardware.total_power_mw,
                }
            )
        rows.append(row)
    return rows


def table2_robust_summary(rows: list[dict]) -> dict:
    """Averages over the feasible rows of the offset-aware Table II.

    With zero feasible rows the averages are ``None`` -- "no feasible
    design" is not the same claim as "the feasible designs average zero
    power", and renderers spell the difference out as ``n/a``.
    """
    feasible = [row for row in rows if row["feasible"]]
    if not feasible:
        return {
            "n_feasible": 0,
            "average_power_mw": None,
            "average_area_mm2": None,
            "average_mean_accuracy_drop_pct": None,
        }
    return {
        "n_feasible": len(feasible),
        "average_power_mw": mean(r["power_mw"] for r in feasible),
        "average_area_mm2": mean(r["area_mm2"] for r in feasible),
        "average_mean_accuracy_drop_pct": mean(
            r["mean_accuracy_drop_pct"] for r in feasible
        ),
    }


def robustness_surface_rows(surface) -> list[dict]:
    """One row per (depth, tau) grid point of a robustness surface.

    Produced from a
    :class:`~repro.analysis.experiments.RobustnessSurface`: the nominal
    (zero-offset) accuracy of the point's tree plus one mean-accuracy-drop
    column per sigma, in the surface's ascending sigma order.
    """
    rows = []
    for depth in surface.depths:
        for tau in surface.taus:
            cells = [surface.cell(sigma, depth, tau) for sigma in surface.sigmas]
            rows.append(
                {
                    "depth": depth,
                    "tau": tau,
                    "nominal_accuracy_pct": cells[0].nominal_accuracy * 100.0,
                    "mean_drop_pct_by_sigma": tuple(
                        cell.mean_accuracy_drop * 100.0 for cell in cells
                    ),
                    "worst_drop_pct_by_sigma": tuple(
                        cell.worst_case_drop * 100.0 for cell in cells
                    ),
                }
            )
    return rows


def robustness_surface_summary(surface) -> dict:
    """Per-sigma aggregates over the full grid of a robustness surface."""
    per_sigma = []
    for sigma in surface.sigmas:
        cells = [cell for cell in surface.cells if cell.sigma_v == sigma]
        per_sigma.append(
            {
                "sigma_v": sigma,
                "average_mean_accuracy_drop_pct": mean(
                    cell.mean_accuracy_drop for cell in cells
                ) * 100.0,
                "max_mean_accuracy_drop_pct": max(
                    cell.mean_accuracy_drop for cell in cells
                ) * 100.0,
                "max_worst_case_drop_pct": max(
                    cell.worst_case_drop for cell in cells
                ) * 100.0,
            }
        )
    return {"dataset": surface.dataset, "per_sigma": per_sigma}


def table2_summary(rows: list[dict]) -> dict:
    """Averages quoted in the Table II discussion."""
    if not rows:
        return {
            "average_area_mm2": 0.0,
            "average_power_mw": 0.0,
            "average_area_reduction_vs_baseline_x": 0.0,
            "average_power_reduction_vs_baseline_x": 0.0,
        }
    return {
        "average_area_mm2": mean(r["area_mm2"] for r in rows),
        "average_power_mw": mean(r["power_mw"] for r in rows),
        "average_area_reduction_vs_baseline_x": mean(
            r["area_reduction_vs_baseline_x"] for r in rows
        ),
        "average_power_reduction_vs_baseline_x": mean(
            r["power_reduction_vs_baseline_x"] for r in rows
        ),
    }
