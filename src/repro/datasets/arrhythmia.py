"""Arrhythmia stand-in dataset.

The UCI arrhythmia dataset has only 452 samples, a very large and sparse
feature set, 13 occupied classes and severe imbalance (more than half the
samples are "normal").  Trees overfit easily and the paper's baseline only
reaches 62.7 %.  The stand-in keeps the small sample count, the dominant
majority class and a modest informative subspace inside a wider noisy
feature vector so that quantized trees land in the same accuracy band.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs

_N_FEATURES = 32
_N_CLASSES = 13

_FEATURE_NAMES = [f"ecg_feature_{i}" for i in range(_N_FEATURES)]
_CLASS_NAMES = ["normal"] + [f"arrhythmia_class_{i}" for i in range(1, _N_CLASSES)]


def load_arrhythmia(seed: int = 0) -> Dataset:
    """Synthetic stand-in for the UCI arrhythmia dataset."""
    # Majority "normal" class plus a long tail of rare arrhythmia types.
    weights = np.array([0.54] + [0.46 / (_N_CLASSES - 1)] * (_N_CLASSES - 1))
    X, y = make_classification_blobs(
        n_samples=452,
        n_features=_N_FEATURES,
        n_classes=_N_CLASSES,
        n_informative=10,
        class_sep=1.45,
        noise_scale=1.25,
        label_noise=0.08,
        class_weights=list(weights),
        seed=seed,
    )
    return Dataset(
        name="arrhythmia",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES),
        description=(
            "Synthetic stand-in for UCI arrhythmia: 13 highly imbalanced classes, "
            "452 samples, informative subspace inside a wider noisy ECG feature set."
        ),
        metadata={
            "abbreviation": "AR",
            "paper_baseline_accuracy": 0.627,
            "synthetic_standin": True,
        },
    )
