"""Cardiotocography (Cardio) stand-in dataset.

The UCI cardiotocography dataset has 2126 fetal heart-rate recordings with 21
features and 3 NSP classes (normal / suspect / pathologic) in a roughly
78/14/8 split.  Decision trees do well on it (the paper's baseline reaches
90.6 %), so the stand-in uses moderately separated Gaussian clusters with the
same imbalance.
"""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs

_FEATURE_NAMES = [
    "baseline_value", "accelerations", "fetal_movement", "uterine_contractions",
    "light_decelerations", "severe_decelerations", "prolonged_decelerations",
    "abnormal_short_term_variability", "mean_short_term_variability",
    "pct_abnormal_long_term_variability", "mean_long_term_variability",
    "histogram_width", "histogram_min", "histogram_max", "histogram_peaks",
    "histogram_zeroes", "histogram_mode", "histogram_mean", "histogram_median",
    "histogram_variance", "histogram_tendency",
]

_CLASS_NAMES = ["normal", "suspect", "pathologic"]


def load_cardio(seed: int = 0) -> Dataset:
    """Synthetic stand-in for the UCI cardiotocography (NSP) dataset."""
    X, y = make_classification_blobs(
        n_samples=2126,
        n_features=21,
        n_classes=3,
        n_informative=14,
        class_sep=1.8,
        noise_scale=1.0,
        label_noise=0.04,
        class_weights=[0.78, 0.14, 0.08],
        clusters_per_class=3,
        seed=seed,
    )
    return Dataset(
        name="cardio",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES),
        description=(
            "Synthetic stand-in for UCI cardiotocography: 3 imbalanced NSP classes "
            "over 21 fetal heart-rate features."
        ),
        metadata={
            "abbreviation": "CA",
            "paper_baseline_accuracy": 0.906,
            "synthetic_standin": True,
        },
    )
