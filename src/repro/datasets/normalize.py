"""Feature normalization to the ``[0, 1]`` sensor range.

The paper normalizes all inputs to ``[0, 1]`` before quantization; in a real
deployment this corresponds to the sensor/analog conditioning mapping the
physical quantity onto the ADC's full-scale range.
"""

from __future__ import annotations

import numpy as np


class MinMaxNormalizer:
    """Per-feature min-max scaler with the usual fit/transform interface."""

    def __init__(self) -> None:
        self.minimum_: np.ndarray | None = None
        self.maximum_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxNormalizer":
        """Learn the per-feature range from ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.minimum_ = X.min(axis=0)
        self.maximum_ = X.max(axis=0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale ``X`` into ``[0, 1]`` using the learned range (clipping)."""
        if self.minimum_ is None or self.maximum_ is None:
            raise RuntimeError("normalizer must be fitted before transform")
        X = np.asarray(X, dtype=float)
        span = self.maximum_ - self.minimum_
        span = np.where(span <= 0, 1.0, span)
        return np.clip((X - self.minimum_) / span, 0.0, 1.0)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the scaled matrix."""
        return self.fit(X).transform(X)


def normalize_unit_range(X: np.ndarray) -> np.ndarray:
    """One-shot min-max normalization of a feature matrix into ``[0, 1]``."""
    return MinMaxNormalizer().fit_transform(X)
