"""Dataset container used across the repository."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Dataset:
    """A normalized classification dataset.

    Attributes
    ----------
    name:
        Canonical dataset name (e.g. ``"whitewine"``).
    X:
        Feature matrix with values in ``[0, 1]`` (sensor outputs after
        normalization, ready for the ADC front end).
    y:
        Integer class labels ``0 .. n_classes - 1``.
    feature_names:
        One name per column of ``X``.
    class_names:
        One name per class label.
    description:
        Short human-readable description, including the substitution note
        when the dataset is a synthetic stand-in.
    metadata:
        Free-form extra information (e.g. the paper's reported baseline
        accuracy for this benchmark).
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    feature_names: list[str]
    class_names: list[str]
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.X.ndim != 2:
            raise ValueError(f"{self.name}: X must be a 2-D matrix")
        if self.y.ndim != 1:
            raise ValueError(f"{self.name}: y must be a 1-D label vector")
        if len(self.X) != len(self.y):
            raise ValueError(f"{self.name}: X and y must have the same length")
        if len(self.feature_names) != self.X.shape[1]:
            raise ValueError(f"{self.name}: one feature name per column is required")
        n_classes = int(self.y.max()) + 1 if len(self.y) else 0
        if len(self.class_names) < n_classes:
            raise ValueError(f"{self.name}: missing class names")
        if len(self.y) and self.y.min() < 0:
            raise ValueError(f"{self.name}: labels must be non-negative")
        if self.X.size and (self.X.min() < -1e-9 or self.X.max() > 1 + 1e-9):
            raise ValueError(f"{self.name}: features must be normalized to [0, 1]")

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of input features."""
        return int(self.X.shape[1])

    @property
    def n_classes(self) -> int:
        """Number of distinct classes."""
        return len(self.class_names)

    def class_distribution(self) -> np.ndarray:
        """Per-class sample counts."""
        return np.bincount(self.y, minlength=self.n_classes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, samples={self.n_samples}, "
            f"features={self.n_features}, classes={self.n_classes})"
        )
