"""Balance-Scale dataset (regenerated exactly).

The UCI Balance-Scale dataset is a *complete factorial*: every combination of
left-weight, left-distance, right-weight and right-distance in ``{1..5}``,
labelled by the sign of the torque difference ``LW*LD - RW*RD`` (left / balanced
/ right).  Because the generating rule is public and deterministic, this is
the one benchmark that is reproduced exactly rather than approximated.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.datasets.base import Dataset

_FEATURE_NAMES = ["left_weight", "left_distance", "right_weight", "right_distance"]
_CLASS_NAMES = ["left", "balanced", "right"]


def load_balance_scale(seed: int = 0) -> Dataset:
    """Regenerate the UCI Balance-Scale dataset from its known rule.

    The ``seed`` parameter is accepted for interface uniformity but unused:
    the dataset is deterministic.
    """
    del seed  # deterministic dataset, no randomness involved
    rows = []
    labels = []
    for lw, ld, rw, rd in itertools.product(range(1, 6), repeat=4):
        rows.append((lw, ld, rw, rd))
        left_torque = lw * ld
        right_torque = rw * rd
        if left_torque > right_torque:
            labels.append(0)   # tips left
        elif left_torque == right_torque:
            labels.append(1)   # balanced
        else:
            labels.append(2)   # tips right
    X = np.asarray(rows, dtype=float)
    # Normalize the 1..5 ordinal attributes onto [0, 1].
    X = (X - 1.0) / 4.0
    y = np.asarray(labels, dtype=np.int64)
    return Dataset(
        name="balance_scale",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES),
        description=(
            "UCI Balance-Scale regenerated exactly from its deterministic "
            "torque rule (625 samples, complete 5^4 factorial)."
        ),
        metadata={
            "abbreviation": "BS",
            "paper_baseline_accuracy": 0.777,
            "synthetic_standin": False,
        },
    )
