"""Vertebral-column stand-in datasets (2-class and 3-class variants).

The UCI vertebral column dataset has 310 patients described by six
biomechanical attributes.  It ships in two labelings: 3 classes (normal /
disk hernia / spondylolisthesis) and 2 classes (normal / abnormal).  The
stand-ins share one generator so the two variants stay consistent: the
2-class labels are obtained by merging the two pathological classes, exactly
like the original.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs

_FEATURE_NAMES = [
    "pelvic_incidence",
    "pelvic_tilt",
    "lumbar_lordosis_angle",
    "sacral_slope",
    "pelvic_radius",
    "grade_of_spondylolisthesis",
]

_CLASS_NAMES_3C = ["normal", "disk_hernia", "spondylolisthesis"]
_CLASS_NAMES_2C = ["normal", "abnormal"]


def _generate(seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Shared 3-class generator for both vertebral variants."""
    # Real distribution: 100 normal, 60 disk hernia, 150 spondylolisthesis.
    return make_classification_blobs(
        n_samples=310,
        n_features=6,
        n_classes=3,
        n_informative=6,
        class_sep=2.0,
        noise_scale=1.05,
        label_noise=0.06,
        class_weights=[100 / 310, 60 / 310, 150 / 310],
        seed=seed,
    )


def load_vertebral_3c(seed: int = 0) -> Dataset:
    """Synthetic stand-in for the 3-class vertebral column dataset."""
    X, y = _generate(seed)
    return Dataset(
        name="vertebral_3c",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES_3C),
        description=(
            "Synthetic stand-in for UCI vertebral column (3 classes) over six "
            "biomechanical attributes."
        ),
        metadata={
            "abbreviation": "V3",
            "paper_baseline_accuracy": 0.860,
            "synthetic_standin": True,
        },
    )


def load_vertebral_2c(seed: int = 0) -> Dataset:
    """Synthetic stand-in for the 2-class vertebral column dataset.

    The 2-class labels merge the two pathological classes, as in the
    original.  The generator draw is offset from the 3-class variant so that
    the merged decision boundary keeps a complexity comparable to the real
    dataset (a shared draw happens to be separable by a depth-2 tree, which
    the UCI original is not).
    """
    X, y3 = _generate(seed + 1000)
    y = (y3 != 0).astype(np.int64)  # merge the two pathological classes
    return Dataset(
        name="vertebral_2c",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES_2C),
        description=(
            "Synthetic stand-in for UCI vertebral column (2 classes): normal vs "
            "abnormal, derived from the 3-class variant by class merging."
        ),
        metadata={
            "abbreviation": "V2",
            "paper_baseline_accuracy": 0.871,
            "synthetic_standin": True,
        },
    )
