"""Seeds stand-in dataset.

The UCI seeds dataset contains 210 wheat kernels (70 per variety) described by
seven geometric measurements.  The three varieties form fairly compact,
mildly overlapping clusters; the paper's baseline tree reaches 90.5 %.
"""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs

_FEATURE_NAMES = [
    "area",
    "perimeter",
    "compactness",
    "kernel_length",
    "kernel_width",
    "asymmetry_coefficient",
    "groove_length",
]

_CLASS_NAMES = ["kama", "rosa", "canadian"]


def load_seeds(seed: int = 0) -> Dataset:
    """Synthetic stand-in for the UCI seeds (wheat kernel) dataset."""
    X, y = make_classification_blobs(
        n_samples=210,
        n_features=7,
        n_classes=3,
        n_informative=7,
        class_sep=1.7,
        noise_scale=1.0,
        label_noise=0.04,
        class_weights=[1 / 3, 1 / 3, 1 / 3],
        clusters_per_class=2,
        seed=seed,
    )
    return Dataset(
        name="seeds",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES),
        description=(
            "Synthetic stand-in for UCI seeds: three balanced wheat varieties over "
            "seven geometric kernel measurements."
        ),
        metadata={
            "abbreviation": "SE",
            "paper_baseline_accuracy": 0.905,
            "synthetic_standin": True,
        },
    )
