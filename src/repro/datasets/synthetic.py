"""Generic synthetic dataset generators.

Two generators cover the benchmark suite:

* :func:`make_classification_blobs` -- Gaussian class clusters in an
  informative subspace plus pure-noise nuisance features and optional label
  noise.  Class separation, noise and label-noise fraction control how much
  accuracy a small quantized decision tree can reach, which is how each
  stand-in is calibrated to its UCI original.
* :func:`make_ordinal_dataset` -- classes obtained by thresholding a noisy
  latent score (weighted sum of the informative features).  This mimics
  quality-rating datasets such as WhiteWine, where classes are ordered,
  heavily imbalanced and overlap strongly (hence the low ~53 % tree accuracy
  reported in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.normalize import normalize_unit_range


def _apply_label_noise(y: np.ndarray, n_classes: int, fraction: float, rng) -> np.ndarray:
    """Reassign a random ``fraction`` of labels to a different random class."""
    if fraction <= 0:
        return y
    y = y.copy()
    n_flip = int(round(len(y) * fraction))
    if n_flip == 0:
        return y
    victims = rng.choice(len(y), size=n_flip, replace=False)
    offsets = rng.integers(1, n_classes, size=n_flip)
    y[victims] = (y[victims] + offsets) % n_classes
    return y


def make_classification_blobs(
    n_samples: int,
    n_features: int,
    n_classes: int,
    n_informative: int | None = None,
    class_sep: float = 2.0,
    noise_scale: float = 1.0,
    label_noise: float = 0.0,
    class_weights: list[float] | None = None,
    clusters_per_class: int = 1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian-cluster classification data normalized to ``[0, 1]``.

    Parameters
    ----------
    n_samples, n_features, n_classes:
        Dataset dimensions.
    n_informative:
        Number of features carrying class information (the rest are noise);
        defaults to all features.
    class_sep:
        Distance scale between class centers -- larger means easier.
    noise_scale:
        Standard deviation of the within-class spread.
    label_noise:
        Fraction of labels flipped to a random other class.
    class_weights:
        Optional relative class frequencies (normalized internally).
    clusters_per_class:
        Number of Gaussian modes per class.  Values above 1 create
        multi-modal classes whose boundaries need deeper trees, mimicking the
        benchmark datasets where the paper's baseline grows close to the
        depth limit (WhiteWine, Cardio, Pendigits).
    seed:
        RNG seed; generation is fully deterministic.

    Returns
    -------
    (X, y):
        Feature matrix in ``[0, 1]`` and integer labels.
    """
    if n_classes < 2:
        raise ValueError("need at least two classes")
    if n_features < 1:
        raise ValueError("need at least one feature")
    if clusters_per_class < 1:
        raise ValueError("clusters_per_class must be >= 1")
    if n_informative is None:
        n_informative = n_features
    n_informative = min(n_informative, n_features)
    rng = np.random.default_rng(seed)

    if class_weights is None:
        weights = np.full(n_classes, 1.0 / n_classes)
    else:
        weights = np.asarray(class_weights, dtype=float)
        if len(weights) != n_classes or np.any(weights < 0):
            raise ValueError("class_weights must be non-negative, one per class")
        weights = weights / weights.sum()

    y = rng.choice(n_classes, size=n_samples, p=weights)
    centers = rng.normal(
        0.0, class_sep, size=(n_classes, clusters_per_class, n_informative)
    )
    cluster_assignment = rng.integers(0, clusters_per_class, size=n_samples)
    X = np.empty((n_samples, n_features))
    X[:, :n_informative] = centers[y, cluster_assignment] + rng.normal(
        0.0, noise_scale, size=(n_samples, n_informative)
    )
    if n_features > n_informative:
        X[:, n_informative:] = rng.normal(
            0.0, 1.0, size=(n_samples, n_features - n_informative)
        )
    # Mix the informative directions so single features are informative but
    # not perfectly separating (closer to real sensor data).
    mixing = rng.normal(0.0, 0.15, size=(n_informative, n_informative))
    np.fill_diagonal(mixing, 1.0)
    X[:, :n_informative] = X[:, :n_informative] @ mixing

    y = _apply_label_noise(y, n_classes, label_noise, rng)
    return normalize_unit_range(X), y.astype(np.int64)


def make_ordinal_dataset(
    n_samples: int,
    n_features: int,
    n_classes: int,
    n_informative: int | None = None,
    noise_scale: float = 1.0,
    label_noise: float = 0.0,
    class_balance_temperature: float = 1.0,
    class_concentration: float = 4.0,
    nonlinearity: float = 0.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Ordinal-label data: classes are bands of a noisy latent score.

    The latent score is a random weighted sum of the informative features
    (optionally with pairwise interaction terms, see ``nonlinearity``);
    class boundaries are placed at quantiles shaped by
    ``class_balance_temperature`` (1.0 gives a centre-heavy, imbalanced
    distribution similar to wine-quality ratings; 0 gives equal bands) and
    ``class_concentration`` (larger values make the central classes more
    dominant).
    """
    if n_classes < 2:
        raise ValueError("need at least two classes")
    if class_concentration <= 0:
        raise ValueError("class_concentration must be positive")
    if n_informative is None:
        n_informative = n_features
    n_informative = min(n_informative, n_features)
    rng = np.random.default_rng(seed)

    X = rng.normal(0.0, 1.0, size=(n_samples, n_features))
    weights = rng.normal(1.0, 0.3, size=n_informative)
    score = X[:, :n_informative] @ weights
    if nonlinearity > 0 and n_informative >= 2:
        # Pairwise interactions make the label boundary axis-unaligned and
        # curved, so deeper trees keep improving accuracy (as on WhiteWine).
        n_pairs = min(n_informative, 6)
        pairs = rng.choice(n_informative, size=(n_pairs, 2), replace=True)
        interaction = np.sum(
            X[:, pairs[:, 0]] * X[:, pairs[:, 1]], axis=1
        )
        score = score + nonlinearity * np.std(score) * interaction / max(
            np.std(interaction), 1e-9
        )
    score = score + rng.normal(0.0, noise_scale * np.std(score), size=n_samples)

    # Class boundaries: blend equal-width quantiles with a centre-heavy
    # (roughly Gaussian) allocation controlled by the temperature.
    uniform_edges = np.linspace(0.0, 1.0, n_classes + 1)[1:-1]
    sigma = n_classes / class_concentration
    gaussian_mass = np.exp(
        -0.5 * ((np.arange(n_classes) - (n_classes - 1) / 2.0) / sigma) ** 2
    )
    gaussian_mass = gaussian_mass / gaussian_mass.sum()
    gaussian_edges = np.cumsum(gaussian_mass)[:-1]
    t = np.clip(class_balance_temperature, 0.0, 1.0)
    edges = (1 - t) * uniform_edges + t * gaussian_edges
    boundaries = np.quantile(score, edges)
    y = np.searchsorted(boundaries, score).astype(np.int64)

    y = _apply_label_noise(y, n_classes, label_noise, rng)
    return normalize_unit_range(X), y
