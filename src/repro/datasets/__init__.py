"""Dataset substrate: synthetic stand-ins for the paper's 8 UCI benchmarks.

The paper evaluates on eight UCI datasets (WhiteWine, Cardio, Arrhythmia,
Balance-Scale, Vertebral-3C, Seeds, Vertebral-2C, Pendigits) with inputs
normalized to ``[0, 1]`` and a random 70/30 split.  This environment has no
network access, so each benchmark is replaced by a deterministic synthetic
generator matched to the original's feature count, class count, sample count
and approximate baseline decision-tree accuracy (see DESIGN.md, Section 2).
Balance-Scale is special: the original dataset is a complete factorial of a
known deterministic rule, so it is regenerated *exactly*.

Real UCI CSV files can be substituted at any time through
:func:`repro.datasets.registry.load_csv`.
"""

from repro.datasets.base import Dataset
from repro.datasets.normalize import MinMaxNormalizer, normalize_unit_range
from repro.datasets.registry import (
    DATASET_ABBREVIATIONS,
    dataset_names,
    load_csv,
    load_dataset,
    paper_reference,
)
from repro.datasets.synthetic import (
    make_classification_blobs,
    make_ordinal_dataset,
)

__all__ = [
    "Dataset",
    "MinMaxNormalizer",
    "normalize_unit_range",
    "DATASET_ABBREVIATIONS",
    "dataset_names",
    "load_dataset",
    "load_csv",
    "paper_reference",
    "make_classification_blobs",
    "make_ordinal_dataset",
]
