"""Dataset registry: the eight paper benchmarks plus CSV loading.

The registry maps canonical dataset names (and the two-letter abbreviations
used in the paper's figures: WW, CA, AR, BS, V3, SE, V2, PD) to their loader
functions, and records the paper-reported baseline accuracy for reference in
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.arrhythmia import load_arrhythmia
from repro.datasets.balance_scale import load_balance_scale
from repro.datasets.base import Dataset
from repro.datasets.cardio import load_cardio
from repro.datasets.normalize import normalize_unit_range
from repro.datasets.pendigits import load_pendigits
from repro.datasets.seeds import load_seeds
from repro.datasets.vertebral import load_vertebral_2c, load_vertebral_3c
from repro.datasets.whitewine import load_whitewine

#: Loader function per canonical dataset name, in the paper's Table I order.
_LOADERS: dict[str, Callable[[int], Dataset]] = {
    "whitewine": load_whitewine,
    "cardio": load_cardio,
    "arrhythmia": load_arrhythmia,
    "balance_scale": load_balance_scale,
    "vertebral_3c": load_vertebral_3c,
    "seeds": load_seeds,
    "vertebral_2c": load_vertebral_2c,
    "pendigits": load_pendigits,
}

#: Two-letter abbreviations used in Figs. 4/5 of the paper.
DATASET_ABBREVIATIONS: dict[str, str] = {
    "whitewine": "WW",
    "cardio": "CA",
    "arrhythmia": "AR",
    "balance_scale": "BS",
    "vertebral_3c": "V3",
    "seeds": "SE",
    "vertebral_2c": "V2",
    "pendigits": "PD",
}

#: Baseline accuracy (Table I) and hardware the paper reports, for reference.
_PAPER_REFERENCE: dict[str, dict[str, float]] = {
    "whitewine": {"accuracy": 0.528, "comparators": 207, "inputs": 11,
                  "total_area_mm2": 261.3, "total_power_mw": 14.6},
    "cardio": {"accuracy": 0.906, "comparators": 85, "inputs": 19,
               "total_area_mm2": 114.4, "total_power_mw": 12.5},
    "arrhythmia": {"accuracy": 0.627, "comparators": 39, "inputs": 21,
                   "total_area_mm2": 79.9, "total_power_mw": 12.0},
    "balance_scale": {"accuracy": 0.777, "comparators": 15, "inputs": 4,
                      "total_area_mm2": 30.6, "total_power_mw": 2.9},
    "vertebral_3c": {"accuracy": 0.860, "comparators": 7, "inputs": 5,
                     "total_area_mm2": 16.8, "total_power_mw": 2.8},
    "seeds": {"accuracy": 0.905, "comparators": 23, "inputs": 5,
              "total_area_mm2": 27.3, "total_power_mw": 3.2},
    "vertebral_2c": {"accuracy": 0.871, "comparators": 7, "inputs": 5,
                     "total_area_mm2": 16.4, "total_power_mw": 2.8},
    "pendigits": {"accuracy": 0.950, "comparators": 215, "inputs": 16,
                  "total_area_mm2": 268.7, "total_power_mw": 17.2},
}


def dataset_names() -> list[str]:
    """Canonical names of the eight benchmarks, in the paper's order."""
    return list(_LOADERS)


def canonical_name(name: str) -> str:
    """Resolve a dataset name or abbreviation to its canonical name."""
    lowered = name.strip().lower()
    if lowered in _LOADERS:
        return lowered
    for canonical, abbreviation in DATASET_ABBREVIATIONS.items():
        if lowered == abbreviation.lower():
            return canonical
    raise KeyError(
        f"unknown dataset {name!r}; available: {dataset_names()} "
        f"or abbreviations {sorted(DATASET_ABBREVIATIONS.values())}"
    )


def load_dataset(name: str, seed: int = 0) -> Dataset:
    """Load one of the eight benchmarks by name or paper abbreviation."""
    return _LOADERS[canonical_name(name)](seed)


def paper_reference(name: str) -> dict[str, float]:
    """Paper-reported Table I values for the named benchmark."""
    return dict(_PAPER_REFERENCE[canonical_name(name)])


def load_csv(
    path: str,
    name: str | None = None,
    label_column: int = -1,
    delimiter: str = ",",
    skip_header: int = 0,
) -> Dataset:
    """Load a real dataset from a numeric CSV file.

    This is the hook for substituting the synthetic stand-ins with the actual
    UCI data when it is available: features are min-max normalized to
    ``[0, 1]`` and labels are remapped to ``0 .. n_classes - 1``.

    Parameters
    ----------
    path:
        CSV file with numeric features and an integer-like label column.
    name:
        Dataset name (defaults to the file stem).
    label_column:
        Index of the label column (default: last column).
    delimiter, skip_header:
        Passed to :func:`numpy.genfromtxt`.
    """
    raw = np.genfromtxt(path, delimiter=delimiter, skip_header=skip_header)
    if raw.ndim != 2 or raw.shape[1] < 2:
        raise ValueError(f"{path}: expected a 2-D table with at least two columns")
    if np.isnan(raw).any():
        raise ValueError(f"{path}: CSV contains missing or non-numeric values")
    label_column = label_column % raw.shape[1]
    labels_raw = raw[:, label_column]
    X = np.delete(raw, label_column, axis=1)
    classes, y = np.unique(labels_raw, return_inverse=True)
    dataset_name = name if name is not None else str(path).rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return Dataset(
        name=dataset_name,
        X=normalize_unit_range(X),
        y=y.astype(np.int64),
        feature_names=[f"feature_{i}" for i in range(X.shape[1])],
        class_names=[str(c) for c in classes],
        description=f"Loaded from CSV file {path}",
        metadata={"synthetic_standin": False, "source_path": str(path)},
    )
