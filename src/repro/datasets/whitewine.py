"""WhiteWine stand-in dataset.

The UCI white wine-quality dataset has 4898 samples, 11 physico-chemical
features and 7 occupied quality ratings (3..9).  Quality ratings are ordinal,
heavily centre-weighted and only weakly predictable from the features, which
is why the paper's baseline tree only reaches 52.8 % accuracy.  The stand-in
uses the ordinal generator with strong latent noise and label noise to land a
4-bit, depth<=8 tree in the same accuracy band.
"""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_ordinal_dataset

_FEATURE_NAMES = [
    "fixed_acidity",
    "volatile_acidity",
    "citric_acid",
    "residual_sugar",
    "chlorides",
    "free_sulfur_dioxide",
    "total_sulfur_dioxide",
    "density",
    "ph",
    "sulphates",
    "alcohol",
]

_CLASS_NAMES = [f"quality_{q}" for q in range(3, 10)]


def load_whitewine(seed: int = 0) -> Dataset:
    """Synthetic stand-in for the UCI white wine-quality dataset."""
    X, y = make_ordinal_dataset(
        n_samples=4898,
        n_features=11,
        n_classes=7,
        n_informative=10,
        noise_scale=0.30,
        label_noise=0.02,
        class_balance_temperature=1.0,
        class_concentration=9.0,
        nonlinearity=0.7,
        seed=seed,
    )
    return Dataset(
        name="whitewine",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES),
        description=(
            "Synthetic stand-in for UCI white wine quality: ordinal ratings from "
            "a noisy latent score over 11 sensor features."
        ),
        metadata={
            "abbreviation": "WW",
            "paper_baseline_accuracy": 0.528,
            "synthetic_standin": True,
        },
    )
