"""Pendigits stand-in dataset.

The UCI pen-based handwritten digit dataset has ~10 k samples, 16 resampled
pen-trajectory coordinates and 10 balanced digit classes.  It is the largest
and easiest benchmark of the suite (95 % baseline accuracy) but also the most
hardware-hungry (215 comparison nodes, 16 used inputs in Table I).  The
stand-in uses well-separated clusters over all 16 features with balanced
classes; the sample count is kept at the size of the original training
partition (7494) to bound benchmark runtime without changing the achievable
accuracy band.
"""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs

_FEATURE_NAMES = [f"{axis}{i}" for i in range(1, 9) for axis in ("x", "y")]
_CLASS_NAMES = [f"digit_{d}" for d in range(10)]


def load_pendigits(seed: int = 0) -> Dataset:
    """Synthetic stand-in for the UCI pen-based handwritten digits dataset."""
    X, y = make_classification_blobs(
        n_samples=7494,
        n_features=16,
        n_classes=10,
        n_informative=16,
        class_sep=5.0,
        noise_scale=0.75,
        label_noise=0.01,
        clusters_per_class=2,
        seed=seed,
    )
    return Dataset(
        name="pendigits",
        X=X,
        y=y,
        feature_names=list(_FEATURE_NAMES),
        class_names=list(_CLASS_NAMES),
        description=(
            "Synthetic stand-in for UCI pendigits: 10 balanced digit classes over "
            "16 pen-trajectory coordinates."
        ),
        metadata={
            "abbreviation": "PD",
            "paper_baseline_accuracy": 0.950,
            "synthetic_standin": True,
        },
    )
