"""Printed energy-harvester budget model.

The paper targets *self-powered* classifiers: the whole on-sensor system
(ADCs + decision tree + sensors) must stay below the power that printed
energy harvesters can deliver, cited as about 2 mW [18].  This module keeps
that budget in one place so the feasibility analysis of Section IV (and the
corresponding benchmark) has a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrintedEnergyHarvester:
    """Power budget of a printed energy harvester.

    Attributes
    ----------
    name:
        Human-readable harvester description.
    budget_mw:
        Maximum continuous power the harvester can supply, in mW.
    """

    name: str = "printed nano-mechanical harvester"
    budget_mw: float = 2.0

    def __post_init__(self) -> None:
        if self.budget_mw <= 0:
            raise ValueError("harvester budget must be positive")

    def can_power(self, load_mw: float) -> bool:
        """Return ``True`` when ``load_mw`` fits inside the harvester budget."""
        if load_mw < 0:
            raise ValueError("load power must be >= 0")
        return load_mw <= self.budget_mw

    def headroom_mw(self, load_mw: float) -> float:
        """Remaining budget after powering ``load_mw`` (negative if exceeded)."""
        if load_mw < 0:
            raise ValueError("load power must be >= 0")
        return self.budget_mw - load_mw

    def utilization(self, load_mw: float) -> float:
        """Fraction of the budget consumed by ``load_mw``."""
        if load_mw < 0:
            raise ValueError("load power must be >= 0")
        return load_mw / self.budget_mw
