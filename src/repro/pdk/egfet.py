"""EGFET technology container.

:class:`EGFETTechnology` bundles every cost model the co-design framework
needs -- the digital standard-cell library, the analog comparator and
resistor-ladder models, the operating point, and the wiring overhead applied
to synthesized digital blocks.  A single instance is threaded through the
ADC models, the circuit synthesis, the baselines, and the co-design core, so
sensitivity studies (e.g. a more optimistic comparator) only need to swap
the technology object.

Calibration targets (see DESIGN.md, Section 6):

* conventional 4-bit flash ADC (15 comparators + ladder + priority encoder):
  ~11 mm2 and ~0.83 mW (Section III-B of the paper);
* bespoke 4-bit ADC: area from ~0.2 mm2 (1 retained comparator) to ~0.6 mm2
  (all 15 retained), power from tens of uW to ~0.44 mW depending on which
  reference levels are retained (Fig. 3);
* a per-input comparator bank plus a single shared encoder reproduces the
  ADC area/power columns of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pdk.cells import CellLibrary, egfet_cell_library
from repro.pdk.comparator import AnalogComparatorModel
from repro.pdk.harvester import PrintedEnergyHarvester
from repro.pdk.resistor_ladder import ResistorLadder
from repro.pdk.sensors import PrintedSensor


@dataclass(frozen=True)
class EGFETTechnology:
    """Behavioral printed-EGFET technology description.

    Attributes
    ----------
    name:
        Identifier of the technology corner.
    vdd:
        Supply voltage in volts (the EGFET PDK operates below 1 V; the paper
        simulates at 1 V).
    frequency_hz:
        Operating frequency of the digital logic.  Printed applications run
        at a few Hz; the paper evaluates everything at 20 Hz.
    cell_library:
        Digital standard-cell library.
    comparator:
        Analog comparator area/power model.
    ladder:
        Flash-ADC resistor ladder model (also fixes the default resolution).
    wiring_area_overhead:
        Multiplicative factor applied to synthesized digital area to account
        for printed routing, which is significant at these feature sizes.
    encoder_gate_equivalents_per_tap:
        Size of the flash-ADC priority encoder in gate equivalents per
        thermometer tap.  For a 4-bit ADC (15 taps) the default of 5.2 GE/tap
        yields ~10.1 mm2 / ~0.39 mW, which closes the gap between the
        comparator bank and the published 11 mm2 / 0.83 mW conventional ADC.
    harvester:
        Printed energy-harvester budget used in the self-power analysis.
    sensor:
        Printed sensor model (per used input feature).
    """

    name: str = "egfet_behavioral_v1"
    vdd: float = 1.0
    frequency_hz: float = 20.0
    cell_library: CellLibrary = field(default_factory=egfet_cell_library)
    comparator: AnalogComparatorModel = field(default_factory=AnalogComparatorModel)
    ladder: ResistorLadder = field(default_factory=ResistorLadder)
    wiring_area_overhead: float = 1.10
    encoder_gate_equivalents_per_tap: float = 5.2
    harvester: PrintedEnergyHarvester = field(default_factory=PrintedEnergyHarvester)
    sensor: PrintedSensor = field(default_factory=PrintedSensor)

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("supply voltage must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("operating frequency must be positive")
        if self.wiring_area_overhead < 1.0:
            raise ValueError("wiring overhead factor must be >= 1.0")
        if self.encoder_gate_equivalents_per_tap <= 0:
            raise ValueError("encoder size per tap must be positive")

    @property
    def resolution_bits(self) -> int:
        """Default ADC resolution of the technology (from the ladder model)."""
        return self.ladder.resolution_bits

    def ladder_for(self, resolution_bits: int) -> ResistorLadder:
        """Return a resistor ladder of the requested resolution.

        The per-segment area and string resistance of the technology's
        default ladder are preserved so cost scaling with resolution is
        consistent.
        """
        if resolution_bits == self.ladder.resolution_bits:
            return self.ladder
        return ResistorLadder(
            resolution_bits=resolution_bits,
            segment_area_mm2=self.ladder.segment_area_mm2,
            vdd=self.ladder.vdd,
            string_resistance_ohm=self.ladder.string_resistance_ohm,
        )

    def encoder_gate_equivalents(self, resolution_bits: int) -> float:
        """Size of an N-bit flash-ADC priority encoder in gate equivalents."""
        if resolution_bits < 1:
            raise ValueError("encoder resolution must be >= 1 bit")
        n_taps = 2 ** resolution_bits - 1
        return self.encoder_gate_equivalents_per_tap * n_taps


def default_technology() -> EGFETTechnology:
    """Return the default calibrated EGFET behavioral technology."""
    return EGFETTechnology()
