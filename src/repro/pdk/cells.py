"""Standard-cell library for the behavioral EGFET technology.

Printed EGFET gates are orders of magnitude larger and slower than silicon
cells.  The library below expresses every cell in *gate equivalents* (GE),
where one GE corresponds to a 2-input NAND.  The absolute GE area and power
are calibrated so that the digital blocks reported in the paper come out in
the published range:

* a 15-to-4 priority encoder (~78 GE) costs about 10.1 mm2 and 0.39 mW,
  which is the difference between the conventional 4-bit flash ADC
  (11 mm2 / 0.83 mW, Section III-B) and the full 15-comparator bank plus
  ladder (~0.6 mm2 / ~0.44 mW, Fig. 3);
* a bespoke 4-bit comparator node of the baseline decision trees [2],
  together with its share of the label logic, lands around 1 mm2 / 40-60 uW,
  consistent with the digital share of Table I.

Power values are average power at the paper's 20 Hz operating frequency and
1 V supply; at such low frequencies EGFET power is dominated by static
consumption, so the model treats cell power as activity-independent.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Area of one gate equivalent (a 2-input NAND) in mm^2.
GATE_EQUIVALENT_AREA_MM2 = 0.13

#: Average power of one gate equivalent in uW (1 V supply, 20 Hz).
GATE_EQUIVALENT_POWER_UW = 5.0


@dataclass(frozen=True)
class Cell:
    """A combinational or sequential standard cell.

    Attributes
    ----------
    name:
        Library name of the cell (e.g. ``"NAND2"``).
    n_inputs:
        Number of logic inputs.
    gate_equivalents:
        Size of the cell expressed in 2-input-NAND equivalents.
    area_mm2:
        Printed area of the cell.
    power_uw:
        Average power of the cell at the nominal operating point.
    """

    name: str
    n_inputs: int
    gate_equivalents: float
    area_mm2: float
    power_uw: float

    def __post_init__(self) -> None:
        if self.n_inputs < 0:
            raise ValueError(f"cell {self.name!r}: n_inputs must be >= 0")
        if self.area_mm2 < 0 or self.power_uw < 0:
            raise ValueError(f"cell {self.name!r}: area and power must be >= 0")


def _cell(name: str, n_inputs: int, gate_equivalents: float) -> Cell:
    """Build a :class:`Cell` from its size in gate equivalents."""
    return Cell(
        name=name,
        n_inputs=n_inputs,
        gate_equivalents=gate_equivalents,
        area_mm2=gate_equivalents * GATE_EQUIVALENT_AREA_MM2,
        power_uw=gate_equivalents * GATE_EQUIVALENT_POWER_UW,
    )


class CellLibrary:
    """A named collection of :class:`Cell` objects with lookup helpers."""

    def __init__(self, name: str, cells: list[Cell]):
        self.name = name
        self._cells: dict[str, Cell] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: Cell) -> None:
        """Register ``cell``, replacing any previous cell of the same name."""
        self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} is not in library {self.name!r}; "
                f"available cells: {sorted(self._cells)}"
            ) from None

    def get(self, name: str) -> Cell:
        """Alias of ``library[name]`` kept for readability at call sites."""
        return self[name]

    def names(self) -> list[str]:
        """Return the sorted list of cell names in the library."""
        return sorted(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())

    def area_of(self, name: str) -> float:
        """Area in mm^2 of the named cell."""
        return self[name].area_mm2

    def power_of(self, name: str) -> float:
        """Average power in uW of the named cell."""
        return self[name].power_uw

    def __eq__(self, other: object) -> bool:
        """Value equality: same name and same cells.

        Technology objects embed the library, and experiment results embed
        the technology; value equality here is what lets two equally
        configured runs (serial vs parallel, this process vs a worker)
        compare equal end to end.
        """
        if not isinstance(other, CellLibrary):
            return NotImplemented
        return self.name == other.name and self._cells == other._cells

    def __hash__(self) -> int:
        """Value hash consistent with ``__eq__``.

        Kept (rather than dropping to unhashable) because the frozen
        ``EGFETTechnology`` dataclass embeds the library and must stay
        hashable.  Mutating a library after using it as a hash key is the
        caller's foot-gun, same as any hashable-by-value container.
        """
        return hash((self.name, frozenset(self._cells.items())))

    def canonical_form(self) -> dict:
        """Primitive rendering used by the result store's cache keys.

        The default ``repr`` only exposes name and cell count; the cache key
        must change whenever any cell's cost changes, so every cell
        participates here.
        """
        return {"name": self.name, "cells": {n: self._cells[n] for n in sorted(self._cells)}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellLibrary(name={self.name!r}, n_cells={len(self)})"


def egfet_cell_library() -> CellLibrary:
    """Build the default printed-EGFET standard-cell library.

    The relative cell sizes follow classic gate-equivalent accounting
    (an AND is a NAND plus an inverter, a 2:1 MUX is about 2.5 GE, a flip
    flop about 5 GE); the absolute scale is set by
    :data:`GATE_EQUIVALENT_AREA_MM2` / :data:`GATE_EQUIVALENT_POWER_UW`.
    """
    cells = [
        _cell("CONST0", 0, 0.0),
        _cell("CONST1", 0, 0.0),
        _cell("BUF", 1, 0.5),
        _cell("INV", 1, 0.5),
        _cell("NAND2", 2, 1.0),
        _cell("NAND3", 3, 1.5),
        _cell("NAND4", 4, 2.0),
        _cell("NOR2", 2, 1.0),
        _cell("NOR3", 3, 1.5),
        _cell("NOR4", 4, 2.0),
        _cell("AND2", 2, 1.5),
        _cell("AND3", 3, 2.0),
        _cell("AND4", 4, 2.5),
        _cell("OR2", 2, 1.5),
        _cell("OR3", 3, 2.0),
        _cell("OR4", 4, 2.5),
        _cell("XOR2", 2, 2.5),
        _cell("XNOR2", 2, 2.5),
        _cell("MUX2", 3, 2.5),
        _cell("AOI21", 3, 1.5),
        _cell("OAI21", 3, 1.5),
        _cell("DFF", 2, 5.0),
    ]
    return CellLibrary("egfet_behavioral_v1", cells)


def and_cell_for(width: int) -> str:
    """Return the widest library AND cell usable for ``width`` inputs.

    Wider AND/OR functions are decomposed by the synthesis code into trees of
    these cells, so this helper only needs to cover the native widths.
    """
    if width <= 1:
        return "BUF"
    if width == 2:
        return "AND2"
    if width == 3:
        return "AND3"
    return "AND4"


def or_cell_for(width: int) -> str:
    """Return the widest library OR cell usable for ``width`` inputs."""
    if width <= 1:
        return "BUF"
    if width == 2:
        return "OR2"
    if width == 3:
        return "OR3"
    return "OR4"
