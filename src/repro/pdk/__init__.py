"""Behavioral Process Design Kit (PDK) for printed Electrolyte-Gated FET circuits.

The paper designs its circuits in the inorganic EGFET technology [Bleier et
al., ISCA 2020] and extracts area/power through Cadence Virtuoso SPICE
simulations (analog front end) and Synopsys Design Compiler / PrimeTime
(digital tree logic).  Neither tool nor the proprietary PDK is available in
this environment, so this package provides a *behavioral* cost model with the
same interface the co-design framework needs:

* a standard-cell library with per-cell area and power (:mod:`repro.pdk.cells`),
* an analog comparator whose power depends on its reference level
  (:mod:`repro.pdk.comparator`),
* a resistor ladder (:mod:`repro.pdk.resistor_ladder`),
* printed energy-harvester and sensor budgets (:mod:`repro.pdk.harvester`,
  :mod:`repro.pdk.sensors`),
* an :class:`~repro.pdk.egfet.EGFETTechnology` container bundling everything,
  calibrated against the numbers published in the paper (conventional 4-bit
  flash ADC = 11 mm\N{SUPERSCRIPT TWO} / 0.83 mW, bespoke ADC area
  0.2-0.6 mm\N{SUPERSCRIPT TWO}, comparator power linear in the reference
  level index -- Fig. 3 and Section III-B).

All constants carry the paper reference they were calibrated against so that
users can swap in their own measured values.
"""

from repro.pdk.cells import Cell, CellLibrary, egfet_cell_library
from repro.pdk.comparator import AnalogComparatorModel
from repro.pdk.resistor_ladder import ResistorLadder
from repro.pdk.harvester import PrintedEnergyHarvester
from repro.pdk.sensors import PrintedSensor, SensorSuite
from repro.pdk.egfet import EGFETTechnology, default_technology

__all__ = [
    "Cell",
    "CellLibrary",
    "egfet_cell_library",
    "AnalogComparatorModel",
    "ResistorLadder",
    "PrintedEnergyHarvester",
    "PrintedSensor",
    "SensorSuite",
    "EGFETTechnology",
    "default_technology",
]
