"""Printed resistor-ladder (reference divider) model for flash ADCs.

A flash ADC derives its reference voltages from a string of ``2**N`` equal
resistors between the supply rails (Fig. 1 of the paper).  In the bespoke
ADCs the ladder is always retained in full -- only comparators and the
encoder are removed -- so the ladder contributes a fixed area and a fixed
static power (the current flowing through the string).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResistorLadder:
    """Behavioral model of the flash-ADC reference resistor string.

    Attributes
    ----------
    resolution_bits:
        ADC resolution; the ladder has ``2**resolution_bits`` segments.
    segment_area_mm2:
        Printed area of one resistor segment.
    vdd:
        Supply voltage across the string (V).
    string_resistance_ohm:
        Total resistance of the string; sets the static power ``Vdd^2 / R``.
    """

    resolution_bits: int = 4
    segment_area_mm2: float = 0.0107
    vdd: float = 1.0
    string_resistance_ohm: float = 83_000.0

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError("ladder resolution must be at least 1 bit")
        if self.segment_area_mm2 <= 0 or self.string_resistance_ohm <= 0:
            raise ValueError("ladder physical parameters must be positive")
        if self.vdd <= 0:
            raise ValueError("supply voltage must be positive")

    @property
    def n_segments(self) -> int:
        """Number of resistor segments in the string."""
        return 2 ** self.resolution_bits

    @property
    def n_taps(self) -> int:
        """Number of usable reference taps (one per comparator position)."""
        return self.n_segments - 1

    @property
    def area_mm2(self) -> float:
        """Total printed area of the resistor string."""
        return self.segment_area_mm2 * self.n_segments

    @property
    def power_uw(self) -> float:
        """Static power dissipated in the string, in uW."""
        return self.vdd ** 2 / self.string_resistance_ohm * 1e6

    def reference_voltage(self, level: int) -> float:
        """Reference voltage at tap ``level`` (1-based).

        Tap ``k`` of an N-bit ladder sits at ``k / 2**N * Vdd``; an input
        above this voltage makes comparator ``k`` output '1'.
        """
        if not 1 <= level <= self.n_taps:
            raise ValueError(
                f"tap level must be in [1, {self.n_taps}] for a "
                f"{self.resolution_bits}-bit ladder, got {level}"
            )
        return self.vdd * level / self.n_segments

    def reference_voltages(self) -> list[float]:
        """All tap voltages from the lowest to the highest comparator."""
        return [self.reference_voltage(k) for k in range(1, self.n_taps + 1)]
