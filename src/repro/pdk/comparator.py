"""Analog comparator model for printed flash ADCs.

Section III-B of the paper observes two properties of the EGFET comparators
obtained from SPICE simulation of the bespoke ADCs (Fig. 3):

1. ADC area scales *linearly* with the number of retained comparators, i.e.
   every comparator occupies the same printed area.
2. Comparator power depends on the reference voltage it is biased at: the
   higher the tap on the resistor ladder, the higher the power ("the power is
   substantially decreased when lower-order outputs are selected", with an up
   to 4.4x spread for a 4-UD ADC).

The model below captures both: constant area per comparator and power that is
an affine function of the reference-level index ``k`` (1-based, level ``k``
compares against ``Vref = k / 2**resolution * vref_range``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AnalogComparatorModel:
    """Behavioral area/power model of a printed analog comparator.

    Attributes
    ----------
    area_mm2:
        Printed area of one comparator, independent of its reference level.
    power_base_uw:
        Reference-level-independent component of the comparator power.
    power_per_level_uw:
        Additional power per reference-level index (the slope of the linear
        power-vs-level trend visible in Fig. 3 of the paper).
    """

    area_mm2: float = 0.0286
    power_base_uw: float = 1.2
    power_per_level_uw: float = 3.45

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0:
            raise ValueError("comparator area must be positive")
        if self.power_base_uw < 0 or self.power_per_level_uw < 0:
            raise ValueError("comparator power coefficients must be >= 0")

    def power_uw(self, level: int) -> float:
        """Average power of the comparator biased at reference level ``level``.

        ``level`` is the 1-based tap index on the resistor ladder; for an
        N-bit flash ADC valid levels are ``1 .. 2**N - 1``.
        """
        if level < 1:
            raise ValueError(f"reference level must be >= 1, got {level}")
        return self.power_base_uw + self.power_per_level_uw * level

    def bank_power_uw(self, levels: list[int] | tuple[int, ...]) -> float:
        """Total power of a bank of comparators at the given reference levels."""
        return sum(self.power_uw(level) for level in levels)

    def bank_area_mm2(self, n_comparators: int) -> float:
        """Total area of a bank of ``n_comparators`` comparators."""
        if n_comparators < 0:
            raise ValueError("number of comparators must be >= 0")
        return self.area_mm2 * n_comparators
