"""Printed sensor power model.

Section IV argues that sensor cost is negligible next to the classifier: the
printed sensors reviewed in [1] consume about 5 uW each, so even the largest
benchmark (11 used inputs) adds less than 0.11 mW.  These small models let
the self-power analysis include that contribution explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PrintedSensor:
    """A single printed sensor characterized only by its average power."""

    name: str = "printed sensor"
    power_uw: float = 5.0

    def __post_init__(self) -> None:
        if self.power_uw < 0:
            raise ValueError("sensor power must be >= 0")

    @property
    def power_mw(self) -> float:
        """Average sensor power in mW."""
        return self.power_uw / 1000.0


@dataclass(frozen=True)
class SensorSuite:
    """A collection of identical printed sensors feeding the classifier.

    The co-design framework instantiates one sensor per *used* input feature
    of the decision tree (unused features need neither a sensor nor an ADC).
    """

    n_sensors: int
    sensor: PrintedSensor = field(default_factory=PrintedSensor)

    def __post_init__(self) -> None:
        if self.n_sensors < 0:
            raise ValueError("number of sensors must be >= 0")

    @property
    def power_uw(self) -> float:
        """Total sensor power in uW."""
        return self.n_sensors * self.sensor.power_uw

    @property
    def power_mw(self) -> float:
        """Total sensor power in mW."""
        return self.power_uw / 1000.0
