"""Baseline [2]: exact fully parallel bespoke decision trees (Mubarik et al.).

The baseline implements every decision node of the trained tree as a digital
comparator against its hardwired threshold, feeds the comparator outputs into
two-level label logic, and digitizes every used input feature with a
conventional flash ADC channel (full comparator bank + ladder) sharing a
single priority encoder.  This is the design whose accuracy and hardware the
paper reports in Table I and against which Figs. 4/5 and Table II are
normalized.
"""

from __future__ import annotations

import numpy as np

from repro.adc.frontend import ConventionalFrontEnd
from repro.adc.thermometer import level_to_binary, quantize_array_to_levels
from repro.circuits.area_power import AreaPowerReport, estimate_netlist
from repro.circuits.logic_sim import CompiledNetlist
from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import synthesize_constant_comparator, synthesize_sop
from repro.circuits.two_level import Literal, SumOfProducts
from repro.core.metrics import HardwareReport
from repro.mltrees.tree import DecisionTree, TreeNode
from repro.pdk.egfet import EGFETTechnology, default_technology


def feature_bit_variable(feature: int, bit: int) -> str:
    """Net name of binary bit ``bit`` (0 = LSB) of input ``feature``."""
    return f"I{feature}_b{bit}"


def comparator_variable(node_id: int) -> str:
    """Variable name of the comparator output of decision node ``node_id``."""
    return f"cmp_{node_id}"


def _node_paths(tree: DecisionTree) -> list[tuple[tuple[tuple[int, bool], ...], int]]:
    """Root-to-leaf paths as ``((node_id, took_right), ...), predicted class``."""
    paths: list[tuple[tuple[tuple[int, bool], ...], int]] = []

    def walk(node: TreeNode, conditions: tuple[tuple[int, bool], ...]) -> None:
        if node.is_leaf:
            paths.append((conditions, node.prediction))
            return
        walk(node.left, conditions + ((node.node_id, False),))   # type: ignore[arg-type]
        walk(node.right, conditions + ((node.node_id, True),))   # type: ignore[arg-type]

    walk(tree.root, ())
    return paths


def build_comparator_tree_netlist(
    tree: DecisionTree,
    name: str = "baseline_tree",
    per_feature_bits: dict[int, int] | None = None,
) -> Netlist:
    """Synthesize the baseline digital block of a trained tree.

    Parameters
    ----------
    tree:
        Trained quantized decision tree.
    name:
        Netlist name.
    per_feature_bits:
        Optional per-feature input precision (MSBs retained).  Used by the
        precision-scaled baseline [7]; the exact baseline [2] always uses the
        tree's full resolution.  Thresholds are truncated onto the coarser
        grid of the reduced precision, which is the approximation [7] applies.

    Returns
    -------
    Netlist
        Inputs are the binary feature bits actually needed, outputs are the
        one-hot class signals ``class_<label>``.
    """
    resolution = tree.resolution_bits
    per_feature_bits = per_feature_bits or {}
    netlist = Netlist(name)

    # Primary inputs: only the bits each comparator can observe.
    bit_nets: dict[int, list[str]] = {}
    for feature in tree.used_features():
        bits = per_feature_bits.get(feature, resolution)
        bits = min(max(int(bits), 1), resolution)
        # MSB-first list of this feature's visible bits.
        nets = [
            netlist.add_input(feature_bit_variable(feature, bit))
            for bit in range(resolution - 1, resolution - bits - 1, -1)
        ]
        bit_nets[feature] = nets

    # One digital comparator per decision node (this is what #Comp. counts).
    comparator_nets: dict[int, str] = {}
    for node in tree.decision_nodes():
        feature = node.feature
        level = node.threshold_level
        assert feature is not None and level is not None
        bits = len(bit_nets[feature])
        # Truncate the threshold onto the visible-bit grid (identity when the
        # full resolution is kept).
        shift = resolution - bits
        constant = level >> shift
        if constant == 0:
            constant = 1
        comparator_nets[node.node_id] = synthesize_constant_comparator(
            netlist, bit_nets[feature], constant, operation=">="
        )

    # Two-level label logic over the comparator outputs.
    label_logic: dict[int, SumOfProducts] = {
        label: SumOfProducts() for label in range(tree.n_classes)
    }
    for conditions, prediction in _node_paths(tree):
        term = [
            Literal(comparator_variable(node_id), positive=took_right)
            for node_id, took_right in conditions
        ]
        label_logic[prediction].add_term(term)

    variable_nets = {
        comparator_variable(node_id): net for node_id, net in comparator_nets.items()
    }
    inverted: dict[str, str] = {}
    for label in range(tree.n_classes):
        sop = label_logic[label].minimized()
        output = synthesize_sop(netlist, sop, variable_nets, inverted)
        target = f"class_{label}"
        netlist.add_gate("BUF", [output], output=target)
        netlist.add_output(target)
    netlist.validate()
    return netlist


class BaselineBespokeDesign:
    """Complete baseline [2] implementation of a trained decision tree."""

    def __init__(
        self,
        tree: DecisionTree,
        technology: EGFETTechnology | None = None,
        name: str = "baseline[2]",
    ):
        self.tree = tree
        self.technology = technology if technology is not None else default_technology()
        self.name = name
        self.netlist = build_comparator_tree_netlist(tree, name=f"{name}_digital")
        self.frontend = ConventionalFrontEnd(
            feature_indices=tree.used_features(),
            resolution_bits=tree.resolution_bits,
            technology=self.technology,
        )
        self._compiled: CompiledNetlist | None = None

    # ------------------------------------------------------------------ #
    # cost
    # ------------------------------------------------------------------ #
    def digital_report(self) -> AreaPowerReport:
        """Area/power of the comparator-tree digital block."""
        return estimate_netlist(self.netlist, self.technology)

    def hardware_report(self) -> HardwareReport:
        """Combined ADC + digital hardware report (one row of Table I)."""
        digital = self.digital_report()
        return HardwareReport(
            name=self.name,
            adc_area_mm2=self.frontend.area_mm2,
            adc_power_uw=self.frontend.power_uw,
            digital_area_mm2=digital.area_mm2,
            digital_power_uw=digital.power_uw,
            n_inputs=self.frontend.n_channels,
            n_tree_comparators=self.tree.n_decision_nodes,
            n_adc_comparators=self.frontend.n_comparators,
        )

    # ------------------------------------------------------------------ #
    # behaviour (used for netlist-vs-model equivalence)
    # ------------------------------------------------------------------ #
    def bit_assignment(self, levels) -> dict[str, bool]:
        """Binary-bit input assignment of one quantized sample."""
        assignment: dict[str, bool] = {}
        resolution = self.tree.resolution_bits
        for feature in self.tree.used_features():
            bits = level_to_binary(int(levels[feature]), resolution)
            for position, bit in enumerate(bits):   # MSB first
                weight = resolution - 1 - position
                assignment[feature_bit_variable(feature, weight)] = bool(bit)
        return assignment

    def bit_matrix(self, X_levels: np.ndarray) -> dict[str, np.ndarray]:
        """Binary-bit input vectors of a whole quantized-sample matrix.

        Batch counterpart of :meth:`bit_assignment`: every input net of the
        comparator-tree netlist maps to one boolean vector with an entry per
        sample.
        """
        X_levels = np.asarray(X_levels, dtype=np.int64)
        if X_levels.ndim != 2:
            raise ValueError("expected a 2-D matrix of quantized samples")
        resolution = self.tree.resolution_bits
        assignment: dict[str, np.ndarray] = {}
        for feature in self.tree.used_features():
            column = X_levels[:, feature]
            for weight in range(resolution):
                assignment[feature_bit_variable(feature, weight)] = (
                    (column >> weight) & 1
                ).astype(bool)
        return assignment

    def _compiled_netlist(self) -> CompiledNetlist:
        if self._compiled is None:
            self._compiled = CompiledNetlist(self.netlist)
        return self._compiled

    def __getstate__(self):
        # The compiled simulator holds resolved evaluator callables; drop the
        # cache when pickling (e.g. through the process-pool executor) and
        # let the receiving side recompile lazily.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    def netlist_predict_one_level(self, levels) -> int:
        """Class predicted by the synthesized netlist for one quantized sample."""
        levels = np.asarray(levels, dtype=np.int64)
        return int(self.netlist_predict_levels(levels[np.newaxis, :])[0])

    def netlist_predict_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Netlist predictions of a whole quantized-sample matrix in one pass.

        The netlist is compiled once and every gate evaluates all samples
        simultaneously as boolean vectors; the winning class per sample is
        the lowest active one-hot output, mirroring the scalar rule.
        """
        compiled = self._compiled_netlist()
        bits = self.bit_matrix(X_levels)
        inputs = {net: bits[net] for net in compiled.inputs}
        outputs = compiled.evaluate_outputs(inputs, n_vectors=len(X_levels))
        fired = np.column_stack(
            [
                outputs.get(f"class_{label}", np.zeros(len(X_levels), dtype=bool))
                for label in range(self.tree.n_classes)
            ]
        )
        if not fired.any(axis=1).all():
            raise ValueError("baseline netlist produced no active class output")
        return np.argmax(fired, axis=1).astype(np.int64)

    def netlist_predict(self, X: np.ndarray) -> np.ndarray:
        """Netlist predictions for raw normalized samples (verification)."""
        levels = quantize_array_to_levels(
            np.asarray(X, dtype=float), self.tree.resolution_bits
        )
        return self.netlist_predict_levels(levels)
