"""Baseline [7]: approximate bespoke decision trees via precision scaling (Balaskas et al.).

[7] approximates bespoke decision trees for tiny printed circuits by reducing
the precision of individual inputs (each comparison then needs fewer bits and
each input a smaller conventional ADC) and, when the approximation costs too
much accuracy, by using deeper trees to win it back.  The paper compares its
co-design against [7] under the same <=1 % accuracy-loss constraint
(Table II) and notes that for some benchmarks the deeper compensating trees
make [7] *larger* than the exact baseline [2].

The re-implementation follows that published description:

1. candidate trees are trained at the reference depth and slightly deeper;
2. per-input precision is reduced greedily (4 -> 3 -> 2 -> 1 bits) as long as
   the approximated tree stays within the accuracy-loss budget;
3. the accepted design is the feasible candidate with the lowest total power,
   implemented with truncated-threshold comparators and, per input, the
   smallest conventional flash ADC of the retained precision.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.adc.frontend import ConventionalFrontEnd
from repro.circuits.area_power import estimate_netlist
from repro.core.metrics import HardwareReport
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import accuracy_score
from repro.mltrees.tree import DecisionTree
from repro.baselines.mubarik import build_comparator_tree_netlist
from repro.pdk.egfet import EGFETTechnology, default_technology


def approximate_tree(tree: DecisionTree, per_feature_bits: dict[int, int]) -> DecisionTree:
    """Snap every threshold of ``tree`` onto the coarser grid of its feature.

    Reducing input ``f`` to ``b`` bits keeps only its ``b`` most significant
    bits, so a full-resolution threshold ``k`` becomes
    ``max(k >> (R - b), 1) << (R - b)`` -- the same truncation the hardware
    comparator applies in :func:`build_comparator_tree_netlist`.
    """
    resolution = tree.resolution_bits
    clone = copy.deepcopy(tree)
    for node in clone.decision_nodes():
        feature = node.feature
        assert feature is not None and node.threshold_level is not None
        bits = int(per_feature_bits.get(feature, resolution))
        bits = min(max(bits, 1), resolution)
        shift = resolution - bits
        if shift == 0:
            continue
        node.threshold_level = max(node.threshold_level >> shift, 1) << shift
    return clone


@dataclass
class BalaskasApproximateDesign:
    """A fitted approximate design: tree, per-input precision and hardware."""

    tree: DecisionTree
    per_feature_bits: dict[int, int]
    accuracy: float
    depth: int
    technology: EGFETTechnology = field(default_factory=default_technology)
    name: str = "approximate[7]"

    def frontend(self) -> ConventionalFrontEnd:
        """Per-input smallest suitable conventional ADCs plus shared encoder."""
        return ConventionalFrontEnd(
            feature_indices=self.tree.used_features(),
            resolution_bits=self.tree.resolution_bits,
            technology=self.technology,
            per_input_resolution=self.per_feature_bits,
        )

    def hardware_report(self) -> HardwareReport:
        """Combined ADC + digital hardware report for the approximate design."""
        netlist = build_comparator_tree_netlist(
            self.tree, name=f"{self.name}_digital"
        )
        digital = estimate_netlist(netlist, self.technology)
        frontend = self.frontend()
        return HardwareReport(
            name=self.name,
            adc_area_mm2=frontend.area_mm2,
            adc_power_uw=frontend.power_uw,
            digital_area_mm2=digital.area_mm2,
            digital_power_uw=digital.power_uw,
            n_inputs=frontend.n_channels,
            n_tree_comparators=self.tree.n_decision_nodes,
            n_adc_comparators=frontend.n_comparators,
        )


def _greedy_precision_scaling(
    tree: DecisionTree,
    X_test_levels: np.ndarray,
    y_test: np.ndarray,
    accuracy_floor: float,
    resolution_bits: int,
) -> tuple[dict[int, int], float]:
    """Greedily reduce per-input precision while staying above ``accuracy_floor``.

    Returns the accepted per-feature bit widths and the accuracy of the final
    approximated tree.
    """
    bits = {feature: resolution_bits for feature in tree.used_features()}
    accuracy = accuracy_score(
        y_test, approximate_tree(tree, bits).predict_levels(X_test_levels)
    )
    improved = True
    while improved:
        improved = False
        for feature in sorted(bits):
            if bits[feature] <= 1:
                continue
            trial = dict(bits)
            trial[feature] = bits[feature] - 1
            trial_accuracy = accuracy_score(
                y_test, approximate_tree(tree, trial).predict_levels(X_test_levels)
            )
            if trial_accuracy >= accuracy_floor:
                bits = trial
                accuracy = trial_accuracy
                improved = True
    return bits, accuracy


def fit_balaskas_design(
    X_train_levels: np.ndarray,
    y_train: np.ndarray,
    X_test_levels: np.ndarray,
    y_test: np.ndarray,
    n_classes: int,
    reference_accuracy: float,
    reference_depth: int,
    max_accuracy_loss: float = 0.01,
    resolution_bits: int = 4,
    extra_depth: int = 2,
    max_depth: int = 10,
    technology: EGFETTechnology | None = None,
    seed: int = 0,
) -> BalaskasApproximateDesign:
    """Fit the approximate baseline [7] under an accuracy-loss budget.

    Parameters
    ----------
    X_train_levels, y_train, X_test_levels, y_test:
        Quantized train/test partitions.
    n_classes:
        Number of classes.
    reference_accuracy, reference_depth:
        Accuracy and depth of the exact baseline [2]; the accuracy-loss
        budget is measured against ``reference_accuracy`` and candidate trees
        may be up to ``extra_depth`` levels deeper than ``reference_depth``.
    max_accuracy_loss:
        Allowed absolute accuracy drop (e.g. 0.01 for the 1 % of Table II).
    resolution_bits:
        Full input precision (4 bits in the paper).
    technology:
        EGFET technology used for costing the candidates.
    seed:
        Training seed.
    """
    technology = technology if technology is not None else default_technology()
    accuracy_floor = reference_accuracy - max_accuracy_loss

    candidate_depths = range(
        max(1, reference_depth),
        min(max_depth, reference_depth + extra_depth) + 1,
    )
    best: BalaskasApproximateDesign | None = None
    best_power = float("inf")
    fallback: BalaskasApproximateDesign | None = None
    fallback_accuracy = -1.0

    for depth in candidate_depths:
        trainer = CARTTrainer(
            max_depth=depth, resolution_bits=resolution_bits, seed=seed
        )
        tree = trainer.fit(X_train_levels, y_train, n_classes)
        exact_accuracy = accuracy_score(y_test, tree.predict_levels(X_test_levels))

        bits, accuracy = _greedy_precision_scaling(
            tree, X_test_levels, y_test, accuracy_floor, resolution_bits
        )
        design = BalaskasApproximateDesign(
            tree=approximate_tree(tree, bits),
            per_feature_bits=bits,
            accuracy=accuracy,
            depth=depth,
            technology=technology,
        )
        if accuracy >= accuracy_floor:
            power = design.hardware_report().total_power_uw
            if power < best_power:
                best = design
                best_power = power
        # Track the most accurate candidate as a fallback when nothing meets
        # the budget (mirrors [7] accepting the loss it cannot recover).
        candidate_best_accuracy = max(accuracy, exact_accuracy)
        if candidate_best_accuracy > fallback_accuracy:
            fallback_accuracy = candidate_best_accuracy
            fallback = design if accuracy >= exact_accuracy else BalaskasApproximateDesign(
                tree=tree,
                per_feature_bits={f: resolution_bits for f in tree.used_features()},
                accuracy=exact_accuracy,
                depth=depth,
                technology=technology,
            )

    chosen = best if best is not None else fallback
    assert chosen is not None, "at least one candidate design is always produced"
    return chosen
