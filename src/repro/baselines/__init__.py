"""State-of-the-art baselines the paper compares against.

* :mod:`repro.baselines.mubarik` -- [2] Mubarik et al., MICRO 2020: exact
  fully parallel bespoke decision trees.  Every decision node is a digital
  comparator against a hardwired threshold, inputs arrive as binary words
  from conventional flash ADCs (per-input comparator banks plus a shared
  priority encoder).  This is the evaluation baseline of Table I.
* :mod:`repro.baselines.balaskas` -- [7] Balaskas et al., ISQED 2022:
  approximate bespoke decision trees obtained by per-input precision scaling
  (each input keeps only as many bits as needed to stay within the accuracy
  budget), paired with the smallest suitable conventional ADC per input and,
  when required, deeper trees to compensate the approximation-induced
  accuracy loss.
"""

from repro.baselines.mubarik import BaselineBespokeDesign, build_comparator_tree_netlist
from repro.baselines.balaskas import BalaskasApproximateDesign, fit_balaskas_design

__all__ = [
    "BaselineBespokeDesign",
    "build_comparator_tree_netlist",
    "BalaskasApproximateDesign",
    "fit_balaskas_design",
]
