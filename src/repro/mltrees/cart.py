"""Conventional (ADC-unaware) greedy Gini decision-tree trainer.

This is the trainer used for the baseline bespoke decision trees of [2]: at
every node the split with the best (minimum) weighted Gini score is chosen,
with ties broken uniformly at random -- which is exactly the behaviour the
paper contrasts Algorithm 1 against ("ADC-unaware training would randomly
select one combination among those with the best Gini score").

The baseline protocol of Section IV ("the minimum tree depth, up to 8, that
achieves the maximum accuracy is used") is implemented by
:func:`fit_baseline_tree`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.mltrees.evaluation import accuracy_score
from repro.mltrees.split_search import (
    CandidateTable,
    SplitCandidate,
    class_histogram,
    enumerate_split_candidates,
)
from repro.mltrees.tree import DecisionTree, TreeNode

#: Gini scores closer than this are considered equal for tie-breaking.
GINI_TIE_TOLERANCE = 1e-12


class CARTTrainer:
    """Greedy Gini (CART-style) trainer on quantized features.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (number of comparisons along the longest path).
    resolution_bits:
        Input quantization; candidate thresholds are the ADC levels
        ``1 .. 2**resolution_bits - 1``.
    min_samples_leaf:
        Minimum number of training samples each child of a split must hold.
    min_samples_split:
        Minimum number of samples a node must hold to be split further.
    seed:
        Seed of the tie-breaking RNG (training is fully reproducible).
    training_sigma:
        Comparator input-offset sigma assumed during training, as a fraction
        of the ADC full scale (``sigma_volts / vdd``).  With
        ``robustness_weight > 0`` the expected fraction of node samples
        whose comparator digit flips at this sigma is added to every
        candidate's split score, steering thresholds away from dense sample
        regions (offset-aware training).
    robustness_weight:
        Weight of the expected-flip penalty: the split score becomes
        ``gini + robustness_weight * expected_flips``.  The penalty is only
        active when both ``robustness_weight`` and ``training_sigma`` are
        positive (``training_sigma`` defaults to 0, so a bare trainer is
        nominal); at ``robustness_weight=0`` the trainer is bit-identical
        -- same trees, same RNG consumption -- to the nominal Gini trainer
        whatever the sigma.
    """

    def __init__(
        self,
        max_depth: int = 8,
        resolution_bits: int = 4,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        seed: int = 0,
        training_sigma: float = 0.0,
        robustness_weight: float = 1.0,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if resolution_bits < 1:
            raise ValueError("resolution_bits must be at least 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        if training_sigma < 0:
            raise ValueError("training_sigma must be >= 0")
        if robustness_weight < 0:
            raise ValueError("robustness_weight must be >= 0")
        self.max_depth = max_depth
        self.resolution_bits = resolution_bits
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.seed = seed
        self.training_sigma = training_sigma
        self.robustness_weight = robustness_weight

    @property
    def offset_aware(self) -> bool:
        """Whether the expected-flip penalty participates in split scoring."""
        return self.robustness_weight > 0 and self.training_sigma > 0

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, X_levels: np.ndarray, y: np.ndarray, n_classes: int | None = None) -> DecisionTree:
        """Train a tree on quantized features.

        Parameters
        ----------
        X_levels:
            Quantized feature matrix (integer levels).
        y:
            Integer class labels in ``[0, n_classes - 1]``.
        n_classes:
            Number of classes (inferred from ``y`` when omitted).
        """
        X_levels = np.asarray(X_levels, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        if X_levels.ndim != 2:
            raise ValueError("X_levels must be a 2-D matrix")
        if len(X_levels) != len(y):
            raise ValueError("X_levels and y must have the same number of samples")
        if len(y) == 0:
            raise ValueError("cannot train on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        n_levels = 2 ** self.resolution_bits
        if X_levels.min() < 0 or X_levels.max() >= n_levels:
            raise ValueError(
                f"quantized levels must lie in [0, {n_levels - 1}] "
                f"for {self.resolution_bits}-bit inputs"
            )

        rng = random.Random(self.seed)
        node_counter = [0]

        def build(indices: np.ndarray, depth: int) -> TreeNode:
            counts = class_histogram(y[indices], n_classes)
            prediction = int(np.argmax(counts))
            node = TreeNode(
                node_id=node_counter[0],
                prediction=prediction,
                n_samples=int(indices.size),
                class_counts=tuple(int(c) for c in counts),
                depth=depth,
            )
            node_counter[0] += 1

            is_pure = int(np.count_nonzero(counts)) <= 1
            if depth >= self.max_depth or is_pure or indices.size < self.min_samples_split:
                return node

            candidates = self._node_candidates(X_levels, y, indices, n_classes, n_levels)
            if not candidates:
                return node

            split = self._select_split(candidates, rng)
            mask = X_levels[indices, split.feature] >= split.threshold_level
            right_indices = indices[mask]
            left_indices = indices[~mask]
            if left_indices.size == 0 or right_indices.size == 0:
                return node

            node.feature = split.feature
            node.threshold_level = split.threshold_level
            node.left = build(left_indices, depth + 1)
            node.right = build(right_indices, depth + 1)
            return node

        root = build(np.arange(len(y)), 0)
        return DecisionTree(
            root=root,
            n_features=X_levels.shape[1],
            n_classes=n_classes,
            resolution_bits=self.resolution_bits,
        )

    # ------------------------------------------------------------------ #
    # split enumeration / selection policy (overridden by hardware-aware
    # trainers and by the legacy reference trainers)
    # ------------------------------------------------------------------ #
    def _node_candidates(
        self,
        X_levels: np.ndarray,
        y: np.ndarray,
        indices: np.ndarray,
        n_classes: int,
        n_levels: int,
    ) -> CandidateTable:
        """Candidate splits of one node as a columnar table."""
        return enumerate_split_candidates(
            X_levels, y, indices, n_classes, n_levels, self.min_samples_leaf,
            flip_sigma=self.training_sigma if self.offset_aware else None,
        )

    def _split_scores(self, candidates: CandidateTable) -> np.ndarray:
        """Per-candidate split score the selection minimizes.

        Nominal Gini unless the trainer is offset-aware, in which case the
        analytic expected-flip fraction joins as a weighted penalty.  With
        ``robustness_weight == 0`` this returns the Gini column itself --
        not a copy -- so the nominal path stays bit-identical to the
        pre-offset-aware trainer.
        """
        if not self.offset_aware:
            return candidates.gini
        return candidates.gini + self.robustness_weight * candidates.expected_flips

    def _select_split(
        self, candidates: CandidateTable, rng: random.Random
    ) -> SplitCandidate:
        """Pick the best-score candidate, breaking ties uniformly at random.

        Array reductions over the columnar table; ``rng`` consumption matches
        the historical list-based scan exactly (one draw over the tied set),
        so seeded trainings are bit-identical to the pre-columnar trainer.
        """
        scores = self._split_scores(candidates)
        tied = np.nonzero(scores <= scores.min() + GINI_TIE_TOLERANCE)[0]
        return candidates.candidate(rng.choice(tied.tolist()))


@dataclass(frozen=True)
class BaselineFitResult:
    """Result of the baseline depth-selection protocol."""

    tree: DecisionTree
    depth: int
    train_accuracy: float
    test_accuracy: float
    accuracy_by_depth: dict[int, float]


def fit_baseline_tree(
    X_train_levels: np.ndarray,
    y_train: np.ndarray,
    X_test_levels: np.ndarray,
    y_test: np.ndarray,
    n_classes: int,
    max_depth: int = 8,
    resolution_bits: int = 4,
    seed: int = 0,
) -> BaselineFitResult:
    """Baseline protocol of Section IV: minimum depth achieving maximum accuracy.

    Trains one conventional tree per depth in ``1 .. max_depth`` and returns
    the shallowest tree whose test accuracy equals the best observed test
    accuracy (less hardware for the same quality).
    """
    accuracy_by_depth: dict[int, float] = {}
    trees: dict[int, DecisionTree] = {}
    for depth in range(1, max_depth + 1):
        trainer = CARTTrainer(
            max_depth=depth, resolution_bits=resolution_bits, seed=seed
        )
        tree = trainer.fit(X_train_levels, y_train, n_classes)
        trees[depth] = tree
        accuracy_by_depth[depth] = accuracy_score(
            y_test, tree.predict_levels(X_test_levels)
        )
    best_accuracy = max(accuracy_by_depth.values())
    best_depth = min(
        depth
        for depth, accuracy in accuracy_by_depth.items()
        if accuracy >= best_accuracy - 1e-12
    )
    chosen = trees[best_depth]
    return BaselineFitResult(
        tree=chosen,
        depth=best_depth,
        train_accuracy=accuracy_score(y_train, chosen.predict_levels(X_train_levels)),
        test_accuracy=accuracy_by_depth[best_depth],
        accuracy_by_depth=accuracy_by_depth,
    )
