"""Human-readable rendering of trained decision trees.

Two views are provided:

* :func:`render_tree_text` -- an indented text dump (feature names, grid
  thresholds, per-node class counts), useful in logs and examples;
* :func:`tree_to_dot` -- a Graphviz DOT description for documentation and
  debugging of the generated hardware (each decision node is one unary digit
  read in the proposed architecture).
"""

from __future__ import annotations

from repro.mltrees.tree import DecisionTree, TreeNode


def _feature_label(feature: int, feature_names: list[str] | None) -> str:
    if feature_names is not None and 0 <= feature < len(feature_names):
        return feature_names[feature]
    return f"I{feature}"


def _class_label(label: int, class_names: list[str] | None) -> str:
    if class_names is not None and 0 <= label < len(class_names):
        return class_names[label]
    return f"class {label}"


def render_tree_text(
    tree: DecisionTree,
    feature_names: list[str] | None = None,
    class_names: list[str] | None = None,
) -> str:
    """Render ``tree`` as an indented text diagram."""
    scale = 2 ** tree.resolution_bits
    lines: list[str] = []

    def walk(node: TreeNode, indent: int, prefix: str) -> None:
        pad = "  " * indent
        if node.is_leaf:
            lines.append(
                f"{pad}{prefix}-> {_class_label(node.prediction, class_names)} "
                f"(n={node.n_samples}, counts={list(node.class_counts)})"
            )
            return
        feature = _feature_label(node.feature, feature_names)  # type: ignore[arg-type]
        threshold = node.threshold_level / scale  # type: ignore[operator]
        lines.append(
            f"{pad}{prefix}{feature} >= {threshold:.4g} "
            f"(level {node.threshold_level}, n={node.n_samples})"
        )
        walk(node.left, indent + 1, "[no ] ")   # type: ignore[arg-type]
        walk(node.right, indent + 1, "[yes] ")  # type: ignore[arg-type]

    walk(tree.root, 0, "")
    return "\n".join(lines)


def tree_to_dot(
    tree: DecisionTree,
    feature_names: list[str] | None = None,
    class_names: list[str] | None = None,
    graph_name: str = "decision_tree",
) -> str:
    """Render ``tree`` as a Graphviz DOT digraph."""
    scale = 2 ** tree.resolution_bits
    lines = [f"digraph {graph_name} {{", "  node [shape=box, fontsize=10];"]

    def walk(node: TreeNode) -> None:
        if node.is_leaf:
            label = (
                f"{_class_label(node.prediction, class_names)}\\n"
                f"n={node.n_samples}"
            )
            lines.append(
                f'  n{node.node_id} [label="{label}", style=filled, fillcolor=lightgrey];'
            )
            return
        feature = _feature_label(node.feature, feature_names)  # type: ignore[arg-type]
        threshold = node.threshold_level / scale  # type: ignore[operator]
        label = f"{feature} >= {threshold:.4g}\\nlevel {node.threshold_level}"
        lines.append(f'  n{node.node_id} [label="{label}"];')
        assert node.left is not None and node.right is not None
        lines.append(f'  n{node.node_id} -> n{node.left.node_id} [label="no"];')
        lines.append(f'  n{node.node_id} -> n{node.right.node_id} [label="yes"];')
        walk(node.left)
        walk(node.right)

    walk(tree.root)
    lines.append("}")
    return "\n".join(lines) + "\n"
