"""Decision-tree data structures and prediction.

Trees operate on *quantized levels*: every feature value is an integer in
``[0, 2**resolution_bits - 1]`` (the output level of the flash ADC channel
for that feature) and every split threshold is an integer level ``k`` in
``[1, 2**resolution_bits - 1]``.  A node routes a sample to its **right**
child when ``x[feature] >= k`` -- exactly the comparison that a single unary
digit ``I[k]`` implements in the parallel unary architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adc.thermometer import quantize_array_to_levels


@dataclass
class TreeNode:
    """One node of a decision tree.

    Decision nodes carry ``feature`` and ``threshold_level``; leaves carry
    only the majority-class ``prediction``.  Every node stores the class
    histogram of the training samples that reached it, which the trainers use
    for majority votes and which makes the tree self-describing.
    """

    node_id: int
    prediction: int
    n_samples: int
    class_counts: tuple[int, ...]
    feature: int | None = None
    threshold_level: int | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split (no children)."""
        return self.feature is None

    def threshold_value(self, resolution_bits: int) -> float:
        """Threshold expressed on the normalized ``[0, 1]`` scale."""
        if self.threshold_level is None:
            raise ValueError(f"node {self.node_id} is a leaf and has no threshold")
        return self.threshold_level / (2 ** resolution_bits)


class DecisionTree:
    """A trained, quantized decision-tree classifier."""

    def __init__(
        self,
        root: TreeNode,
        n_features: int,
        n_classes: int,
        resolution_bits: int = 4,
    ):
        if n_features < 1:
            raise ValueError("a decision tree needs at least one input feature")
        if n_classes < 2:
            raise ValueError("a classifier needs at least two classes")
        if resolution_bits < 1:
            raise ValueError("resolution must be at least 1 bit")
        self.root = root
        self.n_features = n_features
        self.n_classes = n_classes
        self.resolution_bits = resolution_bits

    def __eq__(self, other: object) -> bool:
        """Structural equality: same shape, splits, predictions and metadata.

        Lets higher-level records embedding trees (``DesignPoint``,
        ``CoDesignResult``) compare by value, e.g. when asserting that
        serial and parallel experiment runs produce identical results.
        """
        if not isinstance(other, DecisionTree):
            return NotImplemented
        return (
            self.n_features == other.n_features
            and self.n_classes == other.n_classes
            and self.resolution_bits == other.resolution_bits
            and self.root == other.root
        )

    __hash__ = None  # structural equality makes trees unhashable (like TreeNode)

    def __getstate__(self):
        """Pickle the tree without runtime caches.

        :func:`repro.core.bitkernel.compile_tree_kernel` memoizes the
        compiled bit-parallel kernel on the tree instance; stripping it here
        keeps store entries and executor transport lean (the kernel is cheap
        to recompile and derives entirely from the tree structure).
        """
        state = dict(self.__dict__)
        state.pop("_compiled_bitkernel", None)
        return state

    # ------------------------------------------------------------------ #
    # traversal helpers
    # ------------------------------------------------------------------ #
    def nodes(self) -> list[TreeNode]:
        """All nodes in pre-order."""
        result: list[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.append(node)
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]
        return result

    def decision_nodes(self) -> list[TreeNode]:
        """All internal (splitting) nodes."""
        return [node for node in self.nodes() if not node.is_leaf]

    def leaves(self) -> list[TreeNode]:
        """All leaf nodes."""
        return [node for node in self.nodes() if node.is_leaf]

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return len(self.nodes())

    @property
    def n_decision_nodes(self) -> int:
        """Number of comparison nodes (the ``#Comp.`` column of Table I)."""
        return len(self.decision_nodes())

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return len(self.leaves())

    @property
    def depth(self) -> int:
        """Depth of the tree (a lone leaf has depth 0)."""
        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))  # type: ignore[arg-type]

        return walk(self.root)

    # ------------------------------------------------------------------ #
    # model structure queries
    # ------------------------------------------------------------------ #
    def comparisons(self) -> list[tuple[int, int]]:
        """``(feature, threshold_level)`` of every decision node (with repeats)."""
        return [
            (node.feature, node.threshold_level)  # type: ignore[misc]
            for node in self.decision_nodes()
        ]

    def unique_comparisons(self) -> list[tuple[int, int]]:
        """Sorted unique ``(feature, threshold_level)`` pairs."""
        return sorted(set(self.comparisons()))

    def used_features(self) -> list[int]:
        """Sorted indices of features referenced by at least one split."""
        return sorted({feature for feature, _ in self.comparisons()})

    def required_levels(self) -> dict[int, tuple[int, ...]]:
        """Per used feature, the sorted unary-digit levels the tree consumes.

        This is precisely the set of comparators each bespoke ADC must retain
        (Section III-B).
        """
        levels: dict[int, set[int]] = {}
        for feature, level in self.comparisons():
            levels.setdefault(feature, set()).add(level)
        return {feature: tuple(sorted(values)) for feature, values in sorted(levels.items())}

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict_one_level(self, levels) -> int:
        """Predict the class of a single sample given as quantized levels."""
        node = self.root
        while not node.is_leaf:
            if levels[node.feature] >= node.threshold_level:  # type: ignore[index]
                node = node.right  # type: ignore[assignment]
            else:
                node = node.left  # type: ignore[assignment]
        return node.prediction

    def predict_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Predict classes for a matrix of quantized samples (vectorized)."""
        X_levels = np.asarray(X_levels)
        if X_levels.ndim != 2:
            raise ValueError("expected a 2-D matrix of quantized samples")
        predictions = np.empty(len(X_levels), dtype=np.int64)

        def walk(node: TreeNode, indices: np.ndarray) -> None:
            if indices.size == 0:
                return
            if node.is_leaf:
                predictions[indices] = node.prediction
                return
            mask = X_levels[indices, node.feature] >= node.threshold_level
            walk(node.right, indices[mask])  # type: ignore[arg-type]
            walk(node.left, indices[~mask])  # type: ignore[arg-type]

        walk(self.root, np.arange(len(X_levels)))
        return predictions

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict classes for raw, normalized samples in ``[0, 1]``."""
        levels = quantize_array_to_levels(np.asarray(X, dtype=float), self.resolution_bits)
        return self.predict_levels(levels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionTree(depth={self.depth}, decision_nodes={self.n_decision_nodes}, "
            f"leaves={self.n_leaves}, features={self.n_features}, "
            f"classes={self.n_classes}, bits={self.resolution_bits})"
        )
