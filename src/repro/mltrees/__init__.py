"""Decision-tree substrate: data structures, Gini/CART training, quantization.

The paper's classifiers are axis-aligned decision trees trained with the Gini
index on inputs normalized to ``[0, 1]`` and quantized to 4 bits.  Everything
is implemented from scratch (no scikit-learn) so the ADC-aware trainer of the
co-design core can reuse the same split-scoring machinery:

* :mod:`repro.mltrees.tree` -- tree node / tree containers and prediction,
* :mod:`repro.mltrees.gini` -- Gini impurity utilities,
* :mod:`repro.mltrees.split_search` -- vectorized enumeration of candidate
  splits (feature, quantized threshold) with their Gini scores,
* :mod:`repro.mltrees.cart` -- the conventional (ADC-unaware) greedy trainer
  used by the baseline [2],
* :mod:`repro.mltrees.quantize` -- fixed-point feature/threshold quantization,
* :mod:`repro.mltrees.evaluation` -- accuracy, stratified splitting,
* :mod:`repro.mltrees.export` -- comparison lists, decision paths and
  per-feature required unary digits extracted from a trained tree.
"""

from repro.mltrees.tree import DecisionTree, TreeNode
from repro.mltrees.gini import gini_impurity, weighted_gini
from repro.mltrees.split_search import (
    CandidateTable,
    SplitCandidate,
    best_gini,
    enumerate_split_candidates,
)
from repro.mltrees.cart import CARTTrainer, fit_baseline_tree
from repro.mltrees.quantize import quantize_dataset, level_to_value
from repro.mltrees.evaluation import accuracy_score, confusion_matrix, train_test_split
from repro.mltrees.export import (
    ComparisonSummary,
    DecisionPath,
    comparisons_summary,
    tree_to_paths,
)
from repro.mltrees.render import render_tree_text, tree_to_dot

__all__ = [
    "DecisionTree",
    "TreeNode",
    "gini_impurity",
    "weighted_gini",
    "CandidateTable",
    "SplitCandidate",
    "best_gini",
    "enumerate_split_candidates",
    "CARTTrainer",
    "fit_baseline_tree",
    "quantize_dataset",
    "level_to_value",
    "accuracy_score",
    "confusion_matrix",
    "train_test_split",
    "ComparisonSummary",
    "DecisionPath",
    "comparisons_summary",
    "tree_to_paths",
    "render_tree_text",
    "tree_to_dot",
]
