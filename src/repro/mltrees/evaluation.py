"""Model evaluation utilities: accuracy, confusion matrix, stratified splitting.

The paper's protocol is a random 70 %/30 % train/test split on inputs
normalized to ``[0, 1]``; this module provides the (seeded, stratified)
splitting and the metrics used throughout the evaluation, plus the
``engine`` dispatch that lets every evaluation call opt into the
bit-parallel packed-uint64 kernel (:mod:`repro.core.bitkernel`) instead of
the default ndarray batch path.
"""

from __future__ import annotations

import numpy as np

#: Prediction engines accepted by :func:`predict_levels_with_engine`:
#: ``"batch"`` walks the tree with vectorized index masks (the default);
#: ``"bitparallel"`` evaluates the tree's two-level cube logic as packed
#: uint64 bitwise ops, 64 samples per machine word.  The two are
#: bit-identical -- the engine is an execution detail, never part of an
#: experiment configuration or cache key.
ENGINES: tuple[str, ...] = ("batch", "bitparallel")


def resolve_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def level_predictor(tree, engine: str = "batch"):
    """Resolve ``(tree, engine)`` to a levels->labels prediction callable.

    Returns a function mapping an ``(n_samples, n_features)`` quantized-level
    matrix to predicted labels.  Resolving once hoists the engine dispatch
    (and, for ``"bitparallel"``, the kernel compilation) out of hot loops:
    the serving scorer calls the resolved predictor once per flush with zero
    per-call dispatch overhead.  Both engines are bit-identical.
    """
    resolve_engine(engine)
    if engine == "bitparallel":
        # Local import: the kernel lives in core (which imports mltrees).
        from repro.core.bitkernel import compile_tree_kernel

        return compile_tree_kernel(tree).predict_levels
    return tree.predict_levels


def predict_levels_with_engine(tree, X_levels: np.ndarray, engine: str = "batch") -> np.ndarray:
    """Predict quantized samples through the selected inference engine.

    ``tree`` is a trained :class:`~repro.mltrees.tree.DecisionTree`.  With
    ``engine="bitparallel"`` the tree is compiled (once, cached on the tree
    instance) into per-class packed-word cube masks and evaluated 64 samples
    per uint64 word; predictions are bit-identical to ``tree.predict_levels``
    either way, so switching engines never changes results.
    """
    return level_predictor(tree, engine)(X_levels)


def evaluate_tree_accuracy(
    tree, X_levels: np.ndarray, y: np.ndarray, engine: str = "batch"
) -> float:
    """Test accuracy of a trained tree through the selected engine."""
    return accuracy_score(y, predict_levels_with_engine(tree, X_levels, engine=engine))


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly classified samples."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch between labels {y_true.shape} and predictions {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of an empty label vector")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = samples of true class ``i`` predicted ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("labels and predictions must have the same shape")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.3,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(X, y)`` into train and test partitions.

    Parameters
    ----------
    X, y:
        Feature matrix and label vector.
    test_size:
        Fraction of samples assigned to the test partition (paper: 0.3).
    seed:
        Seed of the shuffling RNG; splits are fully reproducible.
    stratify:
        When True (default) each class is split independently so the class
        balance of the partitions matches the full dataset -- important for
        the small benchmark datasets.

    Returns
    -------
    (X_train, X_test, y_train, y_test)
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must contain the same number of samples")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be strictly between 0 and 1")
    rng = np.random.default_rng(seed)

    test_indices: list[np.ndarray] = []
    train_indices: list[np.ndarray] = []
    if stratify:
        for label in np.unique(y):
            members = np.nonzero(y == label)[0]
            members = rng.permutation(members)
            n_test = int(round(len(members) * test_size))
            n_test = min(max(n_test, 1 if len(members) > 1 else 0), len(members) - 1)
            test_indices.append(members[:n_test])
            train_indices.append(members[n_test:])
    else:
        order = rng.permutation(len(y))
        n_test = int(round(len(y) * test_size))
        test_indices.append(order[:n_test])
        train_indices.append(order[n_test:])

    test_idx = np.concatenate(test_indices) if test_indices else np.array([], dtype=int)
    train_idx = np.concatenate(train_indices) if train_indices else np.array([], dtype=int)
    test_idx = rng.permutation(test_idx)
    train_idx = rng.permutation(train_idx)
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
