"""Vectorized enumeration of candidate splits on quantized features.

Both the conventional CART trainer and the ADC-aware trainer (Algorithm 1 of
the paper) need, at every node, the Gini score of **every** candidate
``(feature, threshold)`` pair -- the ADC-aware variant because it builds the
tolerance set ``S = {(Ii, C) | Gini(Ii, C) <= G + tau}`` from them.

Because the inputs are quantized to ``2**resolution_bits`` levels, each
feature has at most ``2**resolution_bits - 1`` distinct thresholds, so the
candidate enumeration is computed from per-level class histograms with a
single cumulative sum per feature (no per-threshold re-partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SplitCandidate:
    """One candidate split and its quality.

    Splitting sends samples with ``x[feature] >= threshold_level`` to the
    right child and the rest to the left child.
    """

    feature: int
    threshold_level: int
    gini: float
    n_left: int
    n_right: int


def class_histogram(y: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-class sample counts of a label vector."""
    return np.bincount(y, minlength=n_classes).astype(np.int64)


def enumerate_split_candidates(
    X_levels: np.ndarray,
    y: np.ndarray,
    indices: np.ndarray,
    n_classes: int,
    n_levels: int,
    min_samples_leaf: int = 1,
) -> list[SplitCandidate]:
    """Enumerate every valid split of the node containing ``indices``.

    Parameters
    ----------
    X_levels:
        Full quantized feature matrix, shape ``(n_samples, n_features)``,
        integer levels in ``[0, n_levels - 1]``.
    y:
        Full label vector, integer classes in ``[0, n_classes - 1]``.
    indices:
        Row indices of the samples that reached the node.
    n_classes:
        Number of classes in the task.
    n_levels:
        Number of quantization levels (``2**resolution_bits``).
    min_samples_leaf:
        A split is only valid when both children receive at least this many
        samples.

    Returns
    -------
    list[SplitCandidate]
        All valid candidates, ordered by ``(feature, threshold_level)``.
        Candidates are reported only for thresholds that actually separate
        the node's samples ("C value in dataset" in Algorithm 1), i.e. both
        children are non-empty.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        return []
    y_node = y[indices]
    n_node = indices.size
    candidates: list[SplitCandidate] = []
    thresholds = np.arange(1, n_levels)  # k = 1 .. n_levels - 1

    for feature in range(X_levels.shape[1]):
        values = X_levels[indices, feature]
        # hist[level, class] = number of node samples at that level and class
        flat = np.bincount(
            values * n_classes + y_node, minlength=n_levels * n_classes
        )
        hist = flat.reshape(n_levels, n_classes)
        total_counts = hist.sum(axis=0)
        # left child of threshold k = samples with level < k
        cumulative = np.cumsum(hist, axis=0)
        left_counts = cumulative[thresholds - 1]          # shape (n_thresholds, C)
        right_counts = total_counts[None, :] - left_counts
        n_left = left_counts.sum(axis=1)
        n_right = right_counts.sum(axis=1)

        valid = (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
        if not np.any(valid):
            continue

        with np.errstate(divide="ignore", invalid="ignore"):
            gini_left = 1.0 - np.sum(
                (left_counts / np.maximum(n_left, 1)[:, None]) ** 2, axis=1
            )
            gini_right = 1.0 - np.sum(
                (right_counts / np.maximum(n_right, 1)[:, None]) ** 2, axis=1
            )
        weighted = (n_left * gini_left + n_right * gini_right) / n_node

        for position in np.nonzero(valid)[0]:
            candidates.append(
                SplitCandidate(
                    feature=feature,
                    threshold_level=int(thresholds[position]),
                    gini=float(weighted[position]),
                    n_left=int(n_left[position]),
                    n_right=int(n_right[position]),
                )
            )
    return candidates


def best_gini(candidates: list[SplitCandidate]) -> float:
    """Minimum Gini score among ``candidates`` (``inf`` when empty)."""
    if not candidates:
        return float("inf")
    return min(candidate.gini for candidate in candidates)
