"""Columnar enumeration of candidate splits on quantized features.

Both the conventional CART trainer and the ADC-aware trainer (Algorithm 1 of
the paper) need, at every node, the Gini score of **every** candidate
``(feature, threshold)`` pair -- the ADC-aware variant because it builds the
tolerance set ``S = {(Ii, C) | Gini(Ii, C) <= G + tau}`` from them.

Because the inputs are quantized to ``2**resolution_bits`` levels, each
feature has at most ``2**resolution_bits - 1`` distinct thresholds, so the
whole candidate set of a node is computed from one ``(feature, level,
class)`` histogram -- a single ``bincount`` over all features at once -- and
one cumulative sum.  The result is a :class:`CandidateTable` of parallel
ndarrays (``feature``, ``threshold_level``, ``gini``, ``n_left``,
``n_right``): no per-feature Python loop and no per-candidate object
construction.  Trainers select splits with array reductions over the table;
:class:`SplitCandidate` objects are only materialized on demand through the
table's sequence-compatibility view (iteration, indexing, equality against
candidate lists), which keeps object-based callers working unchanged.

Offset-aware training reuses the very same histogram pass: when a
``flip_sigma`` is requested, :func:`enumerate_split_candidates` additionally
fills two robustness columns per candidate --

* ``margin``: normalized distance from the comparator threshold to the
  nearest sample in the node (a threshold in a dense sample region has a
  tiny margin and is fragile under comparator input offsets), and
* ``expected_flips``: the expected fraction of the node's samples whose
  comparator digit flips under a Gaussian input offset of ``flip_sigma``
  (as a fraction of full scale), computed analytically from the per-level
  sample counts and the Gaussian CDF of the cell-center margins

-- one matrix product over the already-computed level histogram, no extra
pass over the samples.  Trainers fold ``expected_flips`` into the split
score (see ``robustness_weight`` on the trainers); with the feature
disabled the columns are ``None`` and the enumeration is bit-identical to
the nominal path.

The pre-columnar object-building enumeration is retained verbatim in
:mod:`repro.mltrees.legacy_split_search` as the oracle for the equivalence
tests and the training-throughput benchmark.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

_erf = np.vectorize(math.erf, otypes=[float])


def normal_cdf(x) -> np.ndarray:
    """Standard normal CDF, vectorized over ``math.erf`` (stdlib only).

    Shared by the training-side flip penalty below and the analytic
    comparator flip-probability model in :mod:`repro.core.variation`, so the
    two always agree on the underlying Gaussian math.  Deliberately *not*
    delegated to scipy when it happens to be installed: trained trees and
    their content-addressed cache entries must be bit-identical across
    environments, and the cache keys record nothing about a CDF backend.
    ``math.erf`` is correctly rounded, so the only cost is that the CDF
    underflows to exactly 0 past ~8.3 sigma -- flip probabilities far below
    anything the penalty or a Monte-Carlo trial could resolve.
    """
    x = np.asarray(x, dtype=float)
    return 0.5 * (1.0 + _erf(x / math.sqrt(2.0)))


@lru_cache(maxsize=64)
def level_flip_matrix(n_levels: int, sigma: float) -> np.ndarray:
    """``(n_levels, n_levels - 1)`` analytic digit-flip probabilities.

    Entry ``[level, k - 1]`` is the probability that the comparator at
    threshold ``k`` (fires when the analog input exceeds ``k / n_levels``)
    produces the wrong digit for a sample quantized to ``level``, under a
    Gaussian input offset with standard deviation ``sigma`` (normalized to
    full scale).  A sample at ``level`` represents analog values in
    ``[level / n_levels, (level + 1) / n_levels)``, so its margin to the
    threshold is taken at the cell center ``(level + 0.5) / n_levels`` --
    the digit flips when the offset exceeds that margin, which happens with
    probability ``Phi(-|margin| / sigma)``.

    The matrix depends only on ``(n_levels, sigma)`` -- not on the node or
    the feature -- so it is computed once per training run and shared by
    every node's expected-flip column (cached; returned read-only).
    """
    if n_levels < 2:
        raise ValueError("need at least two quantization levels")
    if sigma < 0:
        raise ValueError("flip sigma must be >= 0")
    levels = np.arange(n_levels, dtype=float)
    thresholds = np.arange(1, n_levels, dtype=float)
    margins = (levels[:, np.newaxis] + 0.5 - thresholds[np.newaxis, :]) / n_levels
    if sigma == 0.0:
        probabilities = np.zeros_like(margins)
    else:
        probabilities = normal_cdf(-np.abs(margins) / sigma)
    probabilities.setflags(write=False)
    return probabilities


@dataclass(frozen=True)
class SplitCandidate:
    """One candidate split and its quality.

    Splitting sends samples with ``x[feature] >= threshold_level`` to the
    right child and the rest to the left child.
    """

    feature: int
    threshold_level: int
    gini: float
    n_left: int
    n_right: int


@dataclass(frozen=True, eq=False)
class CandidateTable:
    """Columnar table of candidate splits: one row per (feature, threshold).

    Rows are ordered by ``(feature, threshold_level)`` exactly like the
    historical candidate lists.  The parallel arrays let trainers score and
    filter every candidate with ndarray reductions; the sequence protocol
    (``len``, iteration, indexing, ``==`` against lists of candidates) is a
    thin compatibility view that materializes :class:`SplitCandidate`
    objects on demand.

    The two robustness columns (``margin``, ``expected_flips``) are ``None``
    unless the enumeration was asked for them (``flip_sigma``); they ride
    along through :meth:`select`, and equality -- both against other tables
    and against legacy candidate lists -- intentionally compares only the
    five nominal columns, so offset-aware tables still equal their nominal
    counterparts when the split geometry is identical.
    """

    feature: np.ndarray          #: int64, feature index per candidate
    threshold_level: np.ndarray  #: int64, threshold level per candidate
    gini: np.ndarray             #: float64, weighted Gini of the split
    n_left: np.ndarray           #: int64, samples sent to the left child
    n_right: np.ndarray          #: int64, samples sent to the right child
    #: float64 or None: normalized distance from the threshold to the
    #: nearest sample of the node (see ``flip_sigma``)
    margin: np.ndarray | None = field(default=None)
    #: float64 or None: expected fraction of node samples whose digit flips
    #: under a Gaussian offset of the requested sigma
    expected_flips: np.ndarray | None = field(default=None)

    # ------------------------------------------------------------------ #
    # columnar operations (the fast path used by the trainers)
    # ------------------------------------------------------------------ #
    @property
    def best_gini(self) -> float:
        """Minimum Gini score in the table (``inf`` when empty)."""
        if self.gini.size == 0:
            return float("inf")
        return float(self.gini.min())

    def select(self, which: np.ndarray) -> "CandidateTable":
        """Sub-table of the rows picked by a boolean mask or index array."""
        return CandidateTable(
            feature=self.feature[which],
            threshold_level=self.threshold_level[which],
            gini=self.gini[which],
            n_left=self.n_left[which],
            n_right=self.n_right[which],
            margin=None if self.margin is None else self.margin[which],
            expected_flips=(
                None if self.expected_flips is None else self.expected_flips[which]
            ),
        )

    @classmethod
    def empty(cls) -> "CandidateTable":
        """A table with zero candidates."""
        zero_i = np.empty(0, dtype=np.int64)
        return cls(
            feature=zero_i,
            threshold_level=zero_i,
            gini=np.empty(0, dtype=np.float64),
            n_left=zero_i,
            n_right=zero_i,
        )

    @classmethod
    def from_candidates(cls, candidates: Sequence[SplitCandidate]) -> "CandidateTable":
        """Build a table from an object-based candidate list."""
        if not candidates:
            return cls.empty()
        return cls(
            feature=np.array([c.feature for c in candidates], dtype=np.int64),
            threshold_level=np.array(
                [c.threshold_level for c in candidates], dtype=np.int64
            ),
            gini=np.array([c.gini for c in candidates], dtype=np.float64),
            n_left=np.array([c.n_left for c in candidates], dtype=np.int64),
            n_right=np.array([c.n_right for c in candidates], dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # sequence-compatibility view (materializes objects on demand)
    # ------------------------------------------------------------------ #
    def candidate(self, index: int) -> SplitCandidate:
        """Materialize row ``index`` as a :class:`SplitCandidate`."""
        return SplitCandidate(
            feature=int(self.feature[index]),
            threshold_level=int(self.threshold_level[index]),
            gini=float(self.gini[index]),
            n_left=int(self.n_left[index]),
            n_right=int(self.n_right[index]),
        )

    def to_list(self) -> list[SplitCandidate]:
        """The whole table as an object-based candidate list."""
        return [self.candidate(i) for i in range(len(self))]

    def __len__(self) -> int:
        return int(self.feature.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[SplitCandidate]:
        return iter(self.to_list())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.to_list()[index]
        return self.candidate(index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CandidateTable):
            return (
                np.array_equal(self.feature, other.feature)
                and np.array_equal(self.threshold_level, other.threshold_level)
                and np.array_equal(self.gini, other.gini)
                and np.array_equal(self.n_left, other.n_left)
                and np.array_equal(self.n_right, other.n_right)
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and self.to_list() == list(other)
        return NotImplemented


def class_histogram(y: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-class sample counts of a label vector."""
    return np.bincount(y, minlength=n_classes).astype(np.int64)


def enumerate_split_candidates(
    X_levels: np.ndarray,
    y: np.ndarray,
    indices: np.ndarray,
    n_classes: int,
    n_levels: int,
    min_samples_leaf: int = 1,
    flip_sigma: float | None = None,
) -> CandidateTable:
    """Enumerate every valid split of the node containing ``indices``.

    One vectorized pass over **all** features: a single ``bincount`` builds
    the ``(feature, level, class)`` histogram of the node, one cumulative sum
    along the level axis yields every left/right class-count pair, and the
    weighted Gini of all candidates falls out as one broadcast expression.

    Parameters
    ----------
    X_levels:
        Full quantized feature matrix, shape ``(n_samples, n_features)``,
        integer levels in ``[0, n_levels - 1]``.
    y:
        Full label vector, integer classes in ``[0, n_classes - 1]``.
    indices:
        Row indices of the samples that reached the node.
    n_classes:
        Number of classes in the task.
    n_levels:
        Number of quantization levels (``2**resolution_bits``).
    min_samples_leaf:
        A split is only valid when both children receive at least this many
        samples.
    flip_sigma:
        When not ``None``, also fill the ``margin`` and ``expected_flips``
        robustness columns: the comparator offset sigma as a fraction of the
        ADC full scale (``sigma_volts / vdd``).  The columns fall out of the
        same level histogram (one matrix product against the cached
        :func:`level_flip_matrix`), so requesting them does not add a pass
        over the samples.  ``None`` (the default) leaves the columns unset
        and the enumeration bit-identical to the nominal path.

    Returns
    -------
    CandidateTable
        All valid candidates, ordered by ``(feature, threshold_level)``.
        Candidates are reported only for thresholds that actually separate
        the node's samples ("C value in dataset" in Algorithm 1), i.e. both
        children are non-empty.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        return CandidateTable.empty()
    y_node = y[indices]
    n_node = indices.size
    n_features = X_levels.shape[1]
    n_thresholds = n_levels - 1  # k = 1 .. n_levels - 1

    # hist[feature, level, class] via one flat bincount over all features
    values = X_levels[indices]  # (n_node, n_features)
    if int(values.max()) >= n_levels:
        # An out-of-range level would land in the *next* feature's histogram
        # block and silently corrupt its Gini scores; fail loudly instead
        # (negative levels already make bincount raise).
        raise ValueError(
            f"quantized levels must lie in [0, {n_levels - 1}], "
            f"got {int(values.max())}"
        )
    feature_base = np.arange(n_features, dtype=np.int64) * (n_levels * n_classes)
    codes = feature_base[np.newaxis, :] + values * n_classes + y_node[:, np.newaxis]
    hist = np.bincount(
        codes.ravel(), minlength=n_features * n_levels * n_classes
    ).reshape(n_features, n_levels, n_classes)

    # left child of threshold k = samples with level < k
    cumulative = np.cumsum(hist, axis=1)                    # (F, L, C)
    total_counts = cumulative[:, -1, :]                     # (F, C)
    left_counts = cumulative[:, :-1, :]                     # (F, T, C)
    right_counts = total_counts[:, np.newaxis, :] - left_counts
    n_left = left_counts.sum(axis=2)                        # (F, T)
    n_right = right_counts.sum(axis=2)

    valid = (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
    rows = np.nonzero(valid.ravel())[0]
    if rows.size == 0:
        return CandidateTable.empty()

    with np.errstate(divide="ignore", invalid="ignore"):
        gini_left = 1.0 - np.sum(
            (left_counts / np.maximum(n_left, 1)[:, :, np.newaxis]) ** 2, axis=2
        )
        gini_right = 1.0 - np.sum(
            (right_counts / np.maximum(n_right, 1)[:, :, np.newaxis]) ** 2, axis=2
        )
    weighted = (n_left * gini_left + n_right * gini_right) / n_node

    margin = expected_flips = None
    if flip_sigma is not None:
        level_counts = hist.sum(axis=2)                     # (F, L)
        margin_fl, flips_fl = _robustness_columns(
            level_counts, n_node, n_levels, float(flip_sigma)
        )
        margin = margin_fl.ravel()[rows]
        expected_flips = flips_fl.ravel()[rows]

    return CandidateTable(
        feature=rows // n_thresholds,
        threshold_level=rows % n_thresholds + 1,
        gini=weighted.ravel()[rows],
        n_left=n_left.ravel()[rows],
        n_right=n_right.ravel()[rows],
        margin=margin,
        expected_flips=expected_flips,
    )


def _robustness_columns(
    level_counts: np.ndarray, n_node: int, n_levels: int, sigma: float
) -> tuple[np.ndarray, np.ndarray]:
    """Margin and expected-flip matrices of one node, shape ``(F, T)``.

    ``level_counts[feature, level]`` are the node's per-level sample counts
    (the class axis of the histogram already summed out).

    * ``expected_flips[f, k - 1]`` = sum over levels of ``count *
      P(flip | level, k, sigma)`` divided by the node size -- one matrix
      product against the cached :func:`level_flip_matrix`.
    * ``margin[f, k - 1]`` = normalized distance from threshold ``k`` to the
      nearest *occupied* level's cell center, found with two running
      extrema over the occupancy mask (no per-threshold scan).  Thresholds
      with an empty side get ``inf`` on that side; such rows never describe
      a valid split (one child would be empty), so callers only ever see
      finite margins.
    """
    flip_matrix = level_flip_matrix(n_levels, sigma)        # (L, T)
    expected_flips = (level_counts @ flip_matrix) / n_node  # (F, T)

    level_index = np.arange(n_levels, dtype=float)
    occupied = level_counts > 0
    # highest occupied level <= l  /  lowest occupied level >= l
    below = np.maximum.accumulate(
        np.where(occupied, level_index, -np.inf), axis=1
    )
    above = np.minimum.accumulate(
        np.where(occupied, level_index, np.inf)[:, ::-1], axis=1
    )[:, ::-1]
    thresholds = np.arange(1, n_levels, dtype=float)
    # distance from threshold k to the cell centers of the nearest occupied
    # level strictly below (level <= k - 1) and at-or-above (level >= k)
    margin_below = thresholds[np.newaxis, :] - (below[:, :-1] + 0.5)
    margin_above = (above[:, 1:] + 0.5) - thresholds[np.newaxis, :]
    margin = np.minimum(margin_below, margin_above) / n_levels
    return margin, expected_flips


def best_gini(candidates: CandidateTable | Sequence[SplitCandidate]) -> float:
    """Minimum Gini score among ``candidates`` (``inf`` when empty).

    Routed through the columnar table (one C-speed reduction) when given a
    :class:`CandidateTable`; object-based candidate lists keep working for
    compatibility.
    """
    if isinstance(candidates, CandidateTable):
        return candidates.best_gini
    if not candidates:
        return float("inf")
    return min(candidate.gini for candidate in candidates)
