"""Pre-columnar split search, retained as the equivalence/throughput oracle.

This module preserves, verbatim, the object-based split enumeration and the
list-based split-selection policies that predate the columnar
:class:`~repro.mltrees.split_search.CandidateTable` refactor: one Python loop
per feature, one :class:`~repro.mltrees.split_search.SplitCandidate` object
per (feature, threshold) pair, and interpreter-speed ``min``/list-comp scans
during selection.

No production path uses it.  It exists so that

* the trainer-equivalence tests can assert that the columnar trainers
  produce node-for-node identical trees (same RNG stream, same tie-breaks),
  and
* ``benchmarks/bench_training_throughput.py`` can measure the columnar
  speedup against the true historical hot loop

-- the same pattern as ``_predict_with_offsets_scalar`` in
:mod:`repro.core.variation` for the inference refactor.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.adc_aware_training import ADCAwareTrainer, partition_by_cost
from repro.mltrees.cart import CARTTrainer, GINI_TIE_TOLERANCE
from repro.mltrees.split_search import SplitCandidate


def legacy_enumerate_split_candidates(
    X_levels: np.ndarray,
    y: np.ndarray,
    indices: np.ndarray,
    n_classes: int,
    n_levels: int,
    min_samples_leaf: int = 1,
) -> list[SplitCandidate]:
    """The historical enumeration: per-feature loop, one object per candidate."""
    indices = np.asarray(indices)
    if indices.size == 0:
        return []
    y_node = y[indices]
    n_node = indices.size
    candidates: list[SplitCandidate] = []
    thresholds = np.arange(1, n_levels)  # k = 1 .. n_levels - 1

    for feature in range(X_levels.shape[1]):
        values = X_levels[indices, feature]
        # hist[level, class] = number of node samples at that level and class
        flat = np.bincount(
            values * n_classes + y_node, minlength=n_levels * n_classes
        )
        hist = flat.reshape(n_levels, n_classes)
        total_counts = hist.sum(axis=0)
        # left child of threshold k = samples with level < k
        cumulative = np.cumsum(hist, axis=0)
        left_counts = cumulative[thresholds - 1]          # shape (n_thresholds, C)
        right_counts = total_counts[None, :] - left_counts
        n_left = left_counts.sum(axis=1)
        n_right = right_counts.sum(axis=1)

        valid = (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
        if not np.any(valid):
            continue

        with np.errstate(divide="ignore", invalid="ignore"):
            gini_left = 1.0 - np.sum(
                (left_counts / np.maximum(n_left, 1)[:, None]) ** 2, axis=1
            )
            gini_right = 1.0 - np.sum(
                (right_counts / np.maximum(n_right, 1)[:, None]) ** 2, axis=1
            )
        weighted = (n_left * gini_left + n_right * gini_right) / n_node

        for position in np.nonzero(valid)[0]:
            candidates.append(
                SplitCandidate(
                    feature=feature,
                    threshold_level=int(thresholds[position]),
                    gini=float(weighted[position]),
                    n_left=int(n_left[position]),
                    n_right=int(n_right[position]),
                )
            )
    return candidates


class LegacyCARTTrainer(CARTTrainer):
    """CART trainer on the historical object-based split search."""

    def _node_candidates(
        self,
        X_levels: np.ndarray,
        y: np.ndarray,
        indices: np.ndarray,
        n_classes: int,
        n_levels: int,
    ) -> list[SplitCandidate]:
        return legacy_enumerate_split_candidates(
            X_levels, y, indices, n_classes, n_levels, self.min_samples_leaf
        )

    def _select_split(
        self, candidates: list[SplitCandidate], rng: random.Random
    ) -> SplitCandidate:
        """The historical list scan: Python ``min`` plus a list comprehension."""
        best = min(candidate.gini for candidate in candidates)
        tied = [c for c in candidates if c.gini <= best + GINI_TIE_TOLERANCE]
        return rng.choice(tied)


class LegacyADCAwareTrainer(ADCAwareTrainer):
    """ADC-aware trainer on the historical object-based split search."""

    def _node_candidates(
        self,
        X_levels: np.ndarray,
        y: np.ndarray,
        indices: np.ndarray,
        n_classes: int,
        n_levels: int,
    ) -> list[SplitCandidate]:
        return legacy_enumerate_split_candidates(
            X_levels, y, indices, n_classes, n_levels, self.min_samples_leaf
        )

    def _select_split(
        self,
        candidates: list[SplitCandidate],
        selected_pairs: set[tuple[int, int]],
        selected_features: set[int],
        rng: random.Random,
    ) -> SplitCandidate:
        """The historical Algorithm 1 selection over candidate object lists."""
        best_gini = min(candidate.gini for candidate in candidates)
        tolerance_set = [
            c for c in candidates if c.gini <= best_gini + self.gini_threshold + 1e-15
        ]
        sets = partition_by_cost(tolerance_set, selected_pairs, selected_features)

        if sets.zero_cost:
            pool = list(sets.zero_cost)
            target_gini = min(c.gini for c in pool)
            finalists = [c for c in pool if c.gini <= target_gini + GINI_TIE_TOLERANCE]
            return rng.choice(finalists)

        pool = list(sets.medium_cost) if sets.medium_cost else list(sets.high_cost)
        if self.prefer_low_power_levels:
            # Secondary objective: smallest threshold => lowest-power comparator.
            min_level = min(c.threshold_level for c in pool)
            pool = [c for c in pool if c.threshold_level == min_level]
        target_gini = min(c.gini for c in pool)
        finalists = [c for c in pool if c.gini <= target_gini + GINI_TIE_TOLERANCE]
        return rng.choice(finalists)
