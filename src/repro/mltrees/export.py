"""Export of trained-tree structure for hardware generation.

The co-design flow needs three views of a trained tree:

* the list of comparisons ``(feature, threshold_level)`` -- one per decision
  node -- which sizes the baseline's digital comparators,
* the set of *unique* unary digits required per feature -- which sizes the
  bespoke ADCs,
* the decision paths (root-to-leaf condition lists) -- which become the
  product terms of the two-level label logic of Fig. 2b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mltrees.tree import DecisionTree, TreeNode


@dataclass(frozen=True)
class PathCondition:
    """One condition along a decision path.

    ``is_ge`` is True for the right-branch condition ``x[feature] >= level``
    and False for the complementary left-branch condition ``x[feature] < level``.
    """

    feature: int
    level: int
    is_ge: bool

    def __str__(self) -> str:
        op = ">=" if self.is_ge else "<"
        return f"I{self.feature} {op} {self.level}"


@dataclass(frozen=True)
class DecisionPath:
    """A root-to-leaf path: the conjunction of conditions implying a class."""

    conditions: tuple[PathCondition, ...]
    prediction: int
    n_samples: int


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate comparison statistics of a trained tree.

    Attributes
    ----------
    n_decision_nodes:
        Number of comparison nodes (``#Comp.`` in Table I for the baseline).
    n_unique_pairs:
        Number of distinct ``(feature, threshold)`` pairs (the number of
        comparators the *bespoke ADCs* must provide in total).
    used_features:
        Features referenced by at least one split (``#Inputs`` in Table I).
    required_levels:
        Per used feature, the sorted unary-digit levels required.
    """

    n_decision_nodes: int
    n_unique_pairs: int
    used_features: tuple[int, ...]
    required_levels: dict[int, tuple[int, ...]]


def tree_to_paths(tree: DecisionTree) -> list[DecisionPath]:
    """Extract every root-to-leaf decision path of ``tree``."""
    paths: list[DecisionPath] = []

    def walk(node: TreeNode, conditions: tuple[PathCondition, ...]) -> None:
        if node.is_leaf:
            paths.append(
                DecisionPath(
                    conditions=conditions,
                    prediction=node.prediction,
                    n_samples=node.n_samples,
                )
            )
            return
        feature = node.feature
        level = node.threshold_level
        assert feature is not None and level is not None
        walk(node.left, conditions + (PathCondition(feature, level, is_ge=False),))
        walk(node.right, conditions + (PathCondition(feature, level, is_ge=True),))

    walk(tree.root, ())
    return paths


def comparisons_summary(tree: DecisionTree) -> ComparisonSummary:
    """Aggregate comparison statistics used by the hardware generators."""
    comparisons = tree.comparisons()
    return ComparisonSummary(
        n_decision_nodes=len(comparisons),
        n_unique_pairs=len(set(comparisons)),
        used_features=tuple(tree.used_features()),
        required_levels=tree.required_levels(),
    )
