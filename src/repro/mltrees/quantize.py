"""Fixed-point quantization of normalized features.

The paper fixes the input precision to 4 bits ("since this is the value
delivered close to floating-point accuracy for all datasets").  Features are
normalized to ``[0, 1]`` (Q0.N fixed point) and digitized to integer levels by
the per-feature flash ADC channel; the same quantization is applied during
training so the trained thresholds land on the ADC grid.
"""

from __future__ import annotations

import numpy as np

from repro.adc.thermometer import quantize_array_to_levels


def quantize_dataset(X: np.ndarray, resolution_bits: int = 4) -> np.ndarray:
    """Quantize a normalized feature matrix to integer ADC levels.

    Parameters
    ----------
    X:
        Feature matrix with values in ``[0, 1]`` (values outside the range
        are clipped, mirroring ADC saturation).
    resolution_bits:
        ADC resolution N; output levels lie in ``[0, 2**N - 1]``.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("expected a 2-D feature matrix")
    return quantize_array_to_levels(X, resolution_bits)


def level_to_value(level: int | np.ndarray, resolution_bits: int = 4):
    """Normalized value corresponding to a quantized level (``level / 2**N``)."""
    n_levels = 2 ** resolution_bits
    return np.asarray(level, dtype=float) / n_levels if isinstance(level, np.ndarray) else level / n_levels


def quantization_error(X: np.ndarray, resolution_bits: int = 4) -> float:
    """Mean absolute quantization error introduced by the ADC grid.

    Useful for precision-selection studies (the baseline [7] scales per-input
    precision and needs to reason about the induced error).
    """
    X = np.asarray(X, dtype=float)
    levels = quantize_dataset(X, resolution_bits)
    reconstructed = levels / (2 ** resolution_bits)
    return float(np.mean(np.abs(np.clip(X, 0.0, 1.0) - reconstructed)))
