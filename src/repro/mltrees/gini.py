"""Gini impurity utilities.

The paper trains its trees with the Gini index cost function [16]; both the
conventional (ADC-unaware) trainer and Algorithm 1 rank candidate splits by
the weighted Gini impurity of the two children.
"""

from __future__ import annotations

import numpy as np


def gini_impurity(class_counts) -> float:
    """Gini impurity of a node described by its per-class sample counts.

    ``G = 1 - sum_c p_c^2`` with ``p_c`` the class frequencies.  An empty
    node has impurity 0 by convention.
    """
    counts = np.asarray(class_counts, dtype=float)
    if np.any(counts < 0):
        raise ValueError("class counts must be non-negative")
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions ** 2))


def weighted_gini(left_counts, right_counts) -> float:
    """Sample-weighted Gini impurity of a binary split."""
    left = np.asarray(left_counts, dtype=float)
    right = np.asarray(right_counts, dtype=float)
    n_left = left.sum()
    n_right = right.sum()
    total = n_left + n_right
    if total == 0:
        return 0.0
    return float(
        (n_left * gini_impurity(left) + n_right * gini_impurity(right)) / total
    )
