"""Always-on scoring service over the co-designed classifiers.

Three layers turn cached experiment outputs into a serving stack:

* :mod:`repro.serve.registry` -- promote a trained
  :class:`~repro.core.exploration.DesignPoint` into a named, versioned,
  content-addressed model artifact (tree + ADC config + datasheet +
  compiled-kernel metadata).
* :mod:`repro.serve.batching` / :mod:`repro.serve.scorer` -- an asyncio
  micro-batching scorer that accumulates concurrent single-sample requests,
  converts each flush through the ADC front end once, and dispatches one
  bit-parallel kernel call per batch; results are bit-identical to scalar
  ``predict_levels``.
* :mod:`repro.serve.loadgen` -- open- and closed-loop load generation with
  coordinated-omission-safe latency percentiles, feeding the SLO rows of
  ``benchmarks/bench_serving_throughput.py``.

See ``docs/SERVING.md`` for the end-to-end methodology.
"""

from repro.serve.batching import (
    BatcherStats,
    BatchingConfig,
    MicroBatcher,
    ScorerClosedError,
)
from repro.serve.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serve.registry import (
    ModelArtifact,
    ModelRegistry,
    default_registry_dir,
    promote_design,
)
from repro.serve.scorer import AsyncScorer

__all__ = [
    "AsyncScorer",
    "BatcherStats",
    "BatchingConfig",
    "LoadReport",
    "MicroBatcher",
    "ModelArtifact",
    "ModelRegistry",
    "ScorerClosedError",
    "default_registry_dir",
    "promote_design",
    "run_closed_loop",
    "run_open_loop",
]
