"""Asyncio micro-batching: amortize per-call cost across concurrent requests.

:class:`MicroBatcher` is the generic accumulation engine under the serving
scorer (:mod:`repro.serve.scorer`).  Concurrent ``submit`` calls enqueue
items into a bounded :class:`asyncio.Queue`; a single worker task collects
them into batches that flush when either ``max_batch_size`` items have
accumulated or ``max_wait_us`` has elapsed since the batch opened, whichever
comes first.  One ``flush_fn(items)`` call services the whole batch and its
results are demultiplexed back to the per-item futures in order.

Design points worth knowing:

* **No empty flushes.**  The worker blocks on the queue while idle; a batch
  only opens when its first item arrives, and the deadline is measured from
  that arrival.  An idle batcher performs zero work.
* **Backpressure, not buffering.**  The queue is bounded
  (``max_queue_size``); when it is full, ``submit`` suspends in
  ``queue.put`` until the worker drains, so a slow flush function
  back-pressures producers instead of growing memory without bound.
* **Graceful shutdown.**  ``close()`` flushes everything already enqueued
  (pending futures resolve with real results), then fails any stragglers
  with :class:`ScorerClosedError`.  Submitting after close raises.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Sequence, Union

FlushFn = Callable[[list], Union[Sequence, Awaitable[Sequence]]]

#: Queue sentinel instructing the worker to drain and exit.
_CLOSE = object()


class ScorerClosedError(RuntimeError):
    """Raised by ``submit`` on a closed batcher and set on abandoned futures."""


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of the accumulate/flush policy.

    Attributes
    ----------
    max_batch_size:
        Flush as soon as this many items have accumulated.  64 is one packed
        uint64 word of the bit-parallel kernel; multiples of 64 waste no
        lanes.
    max_wait_us:
        Flush an incomplete batch once its *first* item has waited this many
        microseconds -- the latency bound a lone request pays at low load.
    max_queue_size:
        Bound of the submission queue (backpressure threshold).  0 means
        unbounded.
    """

    max_batch_size: int = 256
    max_wait_us: float = 200.0
    max_queue_size: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")
        if self.max_queue_size < 0:
            raise ValueError("max_queue_size must be >= 0")


@dataclass
class BatcherStats:
    """Accumulated flush accounting of one :class:`MicroBatcher`."""

    n_requests: int = 0
    n_flushes: int = 0
    n_full_flushes: int = 0
    n_timeout_flushes: int = 0
    n_drain_flushes: int = 0
    max_batch: int = 0
    _batched: int = field(default=0, repr=False)

    @property
    def mean_batch(self) -> float:
        """Average items per flush (0.0 before the first flush)."""
        return self._batched / self.n_flushes if self.n_flushes else 0.0

    def record_flush(self, size: int, kind: str) -> None:
        """Account one flush of ``size`` items (kind: full/timeout/drain)."""
        self.n_flushes += 1
        self._batched += size
        self.max_batch = max(self.max_batch, size)
        if kind == "full":
            self.n_full_flushes += 1
        elif kind == "timeout":
            self.n_timeout_flushes += 1
        else:
            self.n_drain_flushes += 1


class MicroBatcher:
    """Accumulate awaitable submissions into bounded flushes of ``flush_fn``.

    Parameters
    ----------
    flush_fn:
        Callable receiving the list of batched items and returning one
        result per item, in order.  May be sync (runs on the event loop --
        fine for numpy kernels that release the GIL quickly) or async.
    config:
        Accumulate/flush policy; see :class:`BatchingConfig`.

    Examples
    --------
    >>> async def demo():
    ...     batcher = MicroBatcher(lambda xs: [x * 2 for x in xs])
    ...     doubled = await asyncio.gather(*(batcher.submit(i) for i in range(5)))
    ...     await batcher.close()
    ...     return doubled
    >>> asyncio.run(demo())
    [0, 2, 4, 6, 8]
    """

    def __init__(self, flush_fn: FlushFn, config: BatchingConfig | None = None):
        self.flush_fn = flush_fn
        self.config = config if config is not None else BatchingConfig()
        self.stats = BatcherStats()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_queue_size)
        self._worker: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # submission side
    # ------------------------------------------------------------------ #
    async def submit(self, item: Any) -> Any:
        """Enqueue ``item`` and await its result from the servicing flush.

        Suspends while the queue is full (backpressure).  Raises
        :class:`ScorerClosedError` when the batcher is already closed.
        """
        if self._closed:
            raise ScorerClosedError("cannot submit to a closed MicroBatcher")
        if self._worker is None:
            # Lazy start binds the worker to the caller's running loop.
            self._worker = asyncio.get_running_loop().create_task(self._run())
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((item, future))
        self.stats.n_requests += 1
        return await future

    async def close(self) -> None:
        """Flush all enqueued work, resolve every pending future, stop.

        Requests enqueued before ``close`` resolve with real results (the
        worker drains the queue in max-size batches); a racing ``submit``
        that loses to the sentinel fails with :class:`ScorerClosedError`.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._worker is None:
            self._fail_pending()
            return
        await self._queue.put((_CLOSE, None))
        await self._worker
        self._fail_pending()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun (submissions now raise)."""
        return self._closed

    def _fail_pending(self) -> None:
        """Fail any futures still sitting in the queue after the drain."""
        while True:
            try:
                item, future = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is _CLOSE or future is None:
                continue
            if not future.done():
                future.set_exception(
                    ScorerClosedError("MicroBatcher closed before this item flushed")
                )

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        max_wait_s = self.config.max_wait_us / 1e6
        max_size = self.config.max_batch_size
        while True:
            # Idle: block until a first item opens a batch (or close lands).
            item, future = await self._queue.get()
            if item is _CLOSE:
                await self._drain()
                return
            batch = [(item, future)]
            deadline = time.monotonic() + max_wait_s
            kind = "timeout"
            draining = False
            while len(batch) < max_size:
                # Greedy backlog drain first: items already queued join the
                # batch at zero cost, so under load batches form from the
                # backlog itself and the wait window only matters when the
                # queue runs dry (adaptive micro-batching).
                try:
                    item, future = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        item, future = await asyncio.wait_for(
                            self._queue.get(), timeout=remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if item is _CLOSE:
                    draining = True
                    kind = "drain"
                    break
                batch.append((item, future))
            else:
                kind = "full"
            await self._flush(batch, kind)
            if draining:
                await self._drain()
                return

    async def _drain(self) -> None:
        """Flush everything enqueued ahead of the close sentinel."""
        batch: list[tuple[Any, asyncio.Future]] = []
        while True:
            try:
                item, future = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _CLOSE:
                continue
            batch.append((item, future))
            if len(batch) >= self.config.max_batch_size:
                await self._flush(batch, "drain")
                batch = []
        if batch:
            await self._flush(batch, "drain")

    async def _flush(self, batch: list, kind: str) -> None:
        if not batch:
            return
        items = [item for item, _ in batch]
        try:
            results = self.flush_fn(items)
            if inspect.isawaitable(results):
                results = await results
            if len(results) != len(items):
                raise RuntimeError(
                    f"flush_fn returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except BaseException as exc:  # noqa: BLE001 - routed to the futures
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            if isinstance(exc, (KeyboardInterrupt, SystemExit, asyncio.CancelledError)):
                raise
            return
        self.stats.record_flush(len(batch), kind)
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
