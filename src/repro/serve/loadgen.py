"""Load generation for the serving stack: open/closed loops, SLO reports.

Two complementary drivers feed :class:`~repro.serve.scorer.AsyncScorer`:

* :func:`run_open_loop` -- a fleet of sensor clients firing at a fixed
  aggregate rate regardless of completions (open loop).  Latency is
  measured from each request's **scheduled** arrival time, not its actual
  dispatch time, so a stalled scorer inflates the percentiles instead of
  silently thinning the offered load (the coordinated-omission trap).
  This is the SLO view: "at R requests/s, what p99 do clients see?"
* :func:`run_closed_loop` -- N clients that each keep exactly one request
  in flight (closed loop).  This is the capacity view: the sustained
  throughput ceiling with the batcher kept saturated.

Both return a :class:`LoadReport` with percentile latencies, achieved
throughput and the scorer's flush accounting -- the rows of
``benchmarks/bench_serving_throughput.py`` and the nightly CI smoke
(``repro.cli serve smoke``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.serve.batching import BatcherStats
from repro.serve.scorer import AsyncScorer


@dataclass(frozen=True)
class LoadReport:
    """Latency/throughput summary of one load-generation run.

    Latencies are in milliseconds.  ``offered_rate_hz`` is ``None`` for
    closed-loop runs (the clients, not a clock, set the pace).
    """

    n_requests: int
    n_errors: int
    duration_s: float
    offered_rate_hz: float | None
    throughput_hz: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    batcher: BatcherStats

    def to_dict(self) -> dict:
        """JSON-ready rendering (CI smoke artifact, bench rows)."""
        return {
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "duration_s": self.duration_s,
            "offered_rate_hz": self.offered_rate_hz,
            "throughput_hz": self.throughput_hz,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "batching": {
                "n_flushes": self.batcher.n_flushes,
                "n_full_flushes": self.batcher.n_full_flushes,
                "n_timeout_flushes": self.batcher.n_timeout_flushes,
                "n_drain_flushes": self.batcher.n_drain_flushes,
                "max_batch": self.batcher.max_batch,
                "mean_batch": self.batcher.mean_batch,
            },
        }

    def summary(self) -> str:
        """One human-readable line (CLI smoke output)."""
        offered = (
            f"offered {self.offered_rate_hz:.0f}/s, "
            if self.offered_rate_hz is not None
            else ""
        )
        return (
            f"{self.n_requests} requests in {self.duration_s:.2f}s "
            f"({offered}achieved {self.throughput_hz:.0f}/s), "
            f"p50 {self.p50_ms:.3f}ms p95 {self.p95_ms:.3f}ms "
            f"p99 {self.p99_ms:.3f}ms, mean batch "
            f"{self.batcher.mean_batch:.1f}, errors {self.n_errors}"
        )


def _report(
    latencies_s: list[float],
    n_errors: int,
    duration_s: float,
    offered_rate_hz: float | None,
    stats: BatcherStats,
) -> LoadReport:
    if not latencies_s:
        raise ValueError("load run completed zero requests; nothing to report")
    latencies_ms = np.asarray(latencies_s) * 1e3
    duration_s = max(duration_s, 1e-9)
    return LoadReport(
        n_requests=len(latencies_s),
        n_errors=n_errors,
        duration_s=duration_s,
        offered_rate_hz=offered_rate_hz,
        throughput_hz=len(latencies_s) / duration_s,
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p95_ms=float(np.percentile(latencies_ms, 95)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        mean_ms=float(np.mean(latencies_ms)),
        max_ms=float(np.max(latencies_ms)),
        batcher=stats,
    )


async def run_open_loop(
    scorer: AsyncScorer,
    rows: np.ndarray,
    rate_hz: float,
    *,
    duration_s: float | None = None,
    n_requests: int | None = None,
) -> LoadReport:
    """Replay ``rows`` at a fixed aggregate ``rate_hz``, open loop.

    Exactly one of ``duration_s`` / ``n_requests`` bounds the run.  Request
    ``i`` is *scheduled* at ``start + i / rate_hz`` and replays row
    ``i % len(rows)`` (a fleet of sensors cycling through the captured
    stream); its latency runs from that scheduled instant to completion,
    so queueing delay from a scorer that cannot keep up is charged to the
    requests instead of being omitted.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2 or not len(rows):
        raise ValueError("rows must be a non-empty (n_samples, n_features) matrix")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be > 0")
    if (duration_s is None) == (n_requests is None):
        raise ValueError("bound the run with exactly one of duration_s / n_requests")
    if n_requests is None:
        n_requests = max(1, int(round(duration_s * rate_hz)))

    interval = 1.0 / rate_hz
    latencies: list[float] = []
    errors = 0

    async def fire(row: np.ndarray, scheduled: float) -> None:
        nonlocal errors
        try:
            await scorer.score(row)
        except Exception:
            errors += 1
            return
        latencies.append(time.perf_counter() - scheduled)

    start = time.perf_counter()
    tasks = []
    for i in range(n_requests):
        scheduled = start + i * interval
        delay = scheduled - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.get_running_loop().create_task(
                fire(rows[i % len(rows)], scheduled)
            )
        )
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - start
    return _report(latencies, errors, elapsed, rate_hz, scorer.stats)


async def run_closed_loop(
    scorer: AsyncScorer,
    rows: np.ndarray,
    *,
    n_clients: int,
    requests_per_client: int,
) -> LoadReport:
    """``n_clients`` concurrent clients, one request in flight each.

    Client ``c`` replays rows ``c, c + n_clients, c + 2*n_clients, ...``
    (cycling), issuing its next request as soon as the previous one
    completes -- the saturated-throughput view.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2 or not len(rows):
        raise ValueError("rows must be a non-empty (n_samples, n_features) matrix")
    if n_clients < 1 or requests_per_client < 1:
        raise ValueError("n_clients and requests_per_client must be >= 1")

    latencies: list[float] = []
    errors = 0

    async def client(index: int) -> None:
        nonlocal errors
        for step in range(requests_per_client):
            row = rows[(index + step * n_clients) % len(rows)]
            issued = time.perf_counter()
            try:
                await scorer.score(row)
            except Exception:
                errors += 1
                continue
            latencies.append(time.perf_counter() - issued)

    start = time.perf_counter()
    await asyncio.gather(*(client(i) for i in range(n_clients)))
    elapsed = time.perf_counter() - start
    return _report(latencies, errors, elapsed, None, scorer.stats)
