"""Model registry: promote trained design points into served artifacts.

The :class:`~repro.core.store.ResultStore` content-addresses every trained
design, but its entries are keyed by *experiment configuration* (including
the code version) and expire with upgrades.  A served model needs the
opposite: a stable, human-addressable identity.  :class:`ModelRegistry`
provides it by promoting a :class:`~repro.core.exploration.DesignPoint` to a
**named, versioned, content-addressed artifact**:

* the artifact *digest* is :func:`repro.core.store.content_digest` over the
  model's defining content (dataset, split seed, depth, tau, resolution,
  training knobs, technology, and the tree structure itself) -- no code
  version mixed in, so the identity survives package upgrades;
* the *name/version* pair is the serving handle: promoting new content under
  an existing name allocates the next version, while re-promoting identical
  content is idempotent (the existing version is returned).

On-disk layout (see ``docs/SERVING.md``)::

    <registry>/
      models/<digest>.pkl          # pickled ModelArtifact (tree included)
      manifests/<name>/v<N>.json   # light manifest: no tree, greppable

All writes are atomic (``mkstemp`` + ``os.replace``), mirroring the result
store, so concurrent promotions never expose partial artifacts.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.bespoke_adc import build_bespoke_frontend
from repro.core.bitkernel import WORD_BITS, compile_tree_kernel
from repro.core.datasheet import generate_datasheet
from repro.core.exploration import DesignPoint
from repro.core.metrics import HardwareReport
from repro.core.store import code_version, content_digest
from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology, default_technology

#: Registry names are serving handles that land in paths and URLs.
_NAME_RE = re.compile(r"[a-z0-9][a-z0-9._-]{0,63}")


def default_registry_dir() -> Path:
    """Default location: ``$REPRO_REGISTRY_DIR`` or ``~/.cache/repro/registry``."""
    env = os.environ.get("REPRO_REGISTRY_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "registry"


@dataclass(frozen=True)
class ModelArtifact:
    """One promoted model: everything a scorer needs, in a single bundle.

    The heavy payload is the trained ``tree``; ``adc_config`` (the retained
    comparator levels of each bespoke ADC), the rendered ``datasheet`` and
    ``kernel_meta`` (size metrics of the precompiled bit-parallel kernel)
    ride along so a serving host can inspect a model without re-deriving its
    hardware view.
    """

    name: str
    version: int
    digest: str
    dataset: str
    depth: int
    tau: float
    seed: int
    resolution_bits: int
    accuracy: float
    training_sigma: float
    robustness_weight: float
    tree: DecisionTree = field(repr=False)
    technology: EGFETTechnology = field(repr=False)
    hardware: HardwareReport = field(repr=False)
    adc_config: dict[int, tuple[int, ...]] = field(repr=False)
    kernel_meta: dict[str, int] = field(repr=False)
    datasheet: str = field(repr=False)
    created_utc: float = 0.0

    @property
    def kernel(self):
        """The artifact's compiled bit-parallel kernel (cached on the tree)."""
        return compile_tree_kernel(self.tree)

    def manifest(self) -> dict:
        """The light JSON view stored under ``manifests/<name>/v<N>.json``."""
        return {
            "name": self.name,
            "version": self.version,
            "digest": self.digest,
            "dataset": self.dataset,
            "depth": self.depth,
            "tau": self.tau,
            "seed": self.seed,
            "resolution_bits": self.resolution_bits,
            "accuracy": self.accuracy,
            "training_sigma": self.training_sigma,
            "robustness_weight": self.robustness_weight,
            "kernel_meta": dict(self.kernel_meta),
            "created_utc": self.created_utc,
            "promoted_by": code_version(),
        }


def artifact_digest(
    point: DesignPoint,
    *,
    seed: int,
    resolution_bits: int,
    technology: EGFETTechnology,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
) -> str:
    """Content address of a design point's *model content*.

    Hashes what defines the served function -- the tree structure (root node
    dataclass plus shape metadata) and the configuration that trained it --
    with **no code version mixed in**: retraining the same configuration
    under a newer package that produces the same tree re-promotes to the
    same digest (idempotent), while any structural change to the tree
    allocates a new version.
    """
    return content_digest(
        kind="repro-model-artifact",
        dataset=point.dataset,
        depth=point.depth,
        tau=point.tau,
        seed=seed,
        resolution_bits=resolution_bits,
        training_sigma=float(training_sigma),
        robustness_weight=float(robustness_weight),
        technology=technology,
        tree_root=point.tree.root,
        tree_shape=(
            point.tree.n_features,
            point.tree.n_classes,
            point.tree.resolution_bits,
        ),
    )


class ModelRegistry:
    """Named, versioned store of promoted :class:`ModelArtifact` bundles.

    Examples
    --------
    >>> registry = ModelRegistry("/tmp/repro-registry")   # doctest: +SKIP
    >>> artifact = registry.promote(point, "cardio-posture")  # doctest: +SKIP
    >>> registry.load("cardio-posture").version           # doctest: +SKIP
    1
    """

    def __init__(self, registry_dir: str | Path | None = None):
        self.registry_dir = (
            Path(registry_dir) if registry_dir is not None else default_registry_dir()
        )
        if self.registry_dir.exists() and not self.registry_dir.is_dir():
            raise ValueError(
                f"registry_dir {str(self.registry_dir)!r} exists and is not a directory"
            )

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def models_dir(self) -> Path:
        return self.registry_dir / "models"

    @property
    def manifests_dir(self) -> Path:
        return self.registry_dir / "manifests"

    def model_path(self, digest: str) -> Path:
        """Path of the pickled artifact with ``digest``."""
        return self.models_dir / f"{digest}.pkl"

    def manifest_path(self, name: str, version: int) -> Path:
        """Path of the manifest of ``name`` at ``version``."""
        return self.manifests_dir / name / f"v{version}.json"

    # ------------------------------------------------------------------ #
    # promotion
    # ------------------------------------------------------------------ #
    def promote(
        self,
        point: DesignPoint,
        name: str,
        *,
        seed: int = 0,
        resolution_bits: int = 4,
        technology: EGFETTechnology | None = None,
        training_sigma: float = 0.0,
        robustness_weight: float = 1.0,
    ) -> ModelArtifact:
        """Promote a trained design point to a named, versioned artifact.

        Idempotent on content: when ``name`` already has a version with the
        same content digest, that existing artifact is returned untouched.
        Otherwise the next version of ``name`` is allocated and both the
        pickled artifact and its manifest are written atomically.
        """
        if not _NAME_RE.fullmatch(name):
            raise ValueError(
                f"invalid model name {name!r}: want lowercase "
                "[a-z0-9._-], max 64 chars, leading alphanumeric"
            )
        technology = technology if technology is not None else default_technology()
        digest = artifact_digest(
            point,
            seed=seed,
            resolution_bits=resolution_bits,
            technology=technology,
            training_sigma=training_sigma,
            robustness_weight=robustness_weight,
        )
        for version in self.versions(name):
            manifest = self._read_manifest(name, version)
            if manifest.get("digest") == digest:
                return self.load(name, version)

        unary = UnaryDecisionTree(point.tree)
        if unary.n_inputs > 0:
            frontend = build_bespoke_frontend(unary, technology)
            adc_config = {
                int(feature): tuple(adc.retained_levels)
                for feature, adc in sorted(frontend.adcs.items())
            }
        else:  # degenerate single-leaf tree: nothing to digitize
            adc_config = {}
        kernel = compile_tree_kernel(point.tree)
        artifact = ModelArtifact(
            name=name,
            version=self._next_version(name),
            digest=digest,
            dataset=point.dataset,
            depth=point.depth,
            tau=point.tau,
            seed=seed,
            resolution_bits=resolution_bits,
            accuracy=point.accuracy,
            training_sigma=float(training_sigma),
            robustness_weight=float(robustness_weight),
            tree=point.tree,
            technology=technology,
            hardware=point.hardware,
            adc_config=adc_config,
            kernel_meta={
                "n_digits": int(kernel.n_digits),
                "n_cubes": int(kernel.n_cubes),
                "n_literals": int(kernel.n_literals),
                "n_classes": int(kernel.n_classes),
                "word_bits": int(WORD_BITS),
            },
            datasheet=generate_datasheet(
                point.tree,
                name=f"{name} ({point.dataset}, depth={point.depth}, "
                f"tau={point.tau:g})",
                technology=technology,
            ),
            created_utc=time.time(),
        )
        self._write_atomic(
            self.model_path(digest),
            pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._write_atomic(
            self.manifest_path(name, artifact.version),
            json.dumps(artifact.manifest(), sort_keys=True, indent=2).encode("utf-8"),
        )
        return artifact

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def list_models(self) -> list[str]:
        """Sorted names that have at least one promoted version."""
        if not self.manifests_dir.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.manifests_dir.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """Ascending promoted versions of ``name`` (empty when unknown)."""
        directory = self.manifests_dir / name
        if not directory.is_dir():
            return []
        versions = []
        for path in directory.glob("v*.json"):
            try:
                versions.append(int(path.stem[1:]))
            except ValueError:
                continue
        return sorted(versions)

    def resolve_version(self, name: str, version: int | None = None) -> int:
        """``version`` validated, or the latest version of ``name``."""
        known = self.versions(name)
        if not known:
            raise KeyError(f"no model named {name!r} in {self.registry_dir}")
        if version is None:
            return known[-1]
        if version not in known:
            raise KeyError(
                f"model {name!r} has no version {version} (known: {known})"
            )
        return version

    def manifest(self, name: str, version: int | None = None) -> dict:
        """The light manifest of ``name`` at ``version`` (default latest)."""
        return self._read_manifest(name, self.resolve_version(name, version))

    def load(self, name: str, version: int | None = None) -> ModelArtifact:
        """Load the full artifact of ``name`` at ``version`` (default latest)."""
        manifest = self.manifest(name, version)
        path = self.model_path(manifest["digest"])
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError as exc:
            raise KeyError(
                f"manifest {manifest['name']}/v{manifest['version']} points at "
                f"missing artifact {path.name}"
            ) from exc

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _read_manifest(self, name: str, version: int) -> dict:
        with open(self.manifest_path(name, version), "r", encoding="utf-8") as handle:
            return json.load(handle)

    def _next_version(self, name: str) -> int:
        known = self.versions(name)
        return (known[-1] + 1) if known else 1

    def _write_atomic(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry(registry_dir={str(self.registry_dir)!r})"


def promote_design(
    registry: ModelRegistry,
    dataset: str,
    depth: int,
    tau: float,
    *,
    name: str | None = None,
    seed: int = 0,
    resolution_bits: int = 4,
    technology: EGFETTechnology | None = None,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
    cache_dir: str | Path | None = None,
) -> ModelArtifact:
    """Train-or-reuse one ``(dataset, depth, tau)`` point and promote it.

    The fast path is a **read-only** hit on the suite cache: when a full
    benchmark-suite run for ``dataset`` is stored (default grid, same seed
    and training knobs), the matching point is lifted out of its
    ``exploration`` list without writing a byte to the cache directory (the
    lookup store is opened with ``touch_on_get=False`` and its stats are
    never flushed).  On a miss, exactly that one grid point is retrained
    with the suite's split/quantization protocol -- bit-identical to what
    the sweep would have produced -- again without touching the cache.
    """
    from repro.core.exploration import DEFAULT_DEPTHS, DEFAULT_TAUS, DesignSpaceExplorer
    from repro.core.sharding import suite_result_key
    from repro.core.store import ResultStore, default_cache_dir
    from repro.datasets.registry import canonical_name, load_dataset
    from repro.mltrees.evaluation import train_test_split
    from repro.mltrees.quantize import quantize_dataset

    canonical = canonical_name(dataset)
    technology = technology if technology is not None else default_technology()
    point: DesignPoint | None = None

    store = ResultStore(
        cache_dir if cache_dir is not None else default_cache_dir(),
        touch_on_get=False,
    )
    key = suite_result_key(
        canonical,
        seed,
        True,
        DEFAULT_DEPTHS,
        DEFAULT_TAUS,
        training_sigma=training_sigma,
        robustness_weight=robustness_weight,
    )
    cached = store.get(key)
    if cached is not None:
        for candidate in cached.exploration:
            if candidate.depth == depth and abs(candidate.tau - tau) < 1e-12:
                point = candidate
                break

    if point is None:
        data = load_dataset(canonical, seed=seed)
        X_train, X_test, y_train, y_test = train_test_split(
            data.X, data.y, test_size=0.3, seed=seed
        )
        explorer = DesignSpaceExplorer(
            technology=technology,
            resolution_bits=resolution_bits,
            depths=(depth,),
            taus=(tau,),
            seed=seed,
            training_sigma=training_sigma,
            robustness_weight=robustness_weight,
        )
        point = explorer.evaluate_point(
            quantize_dataset(X_train, resolution_bits),
            y_train,
            quantize_dataset(X_test, resolution_bits),
            y_test,
            data.n_classes,
            depth,
            tau,
            dataset_name=canonical,
        )

    return registry.promote(
        point,
        name if name is not None else f"{canonical}-d{depth}",
        seed=seed,
        resolution_bits=resolution_bits,
        technology=technology,
        training_sigma=training_sigma,
        robustness_weight=robustness_weight,
    )
