"""Async micro-batching scorer: single-sample requests, batched kernels.

:class:`AsyncScorer` is the serving front door.  Clients call
``await scorer.score(sample)`` with one normalized sensor sample; under the
hood a :class:`~repro.serve.batching.MicroBatcher` accumulates concurrent
requests, each flush stacks them into one matrix, converts it through the
ADC front end **once** (one vectorized ``quantize_array_to_levels`` call --
elementwise, so batching never changes a code), and dispatches a single
engine call (batch tree walk or packed-uint64 bit-parallel kernel, resolved
once at construction via
:func:`repro.mltrees.evaluation.level_predictor`).  Per-request labels are
demultiplexed back to the callers' futures.

Outputs are bit-identical to calling ``tree.predict_levels`` on each sample
alone, regardless of how requests interleave -- property-tested in
``tests/serve/test_scorer.py``.
"""

from __future__ import annotations

import numpy as np

from repro.adc.thermometer import quantize_array_to_levels
from repro.mltrees.evaluation import level_predictor, resolve_engine
from repro.serve.batching import BatchingConfig, MicroBatcher
from repro.serve.registry import ModelArtifact


class AsyncScorer:
    """Score single samples through one batched kernel call per flush.

    Parameters
    ----------
    model:
        A promoted :class:`~repro.serve.registry.ModelArtifact` or a bare
        trained :class:`~repro.mltrees.tree.DecisionTree`.
    engine:
        ``"bitparallel"`` (default: the packed-uint64 kernel, compiled once
        here) or ``"batch"``.  Bit-identical either way.
    config:
        Accumulate/flush policy (see
        :class:`~repro.serve.batching.BatchingConfig`).

    Use as an async context manager so shutdown always drains in-flight
    requests::

        async with AsyncScorer(artifact) as scorer:
            label = await scorer.score(sample)
    """

    def __init__(
        self,
        model: ModelArtifact | object,
        engine: str = "bitparallel",
        config: BatchingConfig | None = None,
    ):
        if isinstance(model, ModelArtifact):
            self.tree = model.tree
            self.resolution_bits = model.resolution_bits
            self.model_name: str | None = f"{model.name}/v{model.version}"
        else:  # a bare trained DecisionTree
            self.tree = model
            self.resolution_bits = model.resolution_bits
            self.model_name = None
        self.engine = resolve_engine(engine)
        self.n_features = self.tree.n_features
        # Resolve engine dispatch (and compile the bit-parallel kernel) once;
        # flushes then pay zero per-call dispatch or compilation cost.
        self._predict_levels = level_predictor(self.tree, self.engine)
        self._batcher = MicroBatcher(self._flush, config)

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    async def score(self, sample) -> int:
        """Score one normalized ``(n_features,)`` sample; returns its label.

        Suspends until the servicing flush completes (bounded by
        ``max_wait_us`` at low load, by backpressure at overload).
        """
        return await self._batcher.submit(self._as_row(sample))

    def score_one(self, sample) -> int:
        """Synchronous single-request reference path (no batching).

        Pays the full per-request cost -- one 1-row quantization and one
        1-row engine call -- exactly what a naive request-per-call server
        would do.  The serving benchmark measures micro-batching speedups
        against this.  Bit-identical to :meth:`score`.
        """
        row = self._as_row(sample)[np.newaxis, :]
        levels = quantize_array_to_levels(row, self.resolution_bits)
        return int(self._predict_levels(levels)[0])

    def _as_row(self, sample) -> np.ndarray:
        row = np.asarray(sample, dtype=float)
        if row.shape != (self.n_features,):
            raise ValueError(
                f"expected a ({self.n_features},) sample, got shape {row.shape}"
            )
        return row

    # ------------------------------------------------------------------ #
    # flush path (one batched kernel call)
    # ------------------------------------------------------------------ #
    def _flush(self, rows: list[np.ndarray]) -> list[int]:
        X = np.stack(rows)
        levels = quantize_array_to_levels(X, self.resolution_bits)
        labels = self._predict_levels(levels)
        return [int(label) for label in labels]

    # ------------------------------------------------------------------ #
    # lifecycle and introspection
    # ------------------------------------------------------------------ #
    async def close(self) -> None:
        """Drain in-flight requests, then reject further submissions."""
        await self._batcher.close()

    @property
    def closed(self) -> bool:
        return self._batcher.closed

    @property
    def stats(self):
        """Flush accounting (:class:`~repro.serve.batching.BatcherStats`)."""
        return self._batcher.stats

    async def __aenter__(self) -> "AsyncScorer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = self.model_name or type(self.tree).__name__
        return f"AsyncScorer(model={target!r}, engine={self.engine!r})"
