"""Seeded multi-objective optimization primitives (dependency-free).

Three layers, all over **minimize-tuples** (maximized metrics enter
negated, see :func:`repro.search.study.parse_objectives`):

* :func:`non_dominated_sort` -- NSGA-II-style front peeling built on the
  brute-force dominance primitives of :mod:`repro.core.pareto` (which the
  property tests use as the oracle);
* :func:`crowding_distance` and :func:`hypervolume` -- the diversity and
  front-quality measures (exact 2-D sweep, recursive slicing beyond);
* :class:`ParetoTPESampler` -- a seeded ask/tell sampler: uniform startup
  trials, then candidates are perturbations of the current elite set
  (front rank + crowding) scored by a Parzen-window density ratio
  ``l(x) / g(x)`` in the encoded unit hypercube, TPE-style.  Everything is
  drawn from one ``numpy`` Generator in a fixed order, so a seed fully
  determines the trial sequence -- the bit-reproducibility the study
  guarantees build on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.pareto import non_dominated_indices
from repro.search.space import CategoricalDimension, SearchSpace


def non_dominated_sort(objectives) -> list[list[int]]:
    """Partition minimize-tuples into successive non-dominated fronts.

    Front 0 is exactly the brute-force non-dominated set of the input;
    front ``k`` is the non-dominated set once fronts ``0..k-1`` are
    removed (NSGA-II's peeling).  Indices within a front keep input order.
    """
    objectives = [tuple(float(v) for v in row) for row in objectives]
    remaining = list(range(len(objectives)))
    fronts: list[list[int]] = []
    while remaining:
        local = non_dominated_indices([objectives[i] for i in remaining])
        front = [remaining[i] for i in local]
        fronts.append(front)
        selected = set(front)
        remaining = [i for i in remaining if i not in selected]
    return fronts


def crowding_distance(objectives) -> list[float]:
    """NSGA-II crowding distance of each point *within one front*.

    Boundary points of every objective get ``inf`` (they are always kept);
    interior points get the normalized side-length sum of their bounding
    cuboid.  Larger means less crowded.  The caller passes one front at a
    time -- mixing fronts makes the distances meaningless.
    """
    n = len(objectives)
    if n == 0:
        return []
    objectives = [tuple(float(v) for v in row) for row in objectives]
    n_objectives = len(objectives[0])
    distances = [0.0] * n
    for axis in range(n_objectives):
        order = sorted(range(n), key=lambda i: objectives[i][axis])
        low = objectives[order[0]][axis]
        high = objectives[order[-1]][axis]
        distances[order[0]] = distances[order[-1]] = math.inf
        span = high - low
        if span <= 0:
            continue
        for rank in range(1, n - 1):
            i = order[rank]
            if distances[i] == math.inf:
                continue
            previous = objectives[order[rank - 1]][axis]
            following = objectives[order[rank + 1]][axis]
            distances[i] += (following - previous) / span
    return distances


def hypervolume(points, reference) -> float:
    """Hypervolume dominated by minimize-tuples ``points`` w.r.t. ``reference``.

    The reference point must be weakly worse than every point that should
    contribute; points not strictly better than the reference on every
    component contribute nothing and are dropped.  Exact: a linear sweep in
    2-D, recursive slicing along the last objective beyond (fine for the
    front sizes a study produces).
    """
    reference = tuple(float(r) for r in reference)
    n_objectives = len(reference)
    clipped = []
    for point in points:
        point = tuple(float(v) for v in point)
        if len(point) != n_objectives:
            raise ValueError(
                f"point has {len(point)} objectives, reference has {n_objectives}"
            )
        if all(v < r for v, r in zip(point, reference)):
            clipped.append(point)
    if not clipped:
        return 0.0
    front = [clipped[i] for i in non_dominated_indices(clipped)]
    front = sorted(set(front))
    if n_objectives == 1:
        return reference[0] - min(p[0] for p in front)
    if n_objectives == 2:
        # Sweep ascending in the first objective; the non-dominated front is
        # strictly descending in the second, so each point owns the slab up
        # to its successor's first coordinate.
        total = 0.0
        for i, (x, y) in enumerate(front):
            x_next = front[i + 1][0] if i + 1 < len(front) else reference[0]
            total += (x_next - x) * (reference[1] - y)
        return total
    # Slice along the last objective: each slab's thickness times the
    # (n-1)-dimensional hypervolume of the points already "active".
    levels = sorted({p[-1] for p in front})
    total = 0.0
    for k, level in enumerate(levels):
        thickness = (levels[k + 1] if k + 1 < len(levels) else reference[-1]) - level
        active = [p[:-1] for p in front if p[-1] <= level]
        total += thickness * hypervolume(active, reference[:-1])
    return total


def pareto_rank_order(objectives) -> list[int]:
    """Indices ordered best-first by (front rank, crowding distance).

    The NSGA-II selection order: earlier fronts first, and within a front
    less-crowded points first.  Ties keep input order (stable), so the
    ordering -- and everything built on it -- is deterministic.
    """
    order: list[int] = []
    for front in non_dominated_sort(objectives):
        distances = crowding_distance([objectives[i] for i in front])
        ranked = sorted(
            range(len(front)), key=lambda j: (-distances[j], front[j])
        )
        order.extend(front[j] for j in ranked)
    return order


class ParetoTPESampler:
    """Seeded ask/tell sampler over a :class:`~repro.search.space.SearchSpace`.

    Parameters
    ----------
    space:
        The parameter space; proposals live in its encoded unit hypercube.
    seed:
        Seeds the single Generator every draw comes from; the seed plus the
        tell sequence fully determine every ask.
    n_startup_trials:
        Uniform random trials before the model kicks in (the exploration
        phase every TPE needs).
    n_candidates:
        Candidate perturbations scored per proposal; the density-ratio
        argmax among them is suggested.
    gamma:
        Fraction of observed trials forming the elite ("good") split, by
        NSGA-II order (front rank, then crowding).
    bandwidth:
        Gaussian Parzen bandwidth in the encoded space (numeric dims).

    Dedup: a configuration is never suggested twice (canonical
    :meth:`~repro.search.space.SearchSpace.config_id` identity); on a
    finite space whose configurations are exhausted, :meth:`ask` returns
    fewer than requested (possibly zero) rather than repeating itself.
    """

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        n_startup_trials: int = 6,
        n_candidates: int = 24,
        gamma: float = 0.35,
        bandwidth: float = 0.2,
    ):
        if n_startup_trials < 1:
            raise ValueError("n_startup_trials must be >= 1")
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        if not 0 < gamma < 1:
            raise ValueError("gamma must be in (0, 1)")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.space = space
        self.seed = int(seed)
        self.n_startup_trials = int(n_startup_trials)
        self.n_candidates = int(n_candidates)
        self.gamma = float(gamma)
        self.bandwidth = float(bandwidth)
        self._rng = np.random.default_rng(self.seed)
        #: config_id -> canonical config, everything ever suggested.
        self._suggested: dict[str, dict] = {}
        #: (encoded vector, objectives) of every told trial, tell order.
        self._observations: list[tuple[tuple[float, ...], tuple[float, ...]]] = []
        self._categorical = [
            isinstance(dim, CategoricalDimension) for dim in space.dimensions
        ]

    # ------------------------------------------------------------------ #
    # ask / tell
    # ------------------------------------------------------------------ #
    def ask(self, n: int = 1) -> list[dict]:
        """Suggest up to ``n`` fresh canonical configurations."""
        if n < 0:
            raise ValueError("n must be >= 0")
        batch: list[dict] = []
        for _ in range(n):
            config = self._propose_unseen()
            if config is None:
                break
            self._suggested[self.space.config_id(config)] = config
            batch.append(config)
        return batch

    def tell(self, config: dict, objectives) -> None:
        """Record one evaluated trial (objectives: minimize-tuple)."""
        config = self.space.canonical(config)
        self._suggested.setdefault(self.space.config_id(config), config)
        self._observations.append(
            (self.space.encode(config), tuple(float(v) for v in objectives))
        )

    @property
    def n_observed(self) -> int:
        return len(self._observations)

    # ------------------------------------------------------------------ #
    # proposal machinery
    # ------------------------------------------------------------------ #
    def _propose_unseen(self) -> dict | None:
        cardinality = self.space.cardinality
        if cardinality is not None and len(self._suggested) >= cardinality:
            return None
        use_model = len(self._observations) >= self.n_startup_trials
        attempts = max(64, 8 * self.n_candidates)
        for _ in range(attempts):
            config = self._model_proposal() if use_model else self.space.sample(self._rng)
            if self.space.config_id(config) not in self._suggested:
                return config
        if cardinality is not None:
            # Finite space, random draws kept colliding: fall back to the
            # first unseen configuration in canonical enumeration order.
            for config in self.space.enumerate():
                if self.space.config_id(config) not in self._suggested:
                    return config
            return None
        # Continuous space: collisions this persistent mean the canonical
        # grid is effectively saturated around the model's mode; one last
        # uniform draw keeps the study moving.
        config = self.space.sample(self._rng)
        return None if self.space.config_id(config) in self._suggested else config

    def _model_proposal(self) -> dict:
        """One TPE-style proposal: perturb an elite, keep the best ratio."""
        vectors = [vec for vec, _ in self._observations]
        objectives = [obj for _, obj in self._observations]
        order = pareto_rank_order(objectives)
        n_good = max(1, math.ceil(self.gamma * len(order)))
        good = [vectors[i] for i in order[:n_good]]
        bad = [vectors[i] for i in order[n_good:]] or good
        best_vector = None
        best_score = -math.inf
        for _ in range(self.n_candidates):
            base = good[int(self._rng.integers(len(good)))]
            candidate = self._perturb(base)
            score = self._log_density(candidate, good) - self._log_density(
                candidate, bad
            )
            if score > best_score:
                best_score = score
                best_vector = candidate
        return self.space.decode(best_vector)

    def _perturb(self, base) -> tuple[float, ...]:
        out = []
        for axis, u in enumerate(base):
            if self._categorical[axis]:
                # Keep the elite's choice most of the time, else resample.
                if float(self._rng.random()) < 0.75:
                    out.append(u)
                else:
                    out.append(float(self._rng.random()))
            else:
                value = u + float(self._rng.normal(0.0, self.bandwidth))
                out.append(min(1.0, max(0.0, value)))
        return tuple(out)

    def _log_density(self, vector, sample) -> float:
        """Log Parzen-window density of ``vector`` under ``sample``.

        Numeric axes use Gaussian kernels at :attr:`bandwidth`; categorical
        axes use the add-one-smoothed match frequency of the decoded
        choice.  Axes are treated independently (the classic TPE
        factorization).
        """
        total = 0.0
        for axis, value in enumerate(vector):
            column = [point[axis] for point in sample]
            if self._categorical[axis]:
                dim = self.space.dimensions[axis]
                choice = dim.decode(value)
                matches = sum(1 for u in column if dim.decode(u) == choice)
                total += math.log(
                    (matches + 1.0) / (len(column) + dim.n_choices)
                )
            else:
                deviations = (np.asarray(column) - value) / self.bandwidth
                kernels = np.exp(-0.5 * deviations**2)
                total += math.log(float(kernels.mean()) + 1e-12)
        return total
