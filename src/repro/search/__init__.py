"""Budgeted multi-objective design-space search.

Replaces the exhaustive depth x tau grid of Section IV with a seeded,
dependency-free optimization loop: a typed parameter space
(:mod:`repro.search.space`), a Pareto-aware TPE-style sampler with
NSGA-II-style selection (:mod:`repro.search.optimizer`), and a
cache-warm-started study runner (:mod:`repro.search.study`) that fans
trials through the :class:`~repro.core.executor.Executor` and extracts
fronts with :mod:`repro.core.pareto`.  See ``docs/SEARCH.md``.
"""

from repro.search.dashboard import render_dashboard, render_surface
from repro.search.optimizer import (
    ParetoTPESampler,
    crowding_distance,
    hypervolume,
    non_dominated_sort,
)
from repro.search.space import (
    CategoricalDimension,
    FloatDimension,
    IntDimension,
    SearchSpace,
    get_space,
    paper_space,
    space_names,
    wide_space,
)
from repro.search.study import Study, StudyResult, Trial, parse_objectives

__all__ = [
    "CategoricalDimension",
    "FloatDimension",
    "IntDimension",
    "SearchSpace",
    "get_space",
    "paper_space",
    "space_names",
    "wide_space",
    "ParetoTPESampler",
    "crowding_distance",
    "hypervolume",
    "non_dominated_sort",
    "Study",
    "StudyResult",
    "Trial",
    "parse_objectives",
    "render_dashboard",
    "render_surface",
]
