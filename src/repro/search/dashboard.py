"""Self-contained HTML dashboards for search and robustness records.

:func:`render_dashboard` turns the JSON study record of
:meth:`repro.search.study.StudyResult.to_json_dict` into one static HTML
page: an inline-SVG scatter of the first two objectives with the
non-dominated front highlighted and connected, plus a sortable-by-eye
trial table.  :func:`render_surface` does the same for robustness-surface
records (:meth:`repro.analysis.experiments.RobustnessSurface.to_json_dict`):
one inline-SVG heatmap per surface, sigma rows over the depth x tau grid,
cell color encoding the mean accuracy drop.  No external assets, no
JavaScript -- the pages are CI artifacts that must render identically
forever, from a file:// URL, with no network.  Rendering is deterministic:
equal records produce equal bytes.
"""

from __future__ import annotations

import html

_WIDTH, _HEIGHT = 640, 420
_MARGIN = 54


def _scale(value: float, low: float, high: float, out_low: float, out_high: float) -> float:
    if high == low:
        return (out_low + out_high) / 2.0
    return out_low + (value - low) / (high - low) * (out_high - out_low)


def _axis_ticks(low: float, high: float, n: int = 5) -> list[float]:
    if high == low:
        return [low]
    return [low + k * (high - low) / (n - 1) for k in range(n)]


def _fmt(value) -> str:
    if value is None:
        return "--"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _scatter_svg(record: dict) -> str:
    """The objective-space scatter (first two objectives) as inline SVG."""
    trials = record["trials"]
    labels = record["objectives"]
    front = set(record["front"])
    xs = [trial["objectives"][0] for trial in trials]
    ys = [trial["objectives"][1] for trial in trials]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    pad_x = (x_high - x_low) * 0.06 or max(abs(x_low), 1.0) * 0.05
    pad_y = (y_high - y_low) * 0.06 or max(abs(y_low), 1.0) * 0.05
    x_low, x_high = x_low - pad_x, x_high + pad_x
    y_low, y_high = y_low - pad_y, y_high + pad_y

    def sx(v):
        return _scale(v, x_low, x_high, _MARGIN, _WIDTH - 16)

    def sy(v):
        # SVG y grows downward; better (smaller) objective values plot lower-left.
        return _scale(v, y_low, y_high, _HEIGHT - _MARGIN, 16)

    parts = [
        f'<svg viewBox="0 0 {_WIDTH} {_HEIGHT}" role="img" '
        f'aria-label="objective space">',
        f'<rect x="{_MARGIN}" y="16" width="{_WIDTH - 16 - _MARGIN}" '
        f'height="{_HEIGHT - _MARGIN - 16}" class="plot-bg"/>',
    ]
    for tick in _axis_ticks(x_low, x_high):
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="16" x2="{x:.1f}" y2="{_HEIGHT - _MARGIN}" '
            f'class="grid"/>'
            f'<text x="{x:.1f}" y="{_HEIGHT - _MARGIN + 16}" class="tick" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    for tick in _axis_ticks(y_low, y_high):
        y = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN}" y1="{y:.1f}" x2="{_WIDTH - 16}" y2="{y:.1f}" '
            f'class="grid"/>'
            f'<text x="{_MARGIN - 6}" y="{y + 4:.1f}" class="tick" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    parts.append(
        f'<text x="{(_MARGIN + _WIDTH - 16) / 2:.0f}" y="{_HEIGHT - 10}" '
        f'class="axis" text-anchor="middle">{html.escape(labels[0])} '
        f'(minimized)</text>'
        f'<text x="14" y="{(_HEIGHT - _MARGIN + 16) / 2:.0f}" class="axis" '
        f'text-anchor="middle" transform="rotate(-90 14 '
        f'{(_HEIGHT - _MARGIN + 16) / 2:.0f})">{html.escape(labels[1])} '
        f'(minimized)</text>'
    )
    # Front polyline (front numbers arrive sorted by objective tuple).
    front_points = [t for t in trials if t["number"] in front]
    if len(front_points) > 1:
        path = " ".join(
            f"{sx(t['objectives'][0]):.1f},{sy(t['objectives'][1]):.1f}"
            for t in front_points
        )
        parts.append(f'<polyline points="{path}" class="front-line"/>')
    for trial in trials:
        x, y = sx(trial["objectives"][0]), sy(trial["objectives"][1])
        on_front = trial["number"] in front
        cls = "front" if on_front else ("cached" if trial["from_cache"] else "trained")
        title = (
            f"trial {trial['number']}: "
            + ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(trial["config"].items()))
        )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{6 if on_front else 4}" '
            f'class="pt {cls}"><title>{html.escape(title)}</title></circle>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _trial_table(record: dict) -> str:
    front = set(record["front"])
    header = (
        "<tr><th>#</th><th>config</th><th>accuracy</th><th>power [uW]</th>"
        "<th>area [mm2]</th><th>mean drop</th><th>source</th><th>front</th></tr>"
    )
    rows = []
    for trial in record["trials"]:
        config = ", ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(trial["config"].items())
        )
        rows.append(
            "<tr{cls}><td>{n}</td><td class=\"config\">{config}</td>"
            "<td>{acc}</td><td>{power}</td><td>{area}</td><td>{drop}</td>"
            "<td>{source}</td><td>{front}</td></tr>".format(
                cls=' class="on-front"' if trial["number"] in front else "",
                n=trial["number"],
                config=html.escape(config),
                acc=_fmt(trial["accuracy"]),
                power=_fmt(trial["power_uw"]),
                area=_fmt(trial["area_mm2"]),
                drop=_fmt(trial["mean_accuracy_drop"]),
                source="cache" if trial["from_cache"] else "trained",
                front="*" if trial["number"] in front else "",
            )
        )
    return f"<table>{header}{''.join(rows)}</table>"


_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2a; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
.meta { color: #555; font-size: 0.9rem; }
.meta code { background: #f2f2f7; padding: 0.1rem 0.3rem; border-radius: 3px; }
svg { width: 100%; height: auto; max-width: 46rem; display: block; }
.plot-bg { fill: #fafafc; stroke: #ccc; }
.grid { stroke: #e8e8ee; stroke-width: 1; }
.tick { font-size: 10px; fill: #777; }
.axis { font-size: 12px; fill: #333; }
.pt.trained { fill: #8888aa; opacity: 0.75; }
.pt.cached { fill: #4a90d9; opacity: 0.75; }
.pt.front { fill: #d94a4a; stroke: #7a1f1f; stroke-width: 1; }
.front-line { fill: none; stroke: #d94a4a; stroke-width: 1.5; stroke-dasharray: 4 3; }
.cell { stroke: #ddd; stroke-width: 0.5; }
table { border-collapse: collapse; font-size: 0.85rem; width: 100%; }
th, td { border: 1px solid #ddd; padding: 0.3rem 0.5rem; text-align: right; }
th { background: #f2f2f7; } td.config { text-align: left; }
tr.on-front { background: #fdf0f0; }
.legend span { margin-right: 1.2rem; font-size: 0.85rem; }
.dot { display: inline-block; width: 0.7em; height: 0.7em; border-radius: 50%;
       margin-right: 0.3em; }
"""


def render_dashboard(record: dict) -> str:
    """Render one study record (``StudyResult.to_json_dict()``) to HTML."""
    required = {"trials", "front", "objectives", "dataset"}
    missing = required - set(record)
    if missing:
        raise ValueError(f"study record is missing fields: {sorted(missing)}")
    if not record["trials"]:
        body = "<p>The study recorded no trials.</p>"
    else:
        legend = (
            '<p class="legend">'
            '<span><span class="dot" style="background:#d94a4a"></span>'
            "Pareto front</span>"
            '<span><span class="dot" style="background:#4a90d9"></span>'
            "resolved from cache</span>"
            '<span><span class="dot" style="background:#8888aa"></span>'
            "trained</span></p>"
        )
        body = legend + _scatter_svg(record) + "<h2>Trials</h2>" + _trial_table(record)
    objectives = ", ".join(record["objectives"])
    meta = (
        f'<p class="meta">dataset <code>{html.escape(str(record["dataset"]))}</code>'
        f' &middot; objectives <code>{html.escape(objectives)}</code>'
        f' &middot; seed {record.get("seed", "?")}'
        f' &middot; {record.get("n_trials", len(record["trials"]))} trials'
        f' ({record.get("n_from_cache", "?")} from cache,'
        f' {record.get("n_trained", "?")} trained)</p>'
    )
    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        f"<title>search study: {html.escape(str(record['dataset']))}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>Budgeted design-space search &mdash; "
        f"{html.escape(str(record['dataset']))}</h1>"
        f"{meta}{body}</body></html>"
    )


# ---------------------------------------------------------------------- #
# robustness-surface heatmap
# ---------------------------------------------------------------------- #
def _heat_color(fraction: float) -> str:
    """Deterministic white -> dark-red ramp for a drop in [0, 1] of the max."""
    fraction = min(max(fraction, 0.0), 1.0)
    start, end = (255, 255, 255), (170, 30, 30)
    channels = (
        round(start[i] + (end[i] - start[i]) * fraction) for i in range(3)
    )
    return "#{:02x}{:02x}{:02x}".format(*channels)


def _surface_svg(record: dict) -> str:
    """The sigma x (depth, tau) heatmap of one surface record, as inline SVG."""
    sigmas = record["sigmas"]
    grid = [(cell["depth"], cell["tau"]) for cell in record["cells"]]
    columns = list(dict.fromkeys(grid))
    cell_by_coord = {
        (cell["sigma_v"], cell["depth"], cell["tau"]): cell
        for cell in record["cells"]
    }
    max_drop = max(cell["mean_accuracy_drop"] for cell in record["cells"])
    left, top, legend = 96, 24, 36
    cell_w = max(8, min(24, (_WIDTH - left - 16) // max(len(columns), 1)))
    cell_h = 26
    width = left + cell_w * len(columns) + 16
    height = top + cell_h * len(sigmas) + legend + 28
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="robustness surface">'
    ]
    for row, sigma in enumerate(sigmas):
        y = top + row * cell_h
        parts.append(
            f'<text x="{left - 8}" y="{y + cell_h / 2 + 4:.0f}" class="tick" '
            f'text-anchor="end">sigma {_fmt(sigma * 1000.0)} mV</text>'
        )
        for col, (depth, tau) in enumerate(columns):
            cell = cell_by_coord[(sigma, depth, tau)]
            drop = cell["mean_accuracy_drop"]
            fill = _heat_color(drop / max_drop if max_drop > 0 else 0.0)
            title = (
                f"d={depth}, tau={_fmt(tau)}, sigma={_fmt(sigma * 1000.0)} mV: "
                f"mean drop {drop * 100.0:.2f}%, "
                f"worst {cell['worst_case_drop'] * 100.0:.2f}%"
            )
            parts.append(
                f'<rect x="{left + col * cell_w}" y="{y}" width="{cell_w}" '
                f'height="{cell_h}" fill="{fill}" class="cell">'
                f"<title>{html.escape(title)}</title></rect>"
            )
    # Column labels: one tick at each new depth (tau-major columns repeat).
    axis_y = top + len(sigmas) * cell_h + 14
    seen_depths = set()
    for col, (depth, tau) in enumerate(columns):
        if depth in seen_depths:
            continue
        seen_depths.add(depth)
        parts.append(
            f'<text x="{left + col * cell_w + 2}" y="{axis_y}" class="tick">'
            f"d={depth}</text>"
        )
    parts.append(
        f'<text x="{left}" y="{axis_y + 16}" class="axis">depth-major grid, '
        f"tau {_fmt(min(t for _, t in columns))}..."
        f"{_fmt(max(t for _, t in columns))} within each depth</text>"
    )
    # Color legend: min -> max mean drop.
    legend_y = axis_y + legend - 10
    for step in range(21):
        parts.append(
            f'<rect x="{left + step * 6}" y="{legend_y}" width="6" height="10" '
            f'fill="{_heat_color(step / 20)}"/>'
        )
    parts.append(
        f'<text x="{left + 21 * 6 + 6}" y="{legend_y + 9}" class="tick">'
        f"mean drop 0...{max_drop * 100.0:.2f}%</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _surface_section(record: dict) -> str:
    required = {"dataset", "sigmas", "depths", "taus", "cells"}
    missing = required - set(record)
    if missing:
        raise ValueError(f"surface record is missing fields: {sorted(missing)}")
    if not record["cells"]:
        raise ValueError("surface record has no cells")
    sigmas = ", ".join(f"{sigma * 1000.0:g} mV" for sigma in record["sigmas"])
    meta = (
        f'<p class="meta">dataset <code>{html.escape(str(record["dataset"]))}</code>'
        f" &middot; sigmas <code>{html.escape(sigmas)}</code>"
        f' &middot; seed {record.get("seed", "?")}'
        f' &middot; {record.get("n_trials", "?")} Monte-Carlo trials/point'
        f' &middot; training sigma {_fmt(record.get("training_sigma"))} V</p>'
    )
    return (
        f"<h2>{html.escape(str(record['dataset']))}</h2>"
        + meta
        + _surface_svg(record)
    )


def render_surface(records) -> str:
    """Render robustness-surface record(s) to one static HTML page.

    ``records`` is one record dict
    (:meth:`~repro.analysis.experiments.RobustnessSurface.to_json_dict`) or
    a sequence of them -- one heatmap section per benchmark, all on one
    self-contained page.
    """
    if isinstance(records, dict):
        records = [records]
    records = list(records)
    if not records:
        raise ValueError("at least one surface record is required")
    sections = "".join(_surface_section(record) for record in records)
    title = ", ".join(str(record["dataset"]) for record in records)
    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        f"<title>robustness surface: {html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>Comparator-offset robustness surface</h1>"
        f"{sections}</body></html>"
    )
