"""Typed parameter spaces for the budgeted design-space search.

A :class:`SearchSpace` is an ordered tuple of typed dimensions -- integer,
(log-)float and categorical -- over the co-design hyperparameters: tree
depth, Gini tolerance tau, ADC resolution bits, technology corner and the
offset-aware training knobs of PR 4.  Every dimension maps between its
native values and the unit interval (``encode`` / ``decode``), and
**decoding always snaps onto the dimension's canonical grid**: two
floating-point spellings of the same trial collapse to one canonical
configuration, one :func:`SearchSpace.config_id`, and therefore one
deterministic cache identity
(:func:`repro.core.sharding.canonical_trial_key`).  That snap is what makes
trial dedup and cache warm-starts exact instead of epsilon-fuzzy.

Discrete spaces (every dimension integer, categorical or step-quantized)
expose their finite :attr:`SearchSpace.cardinality` and a deterministic
:meth:`SearchSpace.enumerate`, which the sampler uses to terminate cleanly
when a small space is exhausted before the budget is.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

#: Floats are rounded to this many digits when canonicalized, so encode /
#: decode round trips and JSON serialization can never drift a trial onto a
#: second cache identity.
_FLOAT_DIGITS = 12


def _canonical_float(value: float) -> float:
    """Round to the canonical precision; collapses -0.0 onto 0.0."""
    return round(float(value), _FLOAT_DIGITS) + 0.0


@dataclass(frozen=True)
class IntDimension:
    """An inclusive integer range ``low..high``."""

    name: str
    low: int
    high: int

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"{self.name}: low must be <= high")

    @property
    def n_choices(self) -> int:
        return self.high - self.low + 1

    def grid(self) -> tuple[int, ...]:
        return tuple(range(self.low, self.high + 1))

    def encode(self, value) -> float:
        value = self.canonical(value)
        if self.n_choices == 1:
            return 0.5
        return (value - self.low) / (self.high - self.low)

    def decode(self, u: float) -> int:
        u = min(1.0, max(0.0, float(u)))
        return self.low + int(round(u * (self.high - self.low)))

    def canonical(self, value) -> int:
        value = int(round(float(value)))
        if not self.low <= value <= self.high:
            raise ValueError(f"{self.name}: {value} outside [{self.low}, {self.high}]")
        return value

    def describe(self) -> dict:
        return {"type": "int", "name": self.name, "low": self.low, "high": self.high}


@dataclass(frozen=True)
class FloatDimension:
    """A float range, optionally log-scaled or quantized to a step grid.

    ``step`` quantizes the range onto ``low + k * step`` points (making the
    dimension finite); ``log`` spaces the encoding geometrically (requires
    ``low > 0`` and excludes ``step``).
    """

    name: str
    low: float
    high: float
    step: float | None = None
    log: bool = False

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"{self.name}: low must be <= high")
        if self.log:
            if self.low <= 0:
                raise ValueError(f"{self.name}: log dimensions require low > 0")
            if self.step is not None:
                raise ValueError(f"{self.name}: step and log are mutually exclusive")
        if self.step is not None and self.step <= 0:
            raise ValueError(f"{self.name}: step must be positive")

    @property
    def _n_steps(self) -> int:
        return int(round((self.high - self.low) / self.step))

    @property
    def n_choices(self) -> int | None:
        """Number of grid points (None for a continuous dimension)."""
        if self.step is None:
            return None if self.low < self.high else 1
        return self._n_steps + 1

    def grid(self) -> tuple[float, ...]:
        if self.n_choices is None:
            raise ValueError(f"{self.name}: continuous dimension has no grid")
        if self.step is None:
            return (_canonical_float(self.low),)
        return tuple(
            _canonical_float(self.low + k * self.step) for k in range(self._n_steps + 1)
        )

    def encode(self, value) -> float:
        value = self.canonical(value)
        if self.low == self.high:
            return 0.5
        if self.log:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def decode(self, u: float) -> float:
        u = min(1.0, max(0.0, float(u)))
        if self.low == self.high:
            return _canonical_float(self.low)
        if self.log:
            log_low, log_high = math.log(self.low), math.log(self.high)
            return _canonical_float(math.exp(log_low + u * (log_high - log_low)))
        if self.step is not None:
            k = int(round(u * self._n_steps))
            return _canonical_float(self.low + k * self.step)
        return _canonical_float(self.low + u * (self.high - self.low))

    def canonical(self, value) -> float:
        value = float(value)
        if not (self.low - 1e-9 <= value <= self.high + 1e-9):
            raise ValueError(f"{self.name}: {value} outside [{self.low}, {self.high}]")
        value = min(self.high, max(self.low, value))
        if self.step is not None:
            # Snap onto the step grid: the canonical identity of the trial.
            k = int(round((value - self.low) / self.step))
            k = min(self._n_steps, max(0, k))
            value = self.low + k * self.step
        return _canonical_float(value)

    def describe(self) -> dict:
        out = {"type": "float", "name": self.name, "low": self.low, "high": self.high}
        if self.step is not None:
            out["step"] = self.step
        if self.log:
            out["log"] = True
        return out


@dataclass(frozen=True)
class CategoricalDimension:
    """An explicit tuple of choices (hashable, JSON-serializable)."""

    name: str
    choices: tuple

    def __post_init__(self):
        if not self.choices:
            raise ValueError(f"{self.name}: at least one choice is required")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.name}: choices must be unique")

    @property
    def n_choices(self) -> int:
        return len(self.choices)

    def grid(self) -> tuple:
        return tuple(self.choices)

    def encode(self, value) -> float:
        # Bin centers, so decode(encode(v)) == v for every choice.
        return (self.choices.index(self.canonical(value)) + 0.5) / self.n_choices

    def decode(self, u: float):
        u = min(1.0, max(0.0, float(u)))
        index = min(self.n_choices - 1, int(u * self.n_choices))
        return self.choices[index]

    def canonical(self, value):
        if value in self.choices:
            return value
        raise ValueError(f"{self.name}: {value!r} not among choices {self.choices!r}")

    def describe(self) -> dict:
        return {"type": "categorical", "name": self.name, "choices": list(self.choices)}


Dimension = IntDimension | FloatDimension | CategoricalDimension


class SearchSpace:
    """An ordered, typed parameter space with canonical trial identities.

    Configurations are plain ``{dimension name: value}`` dicts.
    :meth:`canonical` snaps every value onto its dimension's grid and
    :meth:`config_id` renders the canonical configuration as deterministic
    JSON -- the dedup key of the sampler and the study, and the basis of
    the trial's cache identity.
    """

    def __init__(self, dimensions):
        self.dimensions: tuple[Dimension, ...] = tuple(dimensions)
        if not self.dimensions:
            raise ValueError("a search space needs at least one dimension")
        names = [dim.name for dim in self.dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"dimension names must be unique, got {names}")
        self._by_name = {dim.name: dim for dim in self.dimensions}

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(dim.name for dim in self.dimensions)

    def __len__(self) -> int:
        return len(self.dimensions)

    def __getitem__(self, name: str) -> Dimension:
        return self._by_name[name]

    def canonical(self, config: dict) -> dict:
        """Snap every value onto its dimension grid; rejects unknown keys."""
        unknown = set(config) - set(self.names)
        if unknown:
            raise ValueError(f"unknown dimensions: {sorted(unknown)}")
        missing = set(self.names) - set(config)
        if missing:
            raise ValueError(f"missing dimensions: {sorted(missing)}")
        return {dim.name: dim.canonical(config[dim.name]) for dim in self.dimensions}

    def config_id(self, config: dict) -> str:
        """Deterministic identity of a trial configuration (dedup key)."""
        return json.dumps(self.canonical(config), sort_keys=True, separators=(",", ":"))

    def encode(self, config: dict) -> tuple[float, ...]:
        """Map a configuration into the unit hypercube, dimension order."""
        config = self.canonical(config)
        return tuple(dim.encode(config[dim.name]) for dim in self.dimensions)

    def decode(self, vector) -> dict:
        """Map a unit-hypercube vector back onto the canonical grid."""
        vector = tuple(vector)
        if len(vector) != len(self.dimensions):
            raise ValueError(
                f"vector has {len(vector)} components, expected {len(self.dimensions)}"
            )
        return {
            dim.name: dim.decode(u) for dim, u in zip(self.dimensions, vector)
        }

    def sample(self, rng) -> dict:
        """One uniform random configuration (``rng``: numpy Generator)."""
        return self.decode(tuple(float(rng.random()) for _ in self.dimensions))

    @property
    def cardinality(self) -> int | None:
        """Number of distinct configurations (None when any dim is continuous)."""
        total = 1
        for dim in self.dimensions:
            n = dim.n_choices
            if n is None:
                return None
            total *= n
        return total

    def enumerate(self):
        """Yield every configuration of a finite space, in canonical order.

        Dimension-major (last dimension fastest), mirroring the depth-major
        convention of :func:`repro.core.exploration.grid_points`.  Raises on
        continuous spaces.
        """
        if self.cardinality is None:
            raise ValueError("cannot enumerate a continuous search space")

        def rec(prefix: dict, remaining):
            if not remaining:
                yield dict(prefix)
                return
            dim = remaining[0]
            for value in dim.grid():
                prefix[dim.name] = value
                yield from rec(prefix, remaining[1:])
            del prefix[dim.name]

        yield from rec({}, list(self.dimensions))

    def describe(self) -> dict:
        """JSON-serializable description (study records, dashboards)."""
        return {
            "dimensions": [dim.describe() for dim in self.dimensions],
            "cardinality": self.cardinality,
        }


# --------------------------------------------------------------------- #
# the co-design spaces
# --------------------------------------------------------------------- #
def paper_space() -> SearchSpace:
    """The paper's exhaustive grid as a search space (49 configurations).

    Depth 2..8 and tau 0..0.03 in steps of 0.005, everything else pinned to
    the paper's protocol (4-bit ADCs, the default EGFET corner, nominal
    training).  Every configuration lies on the suite grid, so a study over
    this space warm-starts entirely from cached suite results -- and the
    search-efficiency benchmark compares against the exhaustive sweep on
    equal terms.
    """
    return SearchSpace(
        (
            IntDimension("depth", 2, 8),
            FloatDimension("tau", 0.0, 0.03, step=0.005),
            CategoricalDimension("resolution_bits", (4,)),
            CategoricalDimension("technology", ("default",)),
            CategoricalDimension("training_sigma", (0.0,)),
            CategoricalDimension("robustness_weight", (1.0,)),
        )
    )


def wide_space() -> SearchSpace:
    """The enlarged space the budgeted optimizer makes tractable.

    Finer tau (steps of 0.001), depths beyond the paper's 8, 3/4/5-bit ADC
    resolutions and the offset-aware training knobs of PR 4 -- 10 044
    configurations, far past exhaustive-sweep territory, searchable in
    O(budget) trials.
    """
    return SearchSpace(
        (
            IntDimension("depth", 2, 10),
            FloatDimension("tau", 0.0, 0.03, step=0.001),
            CategoricalDimension("resolution_bits", (3, 4, 5)),
            CategoricalDimension("technology", ("default",)),
            FloatDimension("training_sigma", 0.0, 0.05, step=0.01),
            CategoricalDimension("robustness_weight", (0.5, 1.0)),
        )
    )


_SPACES = {"paper": paper_space, "wide": wide_space}


def space_names() -> tuple[str, ...]:
    """Names accepted by :func:`get_space` (and ``repro.cli search --space``)."""
    return tuple(sorted(_SPACES))


def get_space(name: str) -> SearchSpace:
    """Look up a named co-design space (``"paper"`` or ``"wide"``)."""
    try:
        factory = _SPACES[name]
    except KeyError:
        raise ValueError(
            f"unknown search space {name!r}; choose from {space_names()}"
        ) from None
    return factory()
